#!/usr/bin/env bash
# Full local CI: format check, lints, tests, experiment regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check || echo "(fmt check skipped / diffs above)"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== static analysis (lint + audit + check) =="
cargo run --release -- lint --deny-warnings
cargo run --release -- audit --deny-warnings
cargo run --release -- check --deny-warnings
cargo run --release -q -- check --json --jobs 1 > /tmp/pruneperf-check-seq.json
cargo run --release -q -- check --json --jobs 8 > /tmp/pruneperf-check-par.json
cmp /tmp/pruneperf-check-seq.json /tmp/pruneperf-check-par.json

echo "== analyzer coverage delta (informational) =="
./scripts/coverage_delta.sh /tmp/pruneperf-check-seq.json CHECK_COVERAGE.json

echo "== chaos drill (fault injection, byte-identical across worker counts) =="
for seed in 1 2 3; do
  cargo run --release -q -- chaos --seed "$seed" --jobs 1 > "/tmp/pruneperf-chaos-$seed-seq.txt"
  cargo run --release -q -- chaos --seed "$seed" --jobs 8 > "/tmp/pruneperf-chaos-$seed-par.txt"
  cmp "/tmp/pruneperf-chaos-$seed-seq.txt" "/tmp/pruneperf-chaos-$seed-par.txt"
done
cargo run --release -q -- chaos --seed 4 --faults 0.5 > /dev/null

echo "== search (differential suite + determinism + persist/resume) =="
cargo test -q --release -p pruneperf-core --test search_differential
cargo run --release -q -- search --network alexnet --json --jobs 1 > /tmp/pruneperf-search-seq.json
cargo run --release -q -- search --network alexnet --json --jobs 8 > /tmp/pruneperf-search-par.json
cmp /tmp/pruneperf-search-seq.json /tmp/pruneperf-search-par.json
rm -f /tmp/pruneperf-search-cache.txt
cargo run --release -q -- search --network alexnet --json \
  --persist /tmp/pruneperf-search-cache.txt > /tmp/pruneperf-search-cold.json
cp /tmp/pruneperf-search-cache.txt /tmp/pruneperf-search-cache-cold.txt
cargo run --release -q -- search --network alexnet --json \
  --persist /tmp/pruneperf-search-cache.txt > /tmp/pruneperf-search-resumed.json
cmp /tmp/pruneperf-search-seq.json /tmp/pruneperf-search-cold.json
cmp /tmp/pruneperf-search-cold.json /tmp/pruneperf-search-resumed.json
cmp /tmp/pruneperf-search-cache-cold.txt /tmp/pruneperf-search-cache.txt

echo "== micro-benchmarks (regression gate + determinism) =="
cargo run --release -q -- bench --no-wall --check BENCH_PR10.json
cargo run --release -q -- bench --json --no-wall --jobs 1 > /tmp/pruneperf-bench-seq.json
cargo run --release -q -- bench --json --no-wall --jobs 8 > /tmp/pruneperf-bench-par.json
cmp /tmp/pruneperf-bench-seq.json /tmp/pruneperf-bench-par.json

echo "== chrome-trace export (byte-identical across worker counts) =="
cargo run --release -q -- chaos --seed 1 --jobs 1 --trace-out /tmp/pruneperf-trace-seq.json > /dev/null
cargo run --release -q -- chaos --seed 1 --jobs 8 --trace-out /tmp/pruneperf-trace-par.json > /dev/null
cmp /tmp/pruneperf-trace-seq.json /tmp/pruneperf-trace-par.json

echo "== serve (replay golden + loadgen drill, byte-identical across worker counts) =="
cargo run --release -q -- serve --replay tests/goldens/serve_trace.jsonl \
  --workers 2 --queue 1 --service-ms 5 --jobs 1 > /tmp/pruneperf-serve-seq.jsonl
cargo run --release -q -- serve --replay tests/goldens/serve_trace.jsonl \
  --workers 2 --queue 1 --service-ms 5 --jobs 8 > /tmp/pruneperf-serve-par.jsonl
cmp /tmp/pruneperf-serve-seq.jsonl /tmp/pruneperf-serve-par.jsonl
cmp /tmp/pruneperf-serve-seq.jsonl tests/goldens/serve_replay.golden.jsonl
cargo run --release -q -- loadgen --seed 42 --requests 32 --jobs 1 > /tmp/pruneperf-loadgen-seq.txt
cargo run --release -q -- loadgen --seed 42 --requests 32 --jobs 8 > /tmp/pruneperf-loadgen-par.txt
cmp /tmp/pruneperf-loadgen-seq.txt /tmp/pruneperf-loadgen-par.txt

echo "== benches (compile + smoke) =="
cargo bench -p pruneperf-bench -- --test

echo "== paper experiments (and artifact freshness) =="
cargo run --release -p pruneperf-bench --bin repro -- all --json repro_results.json > repro_output.txt
git diff --exit-code -- repro_output.txt repro_results.json

echo "CI OK"

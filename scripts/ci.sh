#!/usr/bin/env bash
# Full local CI: format check, lints, tests, experiment regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check || echo "(fmt check skipped / diffs above)"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== static analysis (lint + audit) =="
cargo run --release -- lint --deny-warnings
cargo run --release -- audit --deny-warnings

echo "== benches (compile + smoke) =="
cargo bench -p pruneperf-bench -- --test

echo "== paper experiments =="
cargo run --release -p pruneperf-bench --bin repro -- all

echo "CI OK"

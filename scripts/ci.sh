#!/usr/bin/env bash
# Full local CI: format check, lints, tests, experiment regeneration.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all --check || echo "(fmt check skipped / diffs above)"

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== static analysis (lint + audit) =="
cargo run --release -- lint --deny-warnings
cargo run --release -- audit --deny-warnings

echo "== chaos drill (fault injection, byte-identical across worker counts) =="
for seed in 1 2 3; do
  cargo run --release -q -- chaos --seed "$seed" --jobs 1 > "/tmp/pruneperf-chaos-$seed-seq.txt"
  cargo run --release -q -- chaos --seed "$seed" --jobs 8 > "/tmp/pruneperf-chaos-$seed-par.txt"
  cmp "/tmp/pruneperf-chaos-$seed-seq.txt" "/tmp/pruneperf-chaos-$seed-par.txt"
done
cargo run --release -q -- chaos --seed 4 --faults 0.5 > /dev/null

echo "== benches (compile + smoke) =="
cargo bench -p pruneperf-bench -- --test

echo "== paper experiments =="
cargo run --release -p pruneperf-bench --bin repro -- all

echo "CI OK"

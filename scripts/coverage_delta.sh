#!/usr/bin/env bash
# Prints the analyzer coverage counters of a `pruneperf check --json`
# report next to the checked-in baseline (CHECK_COVERAGE.json), with
# deltas. Informational only — a growing tree legitimately moves both
# numbers; the point is making the movement visible in the CI log.
#
# Usage: scripts/coverage_delta.sh <current-check.json> <baseline.json>
set -euo pipefail

current="$1"
baseline="$2"

field() {
  grep -o "\"$2\": *[0-9][0-9]*" "$1" | head -n 1 | grep -o '[0-9][0-9]*$'
}

for key in functions_modeled hot_functions; do
  cur="$(field "$current" "$key")"
  base="$(field "$baseline" "$key")"
  printf '%s: %s (baseline %s, delta %+d)\n' "$key" "$cur" "$base" "$((cur - base))"
done

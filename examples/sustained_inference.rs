//! Sustained inference under a thermal governor: pruning as a cooling
//! strategy.
//!
//! The paper's boards (§III-D) are passively cooled and run "default OS"
//! governors; under continuous inference they heat up and throttle the GPU
//! clock. A performance-aware pruned network does less work per frame, so
//! it not only starts faster — it *stays* faster, because it may never
//! cross the thermal budget at all.
//!
//! ```text
//! cargo run --release --example sustained_inference
//! ```

use pruneperf::prelude::*;
use pruneperf::profiler::{NetworkRunner, ThermalGovernor};

fn main() {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let runner = NetworkRunner::new(&device);
    let network = resnet50();

    // Build a performance-aware pruned variant (latency budget 0.7).
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);
    let plan = PerfAwarePruner::new(&profiler, &accuracy).prune_to_latency(&backend, &network, 0.7);
    let pruned_layers: Vec<ConvLayerSpec> = network
        .layers()
        .iter()
        .map(|l| {
            let kept = plan.kept_for(l.label()).unwrap_or(l.c_out());
            l.with_c_out(kept).expect("plan is valid")
        })
        .collect();
    let pruned = Network::new("ResNet-50 (perf-aware 0.7)", pruned_layers);

    let full_report = runner.run(&backend, &network);
    let pruned_report = runner.run(&backend, &pruned);
    println!(
        "single inference:  full {:.1} ms / {:.1} mJ   |   pruned {:.1} ms / {:.1} mJ",
        full_report.total_ms(),
        full_report.total_mj(),
        pruned_report.total_ms(),
        pruned_report.total_mj()
    );

    // A heat budget between the two networks' steady-state heats: the full
    // network will throttle under sustained load, the pruned one will not.
    let retention = 0.85;
    let governor = ThermalGovernor {
        heat_budget_mj: (full_report.total_mj() + pruned_report.total_mj())
            / 2.0
            / (1.0 - retention),
        retention,
        throttle_factor: 1.45,
        hysteresis: 0.9,
    };

    println!("\nback-to-back inference latency (ms):");
    println!("{:>6} {:>12} {:>12}", "iter", "full", "pruned");
    let full_lat = governor.sustained_latencies(&full_report, 30);
    let pruned_lat = governor.sustained_latencies(&pruned_report, 30);
    for i in [0usize, 4, 9, 14, 19, 29] {
        println!("{:>6} {:>12.1} {:>12.1}", i + 1, full_lat[i], pruned_lat[i]);
    }
    let full_steady = governor.steady_state_ms(&full_report);
    let pruned_steady = governor.steady_state_ms(&pruned_report);
    println!(
        "\nsteady state: full {:.1} ms (throttled {}) | pruned {:.1} ms (throttled {})",
        full_steady,
        if full_steady > full_report.total_ms() * 1.01 {
            "YES"
        } else {
            "no"
        },
        pruned_steady,
        if pruned_steady > pruned_report.total_ms() * 1.01 {
            "YES"
        } else {
            "no"
        },
    );
    println!(
        "sustained speedup from pruning: {:.2}x (vs {:.2}x cold)",
        full_steady / pruned_steady,
        full_report.total_ms() / pruned_report.total_ms()
    );
}

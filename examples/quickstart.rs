//! Quickstart: profile one convolutional layer, find the staircase, and
//! pick performance-aware pruning targets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pruneperf::prelude::*;

fn main() {
    // 1. Pick a device and a layer. ResNet-50 layer 16 is the paper's
    //    running example: 3x3, 128 -> 128 channels over a 28x28 map.
    let device = Device::mali_g72_hikey970();
    let layer = resnet50()
        .layer("ResNet.L16")
        .expect("catalog has L16")
        .clone();
    println!("device: {device}");
    println!("layer:  {layer}\n");

    // 2. Sweep the channel count with the library we intend to deploy on
    //    (median of 10 runs per configuration, like the paper).
    let profiler = LayerProfiler::new(&device);
    let backend = AclGemm::new();
    let curve = profiler.latency_curve(&backend, &layer, 1..=layer.c_out());

    // 3. Detect the staircase. Note the *two parallel staircases*: channel
    //    counts whose vec4 groups tile badly run up to ~1.8x slower.
    let staircase = Staircase::detect(&curve);
    println!("{staircase}");

    // 4. The pruning candidates are the right edges of the fast staircase:
    //    the most channels for each latency level.
    println!("performance-aware pruning candidates:");
    for p in staircase.optimal_points() {
        println!("  keep {:>4} channels -> {:>7.3} ms", p.channels, p.ms);
    }

    // 5. Pick the best configuration inside a latency budget.
    let unpruned_ms = curve.ms_at(layer.c_out()).expect("profiled");
    let budget = unpruned_ms * 0.75;
    match staircase.best_within_budget(budget) {
        Some(p) => println!(
            "\nwithin a {budget:.2} ms budget (75% of unpruned): keep {} channels ({:.3} ms)",
            p.channels, p.ms
        ),
        None => println!("\nno configuration meets a {budget:.2} ms budget"),
    }

    // 6. Contrast with uninstructed pruning: removing 36 channels (to 92)
    //    lands on the slow staircase and is *slower* than removing 32.
    let t92 = curve.ms_at(92).expect("profiled");
    let t96 = curve.ms_at(96).expect("profiled");
    println!(
        "\nuninstructed trap: 92 channels run at {t92:.2} ms but 96 channels at {t96:.2} ms \
         ({:.2}x more channels per millisecond at 96)",
        (96.0 / t96) / (92.0 / t92)
    );
}

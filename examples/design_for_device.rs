//! Designing a network *for* a device (§I: “designing new neural network
//! architectures for specific devices should consider the best sizes of
//! convolutional layers for each library and hardware”).
//!
//! Three extensions of the paper come together here:
//!
//! 1. a MobileNetV1 catalog (depthwise-separable layers show the same
//!    staircases on their pointwise convolutions);
//! 2. coupled pruning — kept counts propagate into successors' inputs,
//!    compounding the savings the paper measures per layer;
//! 3. the auto-tuned direct-convolution backend (the paper's deferred
//!    future work, ref [23]) and energy-aware budgets.
//!
//! ```text
//! cargo run --release --example design_for_device
//! ```

use std::collections::HashMap;

use pruneperf::backends::AclDirectTuned;
use pruneperf::models::mobilenet_v1;
use pruneperf::prelude::*;

fn main() {
    let device = Device::mali_g72_hikey970();
    let network = mobilenet_v1();
    let backend = AclGemm::new();
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);

    println!("designing {network} for {device}\n");

    // 1. Performance-aware channel selection on the pointwise layers.
    let pruner = PerfAwarePruner::new(&profiler, &accuracy);
    let plan = pruner.prune_to_latency(&backend, &network, 0.75);
    println!(
        "latency plan: {:.2} ms, {:.2} mJ, accuracy {:.4}",
        plan.latency_ms(),
        plan.energy_mj(),
        plan.accuracy()
    );
    let energy_plan = pruner.prune_to_energy(&backend, &network, 0.75);
    println!(
        "energy plan:  {:.2} ms, {:.2} mJ, accuracy {:.4}\n",
        energy_plan.latency_ms(),
        energy_plan.energy_mj(),
        energy_plan.accuracy()
    );

    // 2. Coupled deployment: kept counts propagate into successor inputs.
    let kept: HashMap<String, usize> = plan.kept_channels().clone();
    let coupled = network.sequential_with_kept(&kept);
    let t_isolated: f64 = network
        .layers()
        .iter()
        .map(|l| {
            let c = kept.get(l.label()).copied().unwrap_or_else(|| l.c_out());
            backend.latency_ms(&l.with_c_out(c).expect("valid"), &device)
        })
        .sum();
    let t_coupled: f64 = coupled
        .layers()
        .iter()
        .map(|l| backend.latency_ms(l, &device))
        .sum();
    println!(
        "per-layer view (paper's methodology): {t_isolated:.2} ms\n\
         coupled deployment (inputs shrink too): {t_coupled:.2} ms \
         ({:.2}x further gain)\n",
        t_isolated / t_coupled
    );

    // 3. Auto-tuned workgroups rescue uninstructed channel counts on the
    //    direct-convolution path.
    let heuristic = AclDirect::new();
    let tuned = AclDirectTuned::new();
    let odd = network
        .layer("MobileNet.L12")
        .expect("catalog has L12")
        .with_c_out(509)
        .expect("valid count");
    let t_h = heuristic.latency_ms(&odd, &device);
    let t_t = tuned.latency_ms(&odd, &device);
    println!(
        "direct conv at an uninstructed 509 channels: heuristic {t_h:.2} ms, \
         auto-tuned {t_t:.2} ms ({:.2}x — the paper's [23] reports up to ~3.8x)",
        t_h / t_t
    );
}

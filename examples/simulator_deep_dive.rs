//! The §IV-B deep dive: what the GPU simulator sees when ACL's GEMM split
//! heuristic goes wrong — kernel timelines, executed instructions
//! (Tables I–IV) and system-level counters (Fig 18) for 92 vs 93 channels.
//!
//! ```text
//! cargo run --release --example simulator_deep_dive
//! ```

use pruneperf::prelude::*;

fn main() {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::new(&device);
    let backend = AclGemm::new();
    let layer = resnet50()
        .layer("ResNet.L16")
        .expect("catalog has L16")
        .clone();

    println!("== Kernel timelines (the paper's OpenCL interceptor view)\n");
    for channels in [92usize, 93, 96, 97] {
        let pruned = layer.with_c_out(channels).expect("valid count");
        let timeline = profiler.timeline(&backend, &pruned);
        println!("--- {channels} output channels");
        print!("{timeline}");
        println!(
            "executed instructions: {} arithmetic, {} memory\n",
            timeline.report().total_arith(),
            timeline.report().total_mem()
        );
    }

    println!("== System-level counters relative to the 93-channel run (Fig 18)\n");
    let base = *profiler
        .timeline(&backend, &layer.with_c_out(93).unwrap())
        .counters();
    println!("channels   jobs  ctrl_wr  ctrl_rd  interrupts");
    for channels in [92usize, 93, 96, 97] {
        let counters = *profiler
            .timeline(&backend, &layer.with_c_out(channels).unwrap())
            .counters();
        let rel = counters.relative_to(&base);
        println!(
            "{channels:>8}  {:>5.2}  {:>7.2}  {:>7.2}  {:>10.2}",
            rel.jobs.unwrap_or(f64::NAN),
            rel.ctrl_reg_writes.unwrap_or(f64::NAN),
            rel.ctrl_reg_reads.unwrap_or(f64::NAN),
            rel.interrupts.unwrap_or(f64::NAN),
        );
    }

    println!("\n== Why it matters\n");
    let t92 = profiler
        .measure(&backend, &layer.with_c_out(92).unwrap())
        .median_ms();
    let t93 = profiler
        .measure(&backend, &layer.with_c_out(93).unwrap())
        .median_ms();
    println!(
        "92 channels: {t92:.2} ms — 93 channels: {t93:.2} ms. Adding a channel makes the \
         layer {:.2}x FASTER, because 92 splits the GEMM into two jobs (80 + 12 columns) \
         while 93 pads to a single 96-column kernel.",
        t92 / t93
    );
}

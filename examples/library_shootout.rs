//! Library shootout across the paper's four devices (§V discussion):
//! “no optimal library exists to outperform across all neural network
//! layers. Neither Arm Compute Library, nor TVM dominates.”
//!
//! ```text
//! cargo run --release --example library_shootout
//! ```

use pruneperf::backends::all_backends;
use pruneperf::prelude::*;

fn main() {
    let networks = [resnet50(), vgg16(), alexnet()];
    let devices = Device::all_paper_devices();

    for device in &devices {
        println!("== {device}");
        // cuDNN only runs on the CUDA boards; the OpenCL backends only on
        // Mali — mirroring the paper's experimental setup.
        let backends: Vec<_> = all_backends()
            .into_iter()
            .filter(|b| (b.name() == "cuDNN") == device.is_cuda())
            .collect();
        let names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
        println!("{:<14} {}", "layer", names.join("  |  "));

        let mut wins = vec![0usize; backends.len()];
        for network in &networks {
            for layer in network.layers() {
                let times: Vec<f64> = backends
                    .iter()
                    .map(|b| b.latency_ms(layer, device))
                    .collect();
                let best = times
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("at least one backend");
                wins[best] += 1;
                if layer.label().ends_with("L16") || layer.label().ends_with("L14") {
                    let row: Vec<String> = times.iter().map(|t| format!("{t:>8.2} ms")).collect();
                    println!("{:<14} {}", layer.label(), row.join("  |  "));
                }
            }
        }
        println!("fastest-layer wins across all 37 unique layers:");
        for (name, w) in names.iter().zip(&wins) {
            println!("  {name:<12} {w}");
        }
        // The §V observation: on OpenCL devices, no library wins everywhere.
        if !device.is_cuda() {
            let dominated = wins.iter().filter(|&&w| w == 0).count();
            println!(
                "  -> {}",
                if dominated == wins.len() - 1 {
                    "one library dominates (unexpected)"
                } else {
                    "no single library dominates every layer"
                }
            );
        }
        println!();
    }
}

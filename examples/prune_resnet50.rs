//! End-to-end performance-aware pruning of ResNet-50 (§V of the paper):
//! profile every layer on the target device, restrict candidates to the
//! staircase's optimal points, and trade accuracy for latency along a
//! Pareto front — then compare against the uninstructed baseline.
//!
//! ```text
//! cargo run --release --example prune_resnet50
//! ```

use pruneperf::prelude::*;

fn main() {
    let device = Device::mali_g72_hikey970();
    let network = resnet50();
    let backend = AclGemm::new();
    let profiler = LayerProfiler::noiseless(&device);
    let accuracy = AccuracyModel::for_network(&network);

    println!("pruning {network} for {device} with ACL GEMM");

    // Baseline: the unpruned network.
    let uninstructed = UninstructedPruner::new(&profiler, &accuracy);
    let full = uninstructed.prune_by_distance(&backend, &network, 0);
    println!(
        "\nunpruned: {:.1} ms, accuracy {:.4}",
        full.latency_ms(),
        full.accuracy()
    );

    // The status-quo approach: prune a fixed distance everywhere, ignoring
    // the device. Distances that land on split/odd sizes backfire.
    println!("\nuninstructed pruning (fixed distance per layer):");
    for distance in [1usize, 7, 36, 64] {
        let plan = uninstructed.prune_by_distance(&backend, &network, distance);
        let delta = plan.latency_ms() / full.latency_ms();
        println!(
            "  distance {distance:>3}: {:>7.1} ms ({:.2}x of unpruned), accuracy {:.4}{}",
            plan.latency_ms(),
            delta,
            plan.accuracy(),
            if delta > 1.0 {
                "   <-- SLOWER than unpruned!"
            } else {
                ""
            }
        );
    }

    // The paper's proposal: per-layer candidates from profiled staircases,
    // greedy latency/accuracy trade, several budgets -> Pareto front.
    println!("\nperformance-aware pruning (Pareto front over latency budgets):");
    let aware = PerfAwarePruner::new(&profiler, &accuracy);
    let plans = aware.pareto_plans(&backend, &network, &[1.0, 0.9, 0.8, 0.7, 0.6, 0.5]);
    for plan in &plans {
        println!(
            "  {:>7.1} ms ({:.2}x of unpruned), accuracy {:.4}",
            plan.latency_ms(),
            plan.latency_ms() / full.latency_ms(),
            plan.accuracy()
        );
    }

    // Show one plan's per-layer decisions.
    if let Some(plan) = plans.first() {
        println!("\nfastest plan keeps, per layer:");
        for layer in network.layers() {
            let kept = plan.kept_for(layer.label()).unwrap_or(layer.c_out());
            if kept != layer.c_out() {
                println!(
                    "  {:<13} {:>4} -> {:>4} channels",
                    layer.label(),
                    layer.c_out(),
                    kept
                );
            }
        }
    }
}

//! The pruning-plan service: a long-running daemon over the planner.
//!
//! The paper's methodology (Radu et al., IISWC 2019) only pays off when a
//! staircase-aware plan is cheap to request on demand: an iterative
//! pruning loop (He et al.'s two-step search) issues repeated
//! budget→plan queries over one shared latency surface. This crate wraps
//! the existing planners and [`pruneperf_profiler::NetworkRunner`] in
//! exactly that shape, three ways:
//!
//! - [`server`] — a live `pruneperf serve` daemon: line-delimited JSON
//!   over HTTP/1.1 on [`std::net::TcpListener`] plus a hand-rolled
//!   thread pool (the offline build bakes in no async runtime).
//!   Per-device shard affinity assigns requests to workers, bounded
//!   per-worker queues shed excess load with explicit 429 responses, and
//!   the PR-4 fallible path degrades faulty plans instead of dropping
//!   connections.
//! - [`replay`] — the deterministic CI surface: `serve --replay
//!   trace.jsonl` reads a scripted request trace and writes the response
//!   stream to stdout, no sockets. Sheds come from the virtual-time
//!   admission model in [`admission`], duplicate requests are
//!   deduplicated *statically*, and unique requests fan out through
//!   `ordered_parallel_map` — so the byte stream is identical at any
//!   `--jobs`.
//! - [`loadgen`] — a seeded request-mix generator driving the replay
//!   pipeline, reporting shed/dedup/degraded counts and a virtual-time
//!   latency histogram; the millions-of-users story in numbers, with no
//!   wall clock anywhere.
//!
//! All three share one [`planner::PlanService`]: a bounded
//! [`pruneperf_profiler::LatencyCache`] (see
//! `LatencyCache::set_max_entries_per_shard` — a long-running process
//! must not grow without bound) and a
//! [`pruneperf_profiler::Stats`] registry for the `--stats` side channel.

#![forbid(unsafe_code)]

pub mod admission;
pub mod catalog;
pub mod http;
pub mod loadgen;
pub mod planner;
pub mod protocol;
pub mod replay;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionOutcome};
pub use loadgen::{run_loadgen, LoadgenOptions};
pub use planner::PlanService;
pub use protocol::{PlanRequest, PlanResponse, RequestObjective};
pub use replay::{replay_trace, ReplayOptions};
pub use server::{Server, ServerOptions};

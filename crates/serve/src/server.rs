//! The live `pruneperf serve` daemon.
//!
//! Plain [`std::net::TcpListener`] plus a hand-rolled worker pool — the
//! offline build has no async runtime, and the planner is CPU-bound
//! anyway, so one OS thread per simulated worker is the honest model.
//! The accept thread parses each connection's single request, picks the
//! worker by device-name hash ([`crate::admission::worker_for_device`] —
//! the same shard affinity the replay model simulates, so one device's
//! requests queue behind a warm cache working set), and hands the
//! connection to that worker's **bounded** queue. A full queue sheds the
//! request on the accept thread with an explicit 429 — admission
//! control, not silent buffering. Queues are `Mutex<VecDeque>` +
//! `Condvar`, not channels: the bound is load-bearing and a sender never
//! blocks on it.
//!
//! Everything past the accept loop is log-and-drop: a peer that
//! vanishes mid-write surfaces as an `Err` from
//! [`crate::http::try_respond`] and costs one response, never a worker
//! thread.

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

use crate::admission::worker_for_device;
use crate::http;
use crate::planner::PlanService;
use crate::protocol::{PlanRequest, PlanResponse};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads (device shard affinity maps onto these).
    pub workers: usize,
    /// Per-worker queue bound; arrivals past it are shed with 429.
    pub queue_capacity: usize,
    /// Latency-cache bound per shard (`0` = unbounded — unwise for a
    /// daemon; the CLI defaults this on).
    pub cache_cap: usize,
    /// Stop after this many accepted connections (`None` = run forever).
    /// Smoke tests and drills use this as a deterministic shutdown.
    pub max_requests: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 4,
            cache_cap: 4096,
            max_requests: None,
        }
    }
}

/// Tallies from a completed [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Requests shed by a full worker queue.
    pub shed: u64,
    /// Connections answered with 4xx (bad HTTP, bad path, bad request).
    pub refused: u64,
}

/// One unit of worker work: a connection whose request was admitted.
enum Job {
    /// Serve this request and answer on the stream.
    Conn {
        stream: TcpStream,
        request: PlanRequest,
        id: usize,
    },
    /// Drain and exit.
    Stop,
}

/// A bounded MPSC queue: `Mutex<VecDeque>` + `Condvar`, capacity
/// enforced at push so backpressure is explicit (429) rather than
/// unbounded buffering.
struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    capacity: usize,
}

impl WorkerQueue {
    fn new(capacity: usize) -> Self {
        WorkerQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Observed backlog (for shed responses).
    fn depth(&self) -> usize {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Enqueues unless the queue is at capacity; a refused job comes
    /// back to the caller so the stream inside it can be answered.
    #[allow(clippy::result_large_err)] // the Err IS the refused job, by design
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        if jobs.len() >= self.capacity {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues unconditionally — only for [`Job::Stop`], which must
    /// reach the worker even through a full queue.
    fn push_unbounded(&self, job: Job) {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
    }

    /// Blocks until a job is available.
    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self
                .ready
                .wait(jobs)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    options: ServerOptions,
    service: PlanService,
}

impl Server {
    /// Binds the listener and builds the shared [`PlanService`] (bounded
    /// cache per `options.cache_cap`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(options: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let service = PlanService::new(options.cache_cap);
        Ok(Server {
            listener,
            options,
            service,
        })
    }

    /// The bound address (useful with `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared planning service (cache + stats registry).
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// Serves until `max_requests` connections have been accepted (or
    /// forever when unset), then drains the workers and returns tallies.
    ///
    /// # Errors
    ///
    /// Propagates an `accept` failure after stopping the workers.
    //
    // lock-order: WorkerQueue.jobs is the only lock taken here and it is
    // a leaf — no code path holds it while taking another lock (the
    // planner's cache shards are locked only inside `service.handle`,
    // when no queue lock is held), so the spawned workers cannot
    // deadlock against the accept thread.
    pub fn run(&self) -> std::io::Result<ServerSummary> {
        let workers = self.options.workers.max(1);
        let queues: Vec<WorkerQueue> = (0..workers)
            .map(|_| WorkerQueue::new(self.options.queue_capacity.max(1)))
            .collect();
        let shed = AtomicU64::new(0);
        let refused = AtomicU64::new(0);
        let mut accepted = 0u64;
        let mut accept_error = None;

        thread::scope(|scope| {
            for queue in &queues {
                let service = &self.service;
                scope.spawn(move || worker_loop(service, queue));
            }

            let mut next_id = 0usize;
            loop {
                if let Some(max) = self.options.max_requests {
                    if accepted >= max as u64 {
                        break;
                    }
                }
                let stream = match self.listener.accept() {
                    Ok((stream, _peer)) => stream,
                    Err(e) => {
                        accept_error = Some(e);
                        break;
                    }
                };
                accepted += 1;
                let id = next_id;
                next_id += 1;
                dispatch(stream, id, &queues, &self.service, &shed, &refused);
            }

            for queue in &queues {
                queue.push_unbounded(Job::Stop);
            }
        });

        match accept_error {
            Some(e) => Err(e),
            None => Ok(ServerSummary {
                accepted,
                shed: shed.load(Ordering::Relaxed),
                refused: refused.load(Ordering::Relaxed),
            }),
        }
    }
}

/// Parses one connection's request on the accept thread and routes it:
/// side-channel and error paths are answered inline, plan requests are
/// admitted to their device's worker or shed with 429.
fn dispatch(
    stream: TcpStream,
    id: usize,
    queues: &[WorkerQueue],
    service: &PlanService,
    shed: &AtomicU64,
    refused: &AtomicU64,
) {
    let mut reader = BufReader::new(&stream);
    let request = match http::read_request(&mut reader) {
        Ok(r) => r,
        Err(e) => {
            refused.fetch_add(1, Ordering::Relaxed);
            let body = PlanResponse::Error(e).render(id, false);
            let _ = http::try_respond(&mut &stream, 400, &body);
            return;
        }
    };
    if request.method == "GET" && request.path == "/stats" {
        let _ = http::try_respond(&mut &stream, 200, &service.stats_json());
        return;
    }
    if request.path != "/plan" {
        refused.fetch_add(1, Ordering::Relaxed);
        let body =
            PlanResponse::Error(format!("no such endpoint {}", request.path)).render(id, false);
        let _ = http::try_respond(&mut &stream, 404, &body);
        return;
    }
    if request.method != "POST" {
        refused.fetch_add(1, Ordering::Relaxed);
        let body =
            PlanResponse::Error(format!("method {} not allowed", request.method)).render(id, false);
        let _ = http::try_respond(&mut &stream, 405, &body);
        return;
    }
    let plan_request = match PlanRequest::parse(request.body.trim()) {
        Ok(r) => r,
        Err(e) => {
            refused.fetch_add(1, Ordering::Relaxed);
            let body = PlanResponse::Error(e).render(id, false);
            let _ = http::try_respond(&mut &stream, 400, &body);
            return;
        }
    };
    let worker = worker_for_device(&plan_request.device, queues.len());
    let Some(queue) = queues.get(worker) else {
        return; // unreachable: worker < queues.len() by construction
    };
    let depth = queue.depth();
    let job = Job::Conn {
        stream,
        request: plan_request,
        id,
    };
    if let Err(Job::Conn { stream, .. }) = queue.try_push(job) {
        shed.fetch_add(1, Ordering::Relaxed);
        let response = PlanResponse::Shed { worker, depth };
        let body = response.render(id, false);
        let _ = http::try_respond(&mut &stream, response.http_status(), &body);
    }
}

/// One worker: pop, plan, answer, until [`Job::Stop`].
fn worker_loop(service: &PlanService, queue: &WorkerQueue) {
    loop {
        match queue.pop() {
            Job::Stop => return,
            Job::Conn {
                stream,
                request,
                id,
            } => {
                let response = service.handle(&request);
                let body = response.render(id, false);
                // The peer may be gone; that costs one response, not
                // the worker.
                let _ = http::try_respond(&mut &stream, response.http_status(), &body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    fn post(body: &str) -> String {
        format!(
            "POST /plan HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn serves_plans_stats_and_refusals_end_to_end() {
        let server = Server::bind(ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 4,
            cache_cap: 1024,
            max_requests: Some(4),
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run().unwrap());

        let ok = roundtrip(
            addr,
            &post(r#"{"network":"alexnet","device":"tx2","budget":0.8}"#),
        );
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("\"status\":\"ok\""));
        assert!(ok.contains("\"degraded\":false"));

        let bad = roundtrip(addr, &post(r#"{"device":"tx2","budget":0.8}"#));
        assert!(bad.starts_with("HTTP/1.1 400 "), "{bad}");
        assert!(bad.contains("'network'"));

        let lost = roundtrip(addr, "GET /nowhere HTTP/1.1\r\n\r\n");
        assert!(lost.starts_with("HTTP/1.1 404 "), "{lost}");

        let stats = roundtrip(addr, "GET /stats HTTP/1.1\r\n\r\n");
        assert!(stats.starts_with("HTTP/1.1 200 OK\r\n"), "{stats}");
        assert!(stats.contains("\"cache\""), "{stats}");

        let summary = handle.join().unwrap();
        assert_eq!(summary.accepted, 4);
        assert_eq!(summary.refused, 2);
        assert_eq!(summary.shed, 0);
    }

    #[test]
    fn a_full_queue_refuses_rather_than_buffering() {
        let queue = WorkerQueue::new(1);
        assert!(queue
            .try_push(Job::Conn {
                stream: loopback_pair().0,
                request: PlanRequest::parse(r#"{"network":"alexnet","device":"tx2","budget":0.8}"#)
                    .unwrap(),
                id: 0,
            })
            .is_ok());
        let refused = queue.try_push(Job::Stop);
        assert!(
            refused.is_err(),
            "capacity 1 queue must refuse the second job"
        );
        assert_eq!(queue.depth(), 1);
        queue.push_unbounded(Job::Stop);
        assert_eq!(queue.depth(), 2, "stop sentinels bypass the bound");
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }
}

//! The shared planning service behind every serving mode.
//!
//! One [`PlanService`] lives for the whole daemon (or replay run): it
//! owns the shared [`LatencyCache`] — **bounded**, because a
//! long-running process must not grow its memo tables without limit —
//! and the [`Stats`] registry the `--stats` side channel snapshots.
//! Request handling is pure with respect to that shared state's
//! *responses*: the cache only short-circuits bit-identical
//! recomputations and the response body carries no cache counters, so
//! the bytes a request produces do not depend on which requests ran
//! before it. That is the property replay mode's `--jobs` invariance
//! rests on.

use std::sync::Arc;

use pruneperf_core::accuracy::AccuracyModel;
use pruneperf_core::PerfAwarePruner;
use pruneperf_profiler::{
    FaultPlan, FaultyBackend, LatencyCache, LayerProfiler, NetworkRunner, Stats,
};

use crate::catalog;
use crate::protocol::{FailedLayerInfo, PlanBody, PlanRequest, PlanResponse, RequestObjective};

/// The planning core shared by the live server, replay mode and loadgen.
pub struct PlanService {
    cache: Arc<LatencyCache>,
    stats: Arc<Stats>,
}

impl PlanService {
    /// Creates a service over a fresh cache and stats registry.
    ///
    /// `cache_cap_per_shard` bounds every cache shard (and the kernel
    /// memo underneath) via
    /// [`LatencyCache::set_max_entries_per_shard`]; `0` leaves the
    /// cache unbounded, which is only appropriate for short
    /// replay/loadgen runs.
    pub fn new(cache_cap_per_shard: usize) -> Self {
        let cache = Arc::new(LatencyCache::new());
        if cache_cap_per_shard > 0 {
            cache.set_max_entries_per_shard(cache_cap_per_shard);
        }
        PlanService {
            cache,
            stats: Arc::new(Stats::new()),
        }
    }

    /// The shared latency cache (bounded iff constructed with a cap).
    pub fn cache(&self) -> &Arc<LatencyCache> {
        &self.cache
    }

    /// The shared stats registry for the `--stats` side channel.
    pub fn stats(&self) -> &Arc<Stats> {
        &self.stats
    }

    /// Renders the current stats snapshot (cache gauges included) as the
    /// `--stats` side-channel document.
    pub fn stats_json(&self) -> String {
        self.stats.snapshot_with_cache(&self.cache).render_json()
    }

    /// Computes the response for one admitted request.
    ///
    /// Unknown names and out-of-range budgets become
    /// [`PlanResponse::Error`]; a faulty verification run that loses
    /// layers to permanent faults becomes a *degraded* Ok response (the
    /// PR-4 fallible path), never a dropped request.
    pub fn handle(&self, req: &PlanRequest) -> PlanResponse {
        let device = match catalog::device_by_name(&req.device) {
            Ok(d) => d,
            Err(e) => return PlanResponse::Error(e),
        };
        let backend = match catalog::backend_by_name(&req.backend) {
            Ok(b) => b,
            Err(e) => return PlanResponse::Error(e),
        };
        let network = match catalog::network_by_name(&req.network) {
            Ok(n) => n,
            Err(e) => return PlanResponse::Error(e),
        };
        // The pruner asserts on the budget; turn that into a 400 here.
        if !(req.budget > 0.0 && req.budget <= 1.0) {
            return PlanResponse::Error(format!("budget must be in (0, 1], got {}", req.budget));
        }

        let profiler = LayerProfiler::noiseless(&device)
            .with_cache(Arc::clone(&self.cache))
            .with_stats(Arc::clone(&self.stats));
        let accuracy = AccuracyModel::for_network(&network);
        let pruner = PerfAwarePruner::new(&profiler, &accuracy);
        let plan = match req.objective {
            RequestObjective::Latency => pruner.prune_to_latency(&backend, &network, req.budget),
            RequestObjective::Energy => pruner.prune_to_energy(&backend, &network, req.budget),
        };

        // Verification pass: run the pruned network end to end through
        // the fallible path. With a fault seed the backend injects
        // permanent faults whose schedule is a pure function of
        // (seed, layer key) — deterministic across runs and schedules.
        let pruned = network.sequential_with_kept(plan.kept_channels());
        let runner = NetworkRunner::new(&device)
            .with_cache(Arc::clone(&self.cache))
            .with_stats(Arc::clone(&self.stats));
        let partial = match req.fault_seed {
            Some(seed) => {
                let fault = FaultPlan::new(seed).with_permanent_rate(req.fault_rate);
                let faulty = FaultyBackend::new(backend, fault);
                runner.try_run(&faulty, &pruned)
            }
            None => runner.try_run(&backend, &pruned),
        };

        let kept = network
            .layers()
            .iter()
            .map(|l| {
                let channels = plan.kept_for(l.label()).unwrap_or(l.c_out());
                (l.label().to_string(), channels)
            })
            .collect();
        let failed = partial
            .failed()
            .iter()
            .map(|f| FailedLayerInfo {
                layer: f.label.clone(),
                attempts: f.attempts,
                error: f.error.clone(),
            })
            .collect();
        PlanResponse::Ok(PlanBody {
            network: req.network.clone(),
            device: req.device.clone(),
            backend: req.backend.clone(),
            objective: req.objective,
            budget: req.budget,
            latency_ms: plan.latency_ms(),
            energy_mj: plan.energy_mj(),
            accuracy: plan.accuracy(),
            kept,
            degraded: !partial.is_complete(),
            verified_ms: partial.report().total_ms(),
            failed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: &str) -> PlanRequest {
        PlanRequest::parse(line).unwrap()
    }

    #[test]
    fn a_clean_request_yields_a_complete_plan() {
        let service = PlanService::new(0);
        let r = req(r#"{"network":"alexnet","device":"tx2","budget":0.8}"#);
        match service.handle(&r) {
            PlanResponse::Ok(body) => {
                assert!(!body.degraded);
                assert!(body.failed.is_empty());
                assert!(body.latency_ms > 0.0);
                assert!(body.verified_ms > 0.0);
                assert_eq!(body.kept.len(), 5, "alexnet has five conv layers");
            }
            other => panic!("expected ok, got {other:?}"),
        }
    }

    #[test]
    fn unknown_names_and_bad_budgets_are_refusals() {
        let service = PlanService::new(0);
        for (line, needle) in [
            (
                r#"{"network":"lenet","device":"tx2","budget":0.8}"#,
                "unknown network",
            ),
            (
                r#"{"network":"alexnet","device":"rtx","budget":0.8}"#,
                "unknown device",
            ),
            (
                r#"{"network":"alexnet","device":"tx2","backend":"mkl","budget":0.8}"#,
                "unknown backend",
            ),
            (
                r#"{"network":"alexnet","device":"tx2","budget":0.0}"#,
                "budget",
            ),
            (
                r#"{"network":"alexnet","device":"tx2","budget":1.5}"#,
                "budget",
            ),
        ] {
            match service.handle(&req(line)) {
                PlanResponse::Error(e) => assert!(e.contains(needle), "{line}: {e}"),
                other => panic!("{line}: expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn heavy_faults_degrade_instead_of_failing() {
        let service = PlanService::new(0);
        let r = req(r#"{"network":"alexnet","device":"tx2","budget":0.8,
                "fault_seed":4,"fault_rate":1.0}"#);
        match service.handle(&r) {
            PlanResponse::Ok(body) => {
                assert!(body.degraded, "every layer faults permanently at rate 1.0");
                assert!(!body.failed.is_empty());
            }
            other => panic!("expected degraded ok, got {other:?}"),
        }
    }

    #[test]
    fn responses_are_independent_of_request_history() {
        let fresh = PlanService::new(0);
        let warmed = PlanService::new(0);
        let warmup = req(r#"{"network":"mobilenetv1","device":"nano","budget":0.6}"#);
        warmed.handle(&warmup);
        let r = req(r#"{"network":"alexnet","device":"tx2","budget":0.8}"#);
        let a = fresh.handle(&r).render(0, false);
        let b = warmed.handle(&r).render(0, false);
        assert_eq!(a, b, "cache warmth must not change response bytes");
    }

    #[test]
    fn the_bounded_cache_still_answers_identically() {
        let unbounded = PlanService::new(0);
        let tiny = PlanService::new(2);
        let r = req(r#"{"network":"alexnet","device":"tx2","budget":0.8}"#);
        assert_eq!(
            unbounded.handle(&r).render(0, false),
            tiny.handle(&r).render(0, false),
            "the cache bound changes retention, never values"
        );
    }
}

//! Virtual-time admission control: bounded queues, explicit sheds.
//!
//! The live server's backpressure story must also hold in replay mode,
//! where there is no wall clock and no real queue — so both are driven
//! by the same *model*: each worker serves its queue FIFO at a fixed
//! virtual service time, a request hashes to a worker by device name
//! (shard affinity: requests for one device land where that device's
//! cache shards are warm), and a request arriving while its worker's
//! backlog is at capacity is shed with an explicit 429-style response —
//! never buffered without bound.
//!
//! The model is a pure function of `(arrival times, device names,
//! config)`. In particular it does **not** depend on `--jobs`: the
//! worker count here is the *simulated* pool (`--workers`), a protocol
//! parameter, while `--jobs` only fans out the independent response
//! computations. That split is what keeps replay output byte-identical
//! at any `--jobs`.

use pruneperf_backends::hash::fnv1a;

/// The admission model's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Simulated worker count (device digests map onto these).
    pub workers: usize,
    /// Maximum backlog (queued + in service) per worker beyond the
    /// request being admitted; arrivals past this are shed.
    pub queue_capacity: usize,
    /// Virtual service time per admitted request, milliseconds.
    pub service_ms: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            workers: 4,
            queue_capacity: 4,
            service_ms: 5.0,
        }
    }
}

/// The model's verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionOutcome {
    /// Worker the request hashed to.
    pub worker: usize,
    /// `true` when the request was admitted (not shed).
    pub admitted: bool,
    /// Backlog observed at arrival (requests ahead of this one).
    pub depth: usize,
    /// Virtual start of service (admitted only; `0.0` otherwise).
    pub start_ms: f64,
    /// Virtual completion time (admitted only; `0.0` otherwise).
    pub finish_ms: f64,
}

impl AdmissionOutcome {
    /// Queueing + service latency in virtual milliseconds.
    pub fn latency_ms(&self, arrival_ms: f64) -> f64 {
        if self.admitted {
            self.finish_ms - arrival_ms
        } else {
            0.0
        }
    }
}

/// The worker a device's requests are pinned to: same digest family as
/// the latency cache's shard split, so one device's plans queue behind
/// each other (and in the live server, behind a warm per-device cache
/// working set) instead of scattering.
pub fn worker_for_device(device: &str, workers: usize) -> usize {
    (fnv1a(device.as_bytes()) % workers.max(1) as u64) as usize
}

/// Runs the model over `(arrival_ms, device)` pairs in stream order.
///
/// Arrivals are taken as given (traces are normally time-sorted; an
/// out-of-order trace is still processed deterministically in stream
/// order). For each request: backlog = admitted requests on the same
/// worker that finish after this arrival; `backlog > queue_capacity`
/// sheds, otherwise service starts when the worker frees up.
pub fn simulate(requests: &[(f64, &str)], config: &AdmissionConfig) -> Vec<AdmissionOutcome> {
    let workers = config.workers.max(1);
    // Per-worker finish times of admitted requests, in admission order.
    let mut finishes: Vec<Vec<f64>> = vec![Vec::new(); workers];
    let mut outcomes = Vec::with_capacity(requests.len());
    for &(arrival, device) in requests {
        let worker = worker_for_device(device, workers);
        // lint: allow(index) — worker < workers by construction
        let lane = &mut finishes[worker];
        let depth = lane.iter().filter(|&&f| f > arrival).count();
        if depth > config.queue_capacity {
            outcomes.push(AdmissionOutcome {
                worker,
                admitted: false,
                depth,
                start_ms: 0.0,
                finish_ms: 0.0,
            });
            continue;
        }
        let free_at = lane.last().copied().unwrap_or(0.0);
        let start = arrival.max(free_at);
        let finish = start + config.service_ms;
        lane.push(finish);
        outcomes.push(AdmissionOutcome {
            worker,
            admitted: true,
            depth,
            start_ms: start,
            finish_ms: finish,
        });
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, queue: usize, service: f64) -> AdmissionConfig {
        AdmissionConfig {
            workers,
            queue_capacity: queue,
            service_ms: service,
        }
    }

    #[test]
    fn spread_arrivals_never_shed() {
        let reqs: Vec<(f64, &str)> = (0..8).map(|i| (i as f64 * 100.0, "tx2")).collect();
        let out = simulate(&reqs, &cfg(2, 1, 5.0));
        assert!(out.iter().all(|o| o.admitted));
        for (o, (t, _)) in out.iter().zip(&reqs) {
            assert_eq!(o.start_ms, *t, "idle worker starts immediately");
            assert_eq!(o.finish_ms, t + 5.0);
        }
    }

    #[test]
    fn a_burst_beyond_capacity_sheds() {
        // Five simultaneous arrivals on one device, queue capacity 1:
        // in-service + 1 queued admitted, the rest shed.
        let reqs: Vec<(f64, &str)> = (0..5).map(|_| (10.0, "tx2")).collect();
        let out = simulate(&reqs, &cfg(2, 1, 5.0));
        let admitted = out.iter().filter(|o| o.admitted).count();
        assert_eq!(admitted, 2);
        assert!(!out[4].admitted);
        assert_eq!(out[4].depth, 2);
        // Admitted requests queue FIFO on the worker.
        assert_eq!(out[0].start_ms, 10.0);
        assert_eq!(out[1].start_ms, 15.0);
    }

    #[test]
    fn devices_pin_to_workers() {
        let w = worker_for_device("tx2", 4);
        for _ in 0..3 {
            assert_eq!(worker_for_device("tx2", 4), w);
        }
        let reqs = [(0.0, "tx2"), (0.0, "tx2")];
        let out = simulate(&reqs, &cfg(4, 0, 5.0));
        assert_eq!(out[0].worker, out[1].worker);
    }

    #[test]
    fn the_model_is_a_pure_function_of_its_inputs() {
        let reqs: Vec<(f64, &str)> = (0..16)
            .map(|i| (i as f64 * 2.0, if i % 2 == 0 { "tx2" } else { "nano" }))
            .collect();
        let a = simulate(&reqs, &cfg(3, 2, 7.5));
        let b = simulate(&reqs, &cfg(3, 2, 7.5));
        assert_eq!(a, b);
    }

    #[test]
    fn latency_includes_queueing() {
        let reqs = [(0.0, "tx2"), (0.0, "tx2")];
        let out = simulate(&reqs, &cfg(1, 4, 5.0));
        assert_eq!(out[0].latency_ms(0.0), 5.0);
        assert_eq!(out[1].latency_ms(0.0), 10.0, "queued behind the first");
    }
}

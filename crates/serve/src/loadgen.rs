//! `pruneperf loadgen`: a seeded synthetic client fleet, no wall clock.
//!
//! Generates a reproducible request mix (duplicates, fault-seeded
//! requests and single-device bursts included), drives it through the
//! replay pipeline — the same admission model, dedup and planner as
//! `serve --replay` — and reports shed/dedup/degraded tallies plus a
//! virtual-time latency distribution. Everything is derived from the
//! seed and the admission model, so the report is byte-identical across
//! `--jobs`; the CI drill compares exactly that.
//!
//! The report deliberately excludes cache hit/miss counters: under
//! parallel fan-out the hit/miss *split* is schedule-dependent (two
//! racing misses of one key both count as misses), while the final
//! entry count is not — so only the latter is reported.

use std::fmt::Write as _;

use crate::planner::PlanService;
use crate::replay::{replay_trace_with, ReplayOptions};

/// Knobs for one loadgen run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenOptions {
    /// Mix seed; same seed, same trace, same report.
    pub seed: u64,
    /// Requests to generate.
    pub requests: usize,
    /// Simulated worker pool for admission.
    pub workers: usize,
    /// Per-worker backlog bound.
    pub queue_capacity: usize,
    /// Virtual service time per admitted request, milliseconds.
    pub service_ms: f64,
    /// Latency-cache bound per shard (`0` = unbounded).
    pub cache_cap: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            seed: 42,
            requests: 48,
            workers: 4,
            queue_capacity: 2,
            service_ms: 5.0,
            cache_cap: 1024,
        }
    }
}

/// `splitmix64` — the repo's stock tiny PRNG, local so the mix never
/// drifts with other components' seeding.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds the seeded trace: one JSON request per line, arrivals
/// non-decreasing, with injected duplicates (~1 in 4 reuses an earlier
/// request's body at a later arrival) and fault-seeded requests
/// (~1 in 5 exercises the degraded path).
///
/// The mix sticks to the two small catalog networks — loadgen measures
/// the *serving* machinery, and small planner inputs keep the drill
/// fast while exercising every path.
pub fn generate_trace(opts: &LoadgenOptions) -> String {
    const NETWORKS: [&str; 2] = ["alexnet", "mobilenetv1"];
    const DEVICES: [&str; 4] = ["hikey970", "odroidxu4", "tx2", "nano"];
    const OBJECTIVES: [&str; 2] = ["latency", "energy"];
    const BUDGETS: [&str; 5] = ["0.5", "0.6", "0.7", "0.8", "0.9"];

    let mut rng = opts.seed;
    let mut arrival_tenths: u64 = 0;
    let mut bodies: Vec<String> = Vec::with_capacity(opts.requests);
    let mut trace = String::new();
    for i in 0..opts.requests {
        // Bursts: every fourth request arrives with no gap, so a busy
        // device genuinely queues (and, at small capacities, sheds).
        if i % 4 != 0 {
            arrival_tenths += splitmix(&mut rng) % 40;
        }
        let arrival = format!("{}.{}", arrival_tenths / 10, arrival_tenths % 10);
        let body = if i > 0 && splitmix(&mut rng).is_multiple_of(4) {
            // Duplicate: replay an earlier request body verbatim — the
            // dedup path must serve it from the leader's computation.
            let ix = (splitmix(&mut rng) % bodies.len() as u64) as usize;
            bodies.get(ix).cloned().unwrap_or_default()
        } else {
            let pick = |r: u64, n: usize| (r % n as u64) as usize;
            let network = NETWORKS[pick(splitmix(&mut rng), NETWORKS.len())];
            let device = DEVICES[pick(splitmix(&mut rng), DEVICES.len())];
            let objective = OBJECTIVES[pick(splitmix(&mut rng), OBJECTIVES.len())];
            let budget = BUDGETS[pick(splitmix(&mut rng), BUDGETS.len())];
            let mut body = format!(
                "\"network\":\"{network}\",\"device\":\"{device}\",\
                 \"objective\":\"{objective}\",\"budget\":{budget}"
            );
            if splitmix(&mut rng).is_multiple_of(5) {
                let seed = splitmix(&mut rng) % 1000;
                let _ = write!(body, ",\"fault_seed\":{seed},\"fault_rate\":0.6");
            }
            body
        };
        let _ = writeln!(trace, "{{\"arrival_ms\":{arrival},{body}}}");
        bodies.push(body);
    }
    trace
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let ix = rank.max(1).min(sorted.len()) - 1;
    sorted.get(ix).copied().unwrap_or(0.0)
}

/// Generates the mix, replays it, and renders the drill report.
///
/// The returned text is a pure function of `opts` — byte-identical at
/// any `--jobs` — and ends with a newline.
pub fn run_loadgen(opts: &LoadgenOptions) -> String {
    let trace = generate_trace(opts);
    let replay_opts = ReplayOptions {
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        service_ms: opts.service_ms,
        cache_cap: opts.cache_cap,
    };
    let service = PlanService::new(opts.cache_cap);
    let report = replay_trace_with(&trace, &replay_opts, &service);

    let mut latencies = report.latencies_ms.clone();
    latencies.sort_by(f64::total_cmp);
    let max = latencies.last().copied().unwrap_or(0.0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "loadgen seed={} requests={} workers={} queue={} service_ms={} cache_cap={}",
        opts.seed,
        opts.requests,
        opts.workers,
        opts.queue_capacity,
        opts.service_ms,
        opts.cache_cap
    );
    let _ = writeln!(
        out,
        "responses: ok={} degraded={} deduped={} shed={} refused={} parse_errors={}",
        report.ok,
        report.degraded,
        report.deduped,
        report.shed,
        report.refused,
        report.parse_errors
    );
    let _ = writeln!(
        out,
        "virtual latency ms: p50={} p90={} p99={} max={}",
        percentile(&latencies, 50.0),
        percentile(&latencies, 90.0),
        percentile(&latencies, 99.0),
        max
    );
    let _ = writeln!(out, "cache entries: {}", service.cache().len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_profiler::sweep;

    #[test]
    fn the_mix_is_seed_deterministic() {
        let opts = LoadgenOptions::default();
        assert_eq!(generate_trace(&opts), generate_trace(&opts));
        let other = LoadgenOptions {
            seed: 7,
            ..LoadgenOptions::default()
        };
        assert_ne!(generate_trace(&opts), generate_trace(&other));
    }

    #[test]
    fn the_mix_exercises_every_serving_path() {
        let opts = LoadgenOptions {
            requests: 64,
            ..LoadgenOptions::default()
        };
        let trace = generate_trace(&opts);
        let report = crate::replay::replay_trace(
            &trace,
            &ReplayOptions {
                workers: opts.workers,
                queue_capacity: opts.queue_capacity,
                service_ms: opts.service_ms,
                cache_cap: opts.cache_cap,
            },
        );
        assert_eq!(report.parse_errors, 0, "generated lines always parse");
        assert!(report.ok > 0);
        assert!(report.deduped > 0, "the mix injects duplicates");
        assert!(report.degraded > 0, "the mix injects fault seeds");
    }

    #[test]
    fn the_report_is_jobs_invariant() {
        let opts = LoadgenOptions {
            requests: 24,
            ..LoadgenOptions::default()
        };
        sweep::set_sweep_jobs(1);
        let baseline = run_loadgen(&opts);
        sweep::set_sweep_jobs(8);
        let wide = run_loadgen(&opts);
        sweep::set_sweep_jobs(1);
        assert_eq!(baseline, wide);
        assert!(baseline.starts_with("loadgen seed=42"));
        assert!(baseline.contains("virtual latency ms:"));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 90.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

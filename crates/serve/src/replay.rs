//! Deterministic replay: a scripted trace in, a byte-stable stream out.
//!
//! `pruneperf serve --replay trace.jsonl` answers a request trace
//! without sockets, and the output must be **byte-identical at any
//! `--jobs`** — that is the CI gate for the whole serving stack. Three
//! choices make it hold:
//!
//! 1. Admission is *simulated*: the virtual-time model in
//!    [`crate::admission`] decides sheds from `(arrival, device,
//!    --workers)` alone, so the simulated pool size is a protocol
//!    parameter while `--jobs` only fans out independent computations.
//! 2. Deduplication is *static*: admitted requests are grouped by
//!    [`PlanRequest::canonical_key`] before any planning starts; the
//!    first occurrence is the leader, computed once, and followers
//!    reuse its body with `deduped: true`. No racing on "who computes
//!    first".
//! 3. Leaders fan out through `ordered_parallel_map`, which returns
//!    results in input order regardless of completion order; each
//!    response body is a pure function of its request (see
//!    [`crate::planner::PlanService::handle`]).
//!
//! Parse failures become error *responses* in place — a bad line never
//! desynchronizes ids between a trace and its golden output.

use std::collections::HashMap;

use pruneperf_profiler::sweep;

use crate::admission::{self, AdmissionConfig};
use crate::planner::PlanService;
use crate::protocol::{PlanRequest, PlanResponse};

/// Knobs for one replay run (and, through it, loadgen).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// Simulated worker pool (admission model; **not** `--jobs`).
    pub workers: usize,
    /// Per-worker backlog bound beyond the request in admission.
    pub queue_capacity: usize,
    /// Virtual service time per admitted request, milliseconds.
    pub service_ms: f64,
    /// Latency-cache bound per shard (`0` = unbounded).
    pub cache_cap: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        let a = AdmissionConfig::default();
        ReplayOptions {
            workers: a.workers,
            queue_capacity: a.queue_capacity,
            service_ms: a.service_ms,
            cache_cap: 0,
        }
    }
}

impl ReplayOptions {
    fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            service_ms: self.service_ms,
        }
    }
}

/// What one replay run produced, output bytes plus tallies for loadgen.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// One response line per non-blank trace line, `\n`-terminated.
    pub output: String,
    /// Non-blank trace lines processed.
    pub total: usize,
    /// Lines that failed to parse (answered with error responses).
    pub parse_errors: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Admitted requests served from another request's computation.
    pub deduped: usize,
    /// Ok responses flagged `degraded` (fault-lost layers).
    pub degraded: usize,
    /// Error responses from name/budget refusals (parse errors excluded).
    pub refused: usize,
    /// Complete, non-degraded Ok responses.
    pub ok: usize,
    /// Virtual queueing+service latency per admitted request, stream
    /// order.
    pub latencies_ms: Vec<f64>,
    /// `(line id, arrival ms, admission outcome)` per parsed request
    /// in stream order — the `--trace-out` timeline.
    pub timeline: Vec<(usize, f64, crate::admission::AdmissionOutcome)>,
}

/// One trace line's routing decision, before any planning runs.
enum Disposition {
    /// Unparseable line, answered in place.
    ParseError(String),
    /// Parsed but shed by the admission model.
    Shed { worker: usize, depth: usize },
    /// Admitted; the leader at `unique_ix` computes the body.
    Admitted { unique_ix: usize, deduped: bool },
}

/// Replays `trace` (one JSON request per non-blank line) against a fresh
/// [`PlanService`] and returns the response stream plus tallies.
///
/// The output is a pure function of `(trace, opts)` — independent of
/// `--jobs` and of any previous run (the service, cache included, is
/// created here).
pub fn replay_trace(trace: &str, opts: &ReplayOptions) -> ReplayReport {
    let service = PlanService::new(opts.cache_cap);
    replay_trace_with(trace, opts, &service)
}

/// [`replay_trace`] over a caller-owned service, so loadgen (and the
/// `--stats` side channel) can inspect the cache and stats afterwards.
pub fn replay_trace_with(trace: &str, opts: &ReplayOptions, service: &PlanService) -> ReplayReport {
    let lines: Vec<&str> = trace.lines().filter(|l| !l.trim().is_empty()).collect();

    // Pass 1: parse, and run the admission model over parsed requests in
    // stream order (parse errors never occupy queue slots).
    let mut parsed: Vec<Result<PlanRequest, String>> = Vec::with_capacity(lines.len());
    for line in &lines {
        parsed.push(PlanRequest::parse(line));
    }
    let admission_input: Vec<(f64, &str)> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .map(|r| (r.arrival_ms, r.device.as_str()))
        .collect();
    let outcomes = admission::simulate(&admission_input, &opts.admission());

    // Pass 2: static dedup among admitted requests. The first request
    // with a given canonical key is the leader; everyone after it with
    // the same key reuses the leader's body.
    let mut dispositions: Vec<Disposition> = Vec::with_capacity(lines.len());
    let mut leaders: Vec<&PlanRequest> = Vec::new();
    let mut leader_ix: HashMap<String, usize> = HashMap::new();
    let mut latencies_ms = Vec::new();
    let mut timeline = Vec::new();
    let mut outcome_iter = outcomes.iter();
    for (id, p) in parsed.iter().enumerate() {
        match p {
            Err(e) => dispositions.push(Disposition::ParseError(e.clone())),
            Ok(req) => {
                // One outcome exists per parsed request by construction.
                let Some(outcome) = outcome_iter.next() else {
                    dispositions.push(Disposition::ParseError(
                        "internal: admission outcome missing".to_string(),
                    ));
                    continue;
                };
                timeline.push((id, req.arrival_ms, *outcome));
                if !outcome.admitted {
                    dispositions.push(Disposition::Shed {
                        worker: outcome.worker,
                        depth: outcome.depth,
                    });
                    continue;
                }
                latencies_ms.push(outcome.latency_ms(req.arrival_ms));
                let key = req.canonical_key();
                match leader_ix.get(&key) {
                    Some(&ix) => dispositions.push(Disposition::Admitted {
                        unique_ix: ix,
                        deduped: true,
                    }),
                    None => {
                        let ix = leaders.len();
                        leader_ix.insert(key, ix);
                        leaders.push(req);
                        dispositions.push(Disposition::Admitted {
                            unique_ix: ix,
                            deduped: false,
                        });
                    }
                }
            }
        }
    }

    // Pass 3: compute each unique request once, fanned out over the
    // session's job count; order-preserving by construction.
    let jobs = sweep::sweep_jobs();
    let bodies: Vec<PlanResponse> =
        // lint: allow(hot-root) — per-request planning is the planner's own hot path, audited under its roots
        sweep::ordered_parallel_map(&leaders, jobs, |req| service.handle(req));

    // Pass 4: render in input order.
    let mut output = String::new();
    let mut report = ReplayReport {
        output: String::new(),
        total: lines.len(),
        parse_errors: 0,
        shed: 0,
        deduped: 0,
        degraded: 0,
        refused: 0,
        ok: 0,
        latencies_ms,
        timeline,
    };
    for (id, disposition) in dispositions.iter().enumerate() {
        let line = match disposition {
            Disposition::ParseError(e) => {
                report.parse_errors += 1;
                PlanResponse::Error(e.clone()).render(id, false)
            }
            Disposition::Shed { worker, depth } => {
                report.shed += 1;
                PlanResponse::Shed {
                    worker: *worker,
                    depth: *depth,
                }
                .render(id, false)
            }
            Disposition::Admitted { unique_ix, deduped } => {
                if *deduped {
                    report.deduped += 1;
                }
                match bodies.get(*unique_ix) {
                    Some(resp) => {
                        match resp {
                            PlanResponse::Ok(body) if body.degraded => report.degraded += 1,
                            PlanResponse::Ok(_) => report.ok += 1,
                            PlanResponse::Error(_) => report.refused += 1,
                            PlanResponse::Shed { .. } => {}
                        }
                        resp.render(id, *deduped)
                    }
                    None => PlanResponse::Error("internal: missing leader response".to_string())
                        .render(id, false),
                }
            }
        };
        output.push_str(&line);
        output.push('\n');
    }
    report.output = output;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"
{"arrival_ms":0,"network":"alexnet","device":"tx2","budget":0.8}
{"arrival_ms":1,"network":"alexnet","device":"tx2","budget":0.8}
{"arrival_ms":2,"network":"mobilenetv1","device":"nano","budget":0.6}
not even json
{"arrival_ms":3,"network":"lenet","device":"tx2","budget":0.8}
"#;

    fn opts() -> ReplayOptions {
        ReplayOptions {
            workers: 2,
            queue_capacity: 4,
            service_ms: 5.0,
            cache_cap: 0,
        }
    }

    #[test]
    fn duplicates_are_served_once_and_flagged() {
        let report = replay_trace(TRACE, &opts());
        assert_eq!(report.total, 5);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.refused, 1, "unknown network refused, not desynced");
        let lines: Vec<&str> = report.output.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"deduped\":false"));
        assert!(lines[1].contains("\"deduped\":true"));
        // Identical bodies modulo id and the dedup flag.
        let strip = |s: &str| {
            s.replace("\"id\":0,", "\"id\":_,")
                .replace("\"id\":1,", "\"id\":_,")
                .replace("\"deduped\":true", "\"deduped\":_")
                .replace("\"deduped\":false", "\"deduped\":_")
        };
        assert_eq!(strip(lines[0]), strip(lines[1]));
        assert!(lines[3].contains("\"status\":\"error\""));
        assert!(lines[4].contains("unknown network"));
    }

    #[test]
    fn the_stream_is_jobs_invariant() {
        let baseline = {
            sweep::set_sweep_jobs(1);
            replay_trace(TRACE, &opts()).output
        };
        for jobs in [2, 8] {
            sweep::set_sweep_jobs(jobs);
            assert_eq!(
                replay_trace(TRACE, &opts()).output,
                baseline,
                "replay output must be byte-identical at jobs={jobs}"
            );
        }
        sweep::set_sweep_jobs(1);
    }

    #[test]
    fn a_single_device_burst_sheds_deterministically() {
        let trace: String = (0..6)
            .map(|i| {
                format!(
                    "{{\"arrival_ms\":0,\"network\":\"alexnet\",\"device\":\"tx2\",\"budget\":0.{}}}\n",
                    5 + i
                )
            })
            .collect();
        let o = ReplayOptions {
            workers: 2,
            queue_capacity: 1,
            service_ms: 5.0,
            cache_cap: 0,
        };
        let a = replay_trace(&trace, &o);
        let b = replay_trace(&trace, &o);
        assert_eq!(a, b);
        assert_eq!(
            a.shed, 4,
            "capacity 1 admits two of six simultaneous arrivals"
        );
        assert!(a.output.contains("\"status\":\"shed\""));
    }

    #[test]
    fn cache_bound_does_not_change_the_stream() {
        let unbounded = replay_trace(TRACE, &opts());
        let mut tiny = opts();
        tiny.cache_cap = 2;
        assert_eq!(replay_trace(TRACE, &tiny).output, unbounded.output);
    }
}

//! A deliberately small HTTP/1.1 layer over [`std::io`] streams.
//!
//! The offline build bakes in no async runtime and no HTTP crate, so the
//! daemon speaks the protocol by hand: one `POST /plan` request per
//! connection (`Connection: close` semantics), a `Content-Length` body
//! holding one JSON request line, and a JSON line back. Only the pieces
//! the daemon needs are implemented; anything else is answered with an
//! HTTP error, never a panic — a malformed peer must not take the
//! process down.

use std::io::{BufRead, Write};

/// Cap on accepted body size: a plan request is a one-line JSON object,
/// so anything past this is a protocol abuse, refused early.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// The parts of a request the daemon cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`POST` expected).
    pub method: String,
    /// Request path (`/plan` expected; `/stats` serves the side channel).
    pub path: String,
    /// Decoded body.
    pub body: String,
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// Returns a user-facing message for malformed request lines, absent or
/// unparseable `Content-Length`, oversized bodies, or short reads. The
/// caller maps these to a 400 response.
pub fn read_request(stream: &mut impl BufRead) -> Result<HttpRequest, String> {
    let mut request_line = String::new();
    stream
        .read_line(&mut request_line)
        .map_err(|e| format!("failed to read request line: {e}"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!(
            "malformed request line: {}",
            request_line.trim_end()
        ));
    }

    let mut content_length: usize = 0;
    loop {
        let mut header = String::new();
        let n = stream
            .read_line(&mut header)
            .map_err(|e| format!("failed to read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".to_string());
        }
        let line = header.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header: {line}"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad Content-Length: {}", value.trim()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }

    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(stream, &mut body)
        .map_err(|e| format!("failed to read {content_length}-byte body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    Ok(HttpRequest { method, path, body })
}

/// The reason phrase for the status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes one complete HTTP/1.1 response (status line, minimal headers,
/// `body` plus a trailing newline) and flushes.
///
/// This is a panic-path root: it runs on the daemon's per-connection
/// write path where the peer may vanish at any byte, so every failure
/// must surface as an `Err` for the worker to log and drop — never a
/// panic that takes a worker thread (and its queue) down.
///
/// # Errors
///
/// Propagates the underlying I/O error (broken pipe, reset, full
/// buffer) unchanged.
pub fn try_respond(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len() + 1
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, String> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /plan HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/plan");
        assert_eq!(req.body, "abcd");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        assert!(parse("").is_err());
        assert!(parse("NOT-HTTP\r\n\r\n").is_err());
        assert!(parse("POST /plan HTTP/1.1\r\nContent-Length: tall\r\n\r\n").is_err());
        assert!(parse("POST /plan HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
        let oversized = format!(
            "POST /plan HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse(&oversized).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn responses_carry_the_framing_headers() {
        let mut out = Vec::new();
        try_respond(&mut out, 429, "{\"status\":\"shed\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 18\r\n"));
        assert!(text.ends_with("{\"status\":\"shed\"}\n"));
    }
}

//! Short-name resolution for devices, backends and networks.
//!
//! The single source of truth for the wire/CLI names; `src/cli.rs`
//! delegates here so the daemon and the one-shot commands agree on both
//! the names and the error messages.

use pruneperf_backends::{AclAuto, AclDirect, AclDirectTuned, AclGemm, ConvBackend, Cudnn, Tvm};
use pruneperf_gpusim::Device;
use pruneperf_models::{alexnet, mobilenet_v1, resnet50, vgg16, Network};

/// The CLI short names, paired with their devices.
pub fn named_devices() -> [(&'static str, Device); 4] {
    [
        ("hikey970", Device::mali_g72_hikey970()),
        ("odroidxu4", Device::mali_t628_odroidxu4()),
        ("tx2", Device::jetson_tx2()),
        ("nano", Device::jetson_nano()),
    ]
}

/// Resolves a device short name (with the paper's GPU aliases).
///
/// # Errors
///
/// Returns a user-facing message listing the known names.
pub fn device_by_name(name: &str) -> Result<Device, String> {
    let resolved = match name {
        "g72" => "hikey970",
        "t628" => "odroidxu4",
        other => other,
    };
    named_devices()
        .into_iter()
        .find(|(short, _)| *short == resolved)
        .map(|(_, d)| d)
        .ok_or_else(|| {
            format!("unknown device '{name}' (expected hikey970 | odroidxu4 | tx2 | nano)")
        })
}

/// Resolves a backend short name.
///
/// # Errors
///
/// Returns a user-facing message listing the known names.
pub fn backend_by_name(name: &str) -> Result<Box<dyn ConvBackend>, String> {
    match name {
        "acl-gemm" => Ok(Box::new(AclGemm::new())),
        "acl-direct" => Ok(Box::new(AclDirect::new())),
        "acl-direct-tuned" => Ok(Box::new(AclDirectTuned::new())),
        "acl-auto" => Ok(Box::new(AclAuto::new())),
        "cudnn" => Ok(Box::new(Cudnn::new())),
        "tvm" => Ok(Box::new(Tvm::new())),
        other => Err(format!(
            "unknown backend '{other}' (expected acl-gemm | acl-direct | acl-direct-tuned | acl-auto | cudnn | tvm)"
        )),
    }
}

/// Resolves a network short name.
///
/// # Errors
///
/// Returns a user-facing message listing the known names.
pub fn network_by_name(name: &str) -> Result<Network, String> {
    match name {
        "resnet50" => Ok(resnet50()),
        "vgg16" => Ok(vgg16()),
        "alexnet" => Ok(alexnet()),
        "mobilenetv1" => Ok(mobilenet_v1()),
        other => Err(format!(
            "unknown network '{other}' (expected resnet50 | vgg16 | alexnet | mobilenetv1)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_resolve_to_boards() {
        assert_eq!(
            device_by_name("g72").unwrap().name(),
            device_by_name("hikey970").unwrap().name()
        );
        assert_eq!(
            device_by_name("t628").unwrap().name(),
            device_by_name("odroidxu4").unwrap().name()
        );
        assert!(device_by_name("rtx4090")
            .unwrap_err()
            .contains("unknown device"));
    }

    #[test]
    fn all_catalog_names_resolve() {
        for (short, _) in named_devices() {
            assert!(device_by_name(short).is_ok());
        }
        for b in [
            "acl-gemm",
            "acl-direct",
            "acl-direct-tuned",
            "acl-auto",
            "cudnn",
            "tvm",
        ] {
            assert!(backend_by_name(b).is_ok());
        }
        for n in ["resnet50", "vgg16", "alexnet", "mobilenetv1"] {
            assert!(network_by_name(n).is_ok());
        }
        assert!(backend_by_name("mkl").is_err());
        assert!(network_by_name("lenet").is_err());
    }
}

//! The wire protocol: plan requests and line-delimited JSON responses.
//!
//! Requests are one JSON object per line (the HTTP body in live mode,
//! one trace line in replay mode). Responses are rendered by hand in a
//! fixed field order — the same idiom as the chaos/bench/stats reports —
//! so a response byte stream can be golden-tested and byte-compared
//! across worker counts. Floats use Rust's shortest round-trip `{}`
//! form, which is deterministic.

use std::fmt::Write as _;

use serde::Value;
use serde_json::from_str;

/// What the client asks the planner to minimize against the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestObjective {
    /// Latency budget: `prune_to_latency`.
    Latency,
    /// Energy budget: `prune_to_energy`.
    Energy,
}

impl RequestObjective {
    /// The wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            RequestObjective::Latency => "latency",
            RequestObjective::Energy => "energy",
        }
    }
}

/// One plan request, parsed from a JSON object line.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Virtual arrival time in milliseconds (replay/loadgen only; the
    /// admission model queues and sheds against this clock).
    pub arrival_ms: f64,
    /// Network short name (`resnet50` | `vgg16` | `alexnet` |
    /// `mobilenetv1`).
    pub network: String,
    /// Device short name (`hikey970` | `odroidxu4` | `tx2` | `nano`).
    pub device: String,
    /// Backend short name; defaults to `acl-gemm`.
    pub backend: String,
    /// Pruning objective; defaults to latency.
    pub objective: RequestObjective,
    /// Budget fraction in `(0, 1]`.
    pub budget: f64,
    /// When present, the verification run goes through a seeded
    /// fault-injecting backend (the PR-4 fallible path): layers that
    /// still fail after retries degrade the response instead of
    /// erroring it.
    pub fault_seed: Option<u64>,
    /// Permanent-fault rate for the injected faults, in `[0, 1]`.
    pub fault_rate: f64,
}

impl PlanRequest {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message for malformed JSON, missing
    /// required fields (`network`, `device`, `budget`) or out-of-range
    /// values. Name resolution is *not* checked here — unknown names
    /// become error *responses*, not parse failures, so one bad request
    /// cannot desynchronize a replay stream.
    pub fn parse(line: &str) -> Result<PlanRequest, String> {
        let value: Value = from_str(line).map_err(|e| format!("malformed request JSON: {e}"))?;
        let obj_err = || "request must be a JSON object".to_string();
        value.as_object().ok_or_else(obj_err)?;
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("request needs a string field '{key}'"))
        };
        let network = str_field("network")?;
        let device = str_field("device")?;
        let backend = match value.get("backend") {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| "field 'backend' must be a string".to_string())?,
            None => "acl-gemm".to_string(),
        };
        let objective = match value.get("objective") {
            None => RequestObjective::Latency,
            Some(v) => match v.as_str() {
                Some("latency") => RequestObjective::Latency,
                Some("energy") => RequestObjective::Energy,
                _ => return Err("field 'objective' must be \"latency\" or \"energy\"".to_string()),
            },
        };
        let budget = value
            .get("budget")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| "request needs a numeric field 'budget'".to_string())?;
        let arrival_ms = match value.get("arrival_ms") {
            None => 0.0,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| "field 'arrival_ms' must be a number".to_string())?,
        };
        if !arrival_ms.is_finite() || arrival_ms < 0.0 {
            return Err("field 'arrival_ms' must be a finite non-negative number".to_string());
        }
        let fault_seed =
            match value.get("fault_seed") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    "field 'fault_seed' must be a non-negative integer".to_string()
                })?),
            };
        let fault_rate = match value.get("fault_rate") {
            None => 0.25,
            Some(v) => v
                .as_f64()
                .ok_or_else(|| "field 'fault_rate' must be a number".to_string())?,
        };
        if !(0.0..=1.0).contains(&fault_rate) {
            return Err("field 'fault_rate' must be in [0, 1]".to_string());
        }
        Ok(PlanRequest {
            arrival_ms,
            network,
            device,
            backend,
            objective,
            budget,
            fault_seed,
            fault_rate,
        })
    }

    /// The dedup identity: everything that determines the response body
    /// except arrival time. Two requests with equal keys get one
    /// computation and byte-identical bodies (modulo the `deduped` flag).
    pub fn canonical_key(&self) -> String {
        let seed = match self.fault_seed {
            Some(s) => s.to_string(),
            None => "-".to_string(),
        };
        format!(
            "{}|{}|{}|{}|{:016x}|{}|{:016x}",
            self.network,
            self.device,
            self.backend,
            self.objective.as_str(),
            self.budget.to_bits(),
            seed,
            self.fault_rate.to_bits()
        )
    }
}

/// One layer the fallible verification run could not cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedLayerInfo {
    /// Layer label.
    pub layer: String,
    /// Retry attempts spent before giving up.
    pub attempts: u32,
    /// The final error, rendered.
    pub error: String,
}

/// The computed body of a successful plan response.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBody {
    /// Echo of the resolved request surface.
    pub network: String,
    /// Device short name echoed back.
    pub device: String,
    /// Backend short name echoed back.
    pub backend: String,
    /// Objective echoed back.
    pub objective: RequestObjective,
    /// Budget fraction echoed back.
    pub budget: f64,
    /// Planned latency, summed per-layer milliseconds.
    pub latency_ms: f64,
    /// Planned energy, millijoules.
    pub energy_mj: f64,
    /// Modeled accuracy after pruning, in `[0, 1]`.
    pub accuracy: f64,
    /// `(layer label, kept channels)` for every layer the plan touched,
    /// in network order.
    pub kept: Vec<(String, usize)>,
    /// `true` when the fallible verification run lost layers to
    /// permanent faults; the totals then cover only measured layers.
    pub degraded: bool,
    /// Verified latency over the measurable layers of the pruned
    /// network (equals a full verification when `degraded` is false).
    pub verified_ms: f64,
    /// The layers the verification run could not cost.
    pub failed: Vec<FailedLayerInfo>,
}

/// A response to one request line: computed, shed, or refused.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanResponse {
    /// The planner produced a (possibly degraded) plan.
    Ok(PlanBody),
    /// Admission control shed the request: the target worker's queue was
    /// full at arrival (the HTTP layer maps this to 429).
    Shed {
        /// Worker the request hashed to (device shard affinity).
        worker: usize,
        /// Queue depth observed at arrival.
        depth: usize,
    },
    /// The request was understood but refused (unknown name, bad
    /// budget); the message is user-facing (HTTP 400).
    Error(String),
}

impl PlanResponse {
    /// Renders the response as one JSON line (no trailing newline), in a
    /// fixed field order. `id` is the request's index in its stream;
    /// `deduped` marks a follower serving a leader's body.
    pub fn render(&self, id: usize, deduped: bool) -> String {
        let mut out = String::with_capacity(256);
        match self {
            PlanResponse::Ok(body) => {
                let _ = write!(
                    out,
                    "{{\"status\":\"ok\",\"id\":{id},\"network\":{},\"device\":{},\"backend\":{},\
                     \"objective\":\"{}\",\"budget\":{},\"deduped\":{deduped},\"degraded\":{},\
                     \"latency_ms\":{},\"energy_mj\":{},\"accuracy\":{},\"verified_ms\":{}",
                    json_string(&body.network),
                    json_string(&body.device),
                    json_string(&body.backend),
                    body.objective.as_str(),
                    body.budget,
                    body.degraded,
                    body.latency_ms,
                    body.energy_mj,
                    body.accuracy,
                    body.verified_ms,
                );
                out.push_str(",\"kept\":[");
                for (i, (label, channels)) in body.kept.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{},{channels}]", json_string(label));
                }
                out.push_str("],\"failed\":[");
                for (i, f) in body.failed.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"layer\":{},\"attempts\":{},\"error\":{}}}",
                        json_string(&f.layer),
                        f.attempts,
                        json_string(&f.error)
                    );
                }
                out.push_str("]}");
            }
            PlanResponse::Shed { worker, depth } => {
                let _ = write!(
                    out,
                    "{{\"status\":\"shed\",\"id\":{id},\"worker\":{worker},\"depth\":{depth},\
                     \"error\":\"queue full, request shed\"}}"
                );
            }
            PlanResponse::Error(message) => {
                let _ = write!(
                    out,
                    "{{\"status\":\"error\",\"id\":{id},\"error\":{}}}",
                    json_string(message)
                );
            }
        }
        out
    }

    /// The HTTP status code this response maps to in live mode.
    pub fn http_status(&self) -> u16 {
        match self {
            PlanResponse::Ok(_) => 200,
            PlanResponse::Shed { .. } => 429,
            PlanResponse::Error(_) => 400,
        }
    }
}

/// Renders `s` as a JSON string literal with the required escapes.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let req = PlanRequest::parse(
            r#"{"arrival_ms": 3.5, "network": "alexnet", "device": "tx2", "backend": "cudnn",
                "objective": "energy", "budget": 0.7, "fault_seed": 9, "fault_rate": 0.5}"#,
        )
        .unwrap();
        assert_eq!(req.network, "alexnet");
        assert_eq!(req.device, "tx2");
        assert_eq!(req.backend, "cudnn");
        assert_eq!(req.objective, RequestObjective::Energy);
        assert_eq!(req.budget, 0.7);
        assert_eq!(req.arrival_ms, 3.5);
        assert_eq!(req.fault_seed, Some(9));
        assert_eq!(req.fault_rate, 0.5);
    }

    #[test]
    fn defaults_backend_objective_and_arrival() {
        let req =
            PlanRequest::parse(r#"{"network":"vgg16","device":"hikey970","budget":0.8}"#).unwrap();
        assert_eq!(req.backend, "acl-gemm");
        assert_eq!(req.objective, RequestObjective::Latency);
        assert_eq!(req.arrival_ms, 0.0);
        assert_eq!(req.fault_seed, None);
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("not json", "malformed"),
            ("[1,2]", "JSON object"),
            (r#"{"device":"tx2","budget":0.8}"#, "'network'"),
            (r#"{"network":"alexnet","budget":0.8}"#, "'device'"),
            (r#"{"network":"alexnet","device":"tx2"}"#, "'budget'"),
            (
                r#"{"network":"alexnet","device":"tx2","budget":0.8,"objective":"speed"}"#,
                "objective",
            ),
            (
                r#"{"network":"alexnet","device":"tx2","budget":0.8,"fault_rate":2.0}"#,
                "fault_rate",
            ),
            (
                r#"{"network":"alexnet","device":"tx2","budget":0.8,"arrival_ms":-1}"#,
                "arrival_ms",
            ),
        ] {
            let e = PlanRequest::parse(line).unwrap_err();
            assert!(e.contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn canonical_key_ignores_arrival_only() {
        let a = PlanRequest::parse(
            r#"{"arrival_ms":1,"network":"alexnet","device":"tx2","budget":0.8}"#,
        )
        .unwrap();
        let b = PlanRequest::parse(
            r#"{"arrival_ms":9,"network":"alexnet","device":"tx2","budget":0.8}"#,
        )
        .unwrap();
        let c = PlanRequest::parse(
            r#"{"arrival_ms":1,"network":"alexnet","device":"tx2","budget":0.7}"#,
        )
        .unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn responses_render_fixed_order_json() {
        let shed = PlanResponse::Shed {
            worker: 1,
            depth: 2,
        };
        assert_eq!(
            shed.render(7, false),
            "{\"status\":\"shed\",\"id\":7,\"worker\":1,\"depth\":2,\
             \"error\":\"queue full, request shed\"}"
        );
        assert_eq!(shed.http_status(), 429);
        let error = PlanResponse::Error("unknown device 'x'".to_string());
        assert_eq!(
            error.render(0, false),
            "{\"status\":\"error\",\"id\":0,\"error\":\"unknown device 'x'\"}"
        );
        assert_eq!(error.http_status(), 400);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}

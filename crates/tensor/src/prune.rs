//! Weight-level channel pruning with the paper's §II-B semantics.
//!
//! “To prune channel `p`, with `1 ≤ p ≤ n`, the new convolutional layer will
//! have `n−1` channels and each channel `kᵢ, i ∈ [p+1, n]` will be re-indexed
//! to `i = i−1`” — i.e. the filter is removed and the remainder stay dense
//! and contiguous, which is what makes channel pruning compatible with the
//! optimized dense convolution routines.
//!
//! Two views of the same operation are provided:
//!
//! * [`prune_output_channel`] removes one *filter* from an OHWI weight
//!   tensor (shrinking the layer's output channel count), and
//! * [`prune_input_channel`] removes the corresponding slice from the *next*
//!   layer's weights (its input channel count must shrink to match).

use crate::{Tensor, TensorError};

/// Removes output channel `p` (0-based filter index) from OHWI weights.
///
/// # Errors
///
/// Returns [`TensorError::ChannelOutOfRange`] if `p >= O`, and
/// [`TensorError::EmptyDimension`] when removing the last remaining filter.
pub fn prune_output_channel(weights: &Tensor, p: usize) -> Result<Tensor, TensorError> {
    let [o, kh, kw, i] = weights.shape().dims();
    if p >= o {
        return Err(TensorError::ChannelOutOfRange {
            index: p,
            channels: o,
        });
    }
    if o == 1 {
        return Err(TensorError::EmptyDimension {
            shape: [0, kh, kw, i].into(),
        });
    }
    let filter_len = kh * kw * i;
    let src = weights.as_slice();
    let mut data = Vec::with_capacity((o - 1) * filter_len);
    data.extend_from_slice(&src[..p * filter_len]);
    data.extend_from_slice(&src[(p + 1) * filter_len..]);
    Tensor::from_vec([o - 1, kh, kw, i], data)
}

/// Removes input channel `p` from OHWI weights (for the *following* layer).
///
/// # Errors
///
/// Returns [`TensorError::ChannelOutOfRange`] if `p >= I`, and
/// [`TensorError::EmptyDimension`] when removing the last input channel.
pub fn prune_input_channel(weights: &Tensor, p: usize) -> Result<Tensor, TensorError> {
    let [o, kh, kw, i] = weights.shape().dims();
    if p >= i {
        return Err(TensorError::ChannelOutOfRange {
            index: p,
            channels: i,
        });
    }
    if i == 1 {
        return Err(TensorError::EmptyDimension {
            shape: [o, kh, kw, 0].into(),
        });
    }
    let mut out = Tensor::zeros([o, kh, kw, i - 1]);
    for oc in 0..o {
        for ky in 0..kh {
            for kx in 0..kw {
                let mut dst_c = 0;
                for ic in 0..i {
                    if ic == p {
                        continue;
                    }
                    out.set(oc, ky, kx, dst_c, weights.at(oc, ky, kx, ic));
                    dst_c += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Sequentially prunes output channels until `new_count` remain.
///
/// The paper observes that *which* channel is pruned does not affect
/// inference time (§II-B: “the same computation time will be produced no
/// matter which channel is picked”), so — like the paper — channels are
/// eliminated from the end.
///
/// # Errors
///
/// Returns [`TensorError::ChannelOutOfRange`] if `new_count` is zero or
/// exceeds the current filter count.
pub fn prune_output_channels_to(weights: &Tensor, new_count: usize) -> Result<Tensor, TensorError> {
    let [o, kh, kw, i] = weights.shape().dims();
    if new_count == 0 || new_count > o {
        return Err(TensorError::ChannelOutOfRange {
            index: new_count,
            channels: o,
        });
    }
    let filter_len = kh * kw * i;
    let data = weights.as_slice()[..new_count * filter_len].to_vec();
    Tensor::from_vec([new_count, kh, kw, i], data)
}

/// Removes channel `p` from an NHWC activation tensor.
///
/// Used by tests to verify that convolving with pruned weights equals
/// pruning the channels of the full convolution's output.
///
/// # Errors
///
/// Returns [`TensorError::ChannelOutOfRange`] if `p >= C`, and
/// [`TensorError::EmptyDimension`] when removing the last channel.
pub fn drop_activation_channel(t: &Tensor, p: usize) -> Result<Tensor, TensorError> {
    let [n, h, w, c] = t.shape().dims();
    if p >= c {
        return Err(TensorError::ChannelOutOfRange {
            index: p,
            channels: c,
        });
    }
    if c == 1 {
        return Err(TensorError::EmptyDimension {
            shape: [n, h, w, 0].into(),
        });
    }
    let mut out = Tensor::zeros([n, h, w, c - 1]);
    for b in 0..n {
        for y in 0..h {
            for x in 0..w {
                let mut dst = 0;
                for ch in 0..c {
                    if ch == p {
                        continue;
                    }
                    out.set(b, y, x, dst, t.at(b, y, x, ch));
                    dst += 1;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{direct, Conv2dParams};

    fn fixture(shape: [usize; 4], seed: u32) -> Tensor {
        Tensor::from_fn(shape, |i| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(97));
            ((x >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
    }

    #[test]
    fn prune_output_reindexes_remaining_filters() {
        // 4 filters of 1x1x1, values 0..4.
        let w = Tensor::from_fn([4, 1, 1, 1], |i| i as f32);
        let pruned = prune_output_channel(&w, 1).unwrap();
        assert_eq!(pruned.shape().dims(), [3, 1, 1, 1]);
        assert_eq!(pruned.as_slice(), &[0.0, 2.0, 3.0]);
    }

    #[test]
    fn prune_output_bounds() {
        let w = Tensor::zeros([4, 1, 1, 1]);
        assert!(matches!(
            prune_output_channel(&w, 4),
            Err(TensorError::ChannelOutOfRange {
                index: 4,
                channels: 4
            })
        ));
        let one = Tensor::zeros([1, 1, 1, 1]);
        assert!(prune_output_channel(&one, 0).is_err());
    }

    #[test]
    fn prune_input_removes_slice_everywhere() {
        // 2 filters, 1x1, 3 input channels.
        let w = Tensor::from_fn([2, 1, 1, 3], |i| i as f32); // [0 1 2 | 3 4 5]
        let pruned = prune_input_channel(&w, 0).unwrap();
        assert_eq!(pruned.shape().dims(), [2, 1, 1, 2]);
        assert_eq!(pruned.as_slice(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn sequential_prune_to_count() {
        let w = Tensor::from_fn([8, 1, 1, 2], |i| i as f32);
        let pruned = prune_output_channels_to(&w, 5).unwrap();
        assert_eq!(pruned.shape().dims(), [5, 1, 1, 2]);
        // Keeps the first 5 filters untouched.
        assert_eq!(&pruned.as_slice()[..4], &[0.0, 1.0, 2.0, 3.0]);
        assert!(prune_output_channels_to(&w, 0).is_err());
        assert!(prune_output_channels_to(&w, 9).is_err());
    }

    /// The §II-B equivalence: conv(pruned weights) == drop channel of conv output.
    #[test]
    fn pruned_conv_equals_pruned_output() {
        let input = fixture([1, 6, 6, 3], 1);
        let w = fixture([5, 3, 3, 3], 2);
        let p = Conv2dParams::new(1, 1);
        for victim in 0..5 {
            let full = direct::conv2d(&input, &w, p).unwrap();
            let expect = drop_activation_channel(&full, victim).unwrap();
            let pruned_w = prune_output_channel(&w, victim).unwrap();
            let got = direct::conv2d(&input, &pruned_w, p).unwrap();
            assert!(got.all_close(&expect, 0.0), "victim {victim}");
        }
    }

    /// Pruning layer L's outputs and the matching inputs of layer L+1 keeps
    /// the two-layer composition consistent in shape.
    #[test]
    fn cross_layer_prune_shapes_compose() {
        let input = fixture([1, 8, 8, 3], 3);
        let w1 = fixture([6, 3, 3, 3], 4);
        let w2 = fixture([4, 3, 3, 6], 5);
        let p = Conv2dParams::new(1, 1);

        let w1p = prune_output_channel(&w1, 2).unwrap();
        let w2p = prune_input_channel(&w2, 2).unwrap();
        let mid = direct::conv2d(&input, &w1p, p).unwrap();
        let out = direct::conv2d(&mid, &w2p, p).unwrap();
        assert_eq!(out.shape().dims(), [1, 8, 8, 4]);
    }

    #[test]
    fn drop_activation_channel_values() {
        let t = Tensor::from_fn([1, 1, 2, 3], |i| i as f32);
        let d = drop_activation_channel(&t, 1).unwrap();
        assert_eq!(d.shape().dims(), [1, 1, 2, 2]);
        assert_eq!(d.as_slice(), &[0.0, 2.0, 3.0, 5.0]);
    }
}

//! Convolution algorithms.
//!
//! Three interchangeable implementations of 2-D convolution over NHWC
//! activations and OHWI weights:
//!
//! * [`direct`] — the deep-nested-loop formulation (§II-A of the paper):
//!   minimal extra memory, slow in practice, sometimes the only option on
//!   memory-constrained devices.
//! * [`im2col_gemm`] — unroll input patches into a matrix and multiply
//!   (`image2col`, §II-A): the dominant approach because it leans on
//!   optimized GEMM routines.
//! * [`winograd`] — `F(2×2, 3×3)` Winograd for stride-1 3×3 kernels, the
//!   third algorithm cuDNN's selector chooses between,
//! * [`grouped`] — grouped/depthwise convolution for MobileNet-style
//!   architectures (an extension beyond the paper's three networks).
//!
//! All three produce bit-comparable results within floating-point tolerance
//! and are cross-validated by unit and property tests.

pub mod direct;
pub mod gemm;
pub mod grouped;
pub mod im2col_gemm;
pub mod winograd;

use crate::{Shape4, Tensor, TensorError};

/// Stride and (symmetric zero-)padding of a 2-D convolution.
///
/// Kernel extent is carried by the weight tensor (OHWI), so parameters are
/// just the two scalars that the paper's layer catalogs vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    stride: usize,
    pad: usize,
}

impl Conv2dParams {
    /// Creates parameters with the given stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero; use [`Conv2dParams::try_new`] to handle
    /// that case gracefully.
    pub fn new(stride: usize, pad: usize) -> Self {
        // lint: allow(unwrap) — the zero-stride panic is documented above
        Self::try_new(stride, pad).expect("stride must be at least 1")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ZeroStride`] if `stride == 0`.
    pub fn try_new(stride: usize, pad: usize) -> Result<Self, TensorError> {
        if stride == 0 {
            return Err(TensorError::ZeroStride);
        }
        Ok(Conv2dParams { stride, pad })
    }

    /// Convolution stride (same in both spatial dimensions).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding added on every spatial border.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Output extent along one spatial axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit
    /// the padded input even once.
    pub fn out_extent(&self, input: usize, kernel: usize) -> Result<usize, TensorError> {
        let padded = input + 2 * self.pad;
        if kernel > padded {
            return Err(TensorError::WindowTooLarge { padded, kernel });
        }
        Ok((padded - kernel) / self.stride + 1)
    }
}

impl Default for Conv2dParams {
    /// Stride 1, no padding.
    fn default() -> Self {
        Conv2dParams { stride: 1, pad: 0 }
    }
}

/// Validates an (input, weights) pair and computes the output shape.
///
/// Shared by every convolution algorithm so they agree on error behaviour.
///
/// # Errors
///
/// * [`TensorError::ChannelMismatch`] — input `C` differs from weights `I`.
/// * [`TensorError::WindowTooLarge`] — kernel exceeds the padded input.
pub fn output_shape(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
) -> Result<Shape4, TensorError> {
    let [n, h, w, c_in] = input.shape().dims();
    let [c_out, kh, kw, c_in_w] = weights.shape().dims();
    if c_in != c_in_w {
        return Err(TensorError::ChannelMismatch {
            input: c_in,
            weights: c_in_w,
        });
    }
    let out_h = params.out_extent(h, kh)?;
    let out_w = params.out_extent(w, kw)?;
    Ok(Shape4::new(n, out_h, out_w, c_out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_matches_formula() {
        let p = Conv2dParams::new(1, 1);
        assert_eq!(p.out_extent(28, 3).unwrap(), 28);
        let p = Conv2dParams::new(2, 3);
        assert_eq!(p.out_extent(224, 7).unwrap(), 112);
        let p = Conv2dParams::new(4, 2);
        assert_eq!(p.out_extent(224, 11).unwrap(), 55);
    }

    #[test]
    fn out_extent_rejects_oversized_kernel() {
        let p = Conv2dParams::default();
        assert!(matches!(
            p.out_extent(2, 3),
            Err(TensorError::WindowTooLarge {
                padded: 2,
                kernel: 3
            })
        ));
        // Padding can make it fit.
        assert_eq!(Conv2dParams::new(1, 1).out_extent(2, 3).unwrap(), 2);
    }

    #[test]
    fn zero_stride_is_rejected() {
        assert!(matches!(
            Conv2dParams::try_new(0, 0),
            Err(TensorError::ZeroStride)
        ));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn new_panics_on_zero_stride() {
        let _ = Conv2dParams::new(0, 0);
    }

    #[test]
    fn output_shape_checks_channels() {
        let input = Tensor::zeros([1, 8, 8, 3]);
        let weights = Tensor::zeros([4, 3, 3, 5]);
        assert!(matches!(
            output_shape(&input, &weights, Conv2dParams::new(1, 1)),
            Err(TensorError::ChannelMismatch {
                input: 3,
                weights: 5
            })
        ));
    }

    #[test]
    fn output_shape_happy_path() {
        let input = Tensor::zeros([2, 28, 28, 128]);
        let weights = Tensor::zeros([96, 3, 3, 128]);
        let s = output_shape(&input, &weights, Conv2dParams::new(1, 1)).unwrap();
        assert_eq!(s.dims(), [2, 28, 28, 96]);
    }
}

//! Blocked single-precision general matrix multiplication.
//!
//! The GEMM underlying [`super::im2col_gemm`]. Row-major, cache-blocked,
//! no unsafe; small enough to audit, fast enough for the test workloads.

/// A row-major matrix view used by [`gemm`].
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row-major backing storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

/// Cache-block edge used by [`gemm`]; 64×64 f32 tiles fit comfortably in L1.
const BLOCK: usize = 64;

/// Computes `C = A × B` with simple cache blocking.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i0 in (0..m).step_by(BLOCK) {
        let i_end = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k_end = (k0 + BLOCK).min(k);
            for j0 in (0..n).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(n);
                for i in i0..i_end {
                    for kk in k0..k_end {
                        let aik = a.at(i, kk);
                        // lint: allow(float-eq) — exact-zero sparsity skip
                        if aik == 0.0 {
                            continue;
                        }
                        for j in j0..j_end {
                            let v = c.at(i, j) + aik * b.at(kk, j);
                            c.set(i, j, v);
                        }
                    }
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(gemm(&a, &i), a);
        assert_eq!(gemm(&i, &a), a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(gemm(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(3, 2, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let c = gemm(&a, &b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.as_slice(), &[14.0, 32.0]);
    }

    /// Blocking must not change results: compare a size crossing BLOCK
    /// boundaries against a naive triple loop.
    #[test]
    fn blocked_matches_naive_across_block_edge() {
        let m = BLOCK + 7;
        let k = BLOCK + 3;
        let n = BLOCK + 5;
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| ((i % 11) as f32) - 5.0).collect());
        let c = gemm(&a, &b);
        // Naive reference.
        for i in (0..m).step_by(17) {
            for j in (0..n).step_by(19) {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                assert_eq!(c.at(i, j), acc, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = gemm(&a, &b);
    }

    #[test]
    #[should_panic(expected = "matrix data length")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}

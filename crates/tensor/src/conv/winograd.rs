//! Winograd `F(2×2, 3×3)` convolution.
//!
//! The third algorithm in cuDNN's forward-convolution selector (alongside
//! implicit GEMM and precomputed GEMM). Only stride-1 3×3 kernels are
//! supported; the backend models fall back to GEMM elsewhere, exactly as
//! cuDNN's heuristics do.
//!
//! Per 2×2 output tile the arithmetic drops from 36 multiplies (direct) to
//! 16, at the cost of input/filter transforms — the trade the simulator's
//! cuDNN cost model reflects.

use crate::{Tensor, TensorError};

use super::{output_shape, Conv2dParams};

/// Filter transform `U = G · g · Gᵀ` for one 3×3 filter slice.
fn transform_filter(g: [[f32; 3]; 3]) -> [[f32; 4]; 4] {
    // G = [[1, 0, 0], [1/2, 1/2, 1/2], [1/2, -1/2, 1/2], [0, 0, 1]]
    let mut tmp = [[0.0f32; 3]; 4]; // G * g
    for (r, row) in tmp.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = match r {
                0 => g[0][c],
                1 => 0.5 * (g[0][c] + g[1][c] + g[2][c]),
                2 => 0.5 * (g[0][c] - g[1][c] + g[2][c]),
                _ => g[2][c],
            };
        }
    }
    let mut u = [[0.0f32; 4]; 4]; // (G*g) * G^T
    for (r, row) in u.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = match c {
                0 => tmp[r][0],
                1 => 0.5 * (tmp[r][0] + tmp[r][1] + tmp[r][2]),
                2 => 0.5 * (tmp[r][0] - tmp[r][1] + tmp[r][2]),
                _ => tmp[r][2],
            };
        }
    }
    u
}

/// Input transform `V = Bᵀ · d · B` for one 4×4 input tile.
fn transform_input(d: [[f32; 4]; 4]) -> [[f32; 4]; 4] {
    // B^T = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
    let mut tmp = [[0.0f32; 4]; 4]; // B^T * d
    for c in 0..4 {
        tmp[0][c] = d[0][c] - d[2][c];
        tmp[1][c] = d[1][c] + d[2][c];
        tmp[2][c] = d[2][c] - d[1][c];
        tmp[3][c] = d[1][c] - d[3][c];
    }
    let mut v = [[0.0f32; 4]; 4]; // (B^T*d) * B
    for r in 0..4 {
        v[r][0] = tmp[r][0] - tmp[r][2];
        v[r][1] = tmp[r][1] + tmp[r][2];
        v[r][2] = tmp[r][2] - tmp[r][1];
        v[r][3] = tmp[r][1] - tmp[r][3];
    }
    v
}

/// Output transform `Y = Aᵀ · m · A` producing the 2×2 tile.
fn transform_output(m: [[f32; 4]; 4]) -> [[f32; 2]; 2] {
    // A^T = [[1,1,1,0],[0,1,-1,-1]]
    let mut tmp = [[0.0f32; 4]; 2]; // A^T * m
    for c in 0..4 {
        tmp[0][c] = m[0][c] + m[1][c] + m[2][c];
        tmp[1][c] = m[1][c] - m[2][c] - m[3][c];
    }
    let mut y = [[0.0f32; 2]; 2];
    for r in 0..2 {
        y[r][0] = tmp[r][0] + tmp[r][1] + tmp[r][2];
        y[r][1] = tmp[r][1] - tmp[r][2] - tmp[r][3];
    }
    y
}

/// Computes a stride-1 3×3 convolution with Winograd `F(2×2, 3×3)`.
///
/// Semantically identical to [`super::direct::conv2d`] for supported
/// configurations, up to floating-point rounding (the transforms reassociate
/// additions).
///
/// # Errors
///
/// * [`TensorError::UnsupportedKernel`] for non-3×3 kernels or stride ≠ 1.
/// * Shape-validation errors of [`output_shape`].
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let [c_out, kh, kw, c_in] = weights.shape().dims();
    if (kh, kw) != (3, 3) {
        return Err(TensorError::UnsupportedKernel {
            reason: "winograd F(2x2,3x3) requires a 3x3 kernel",
        });
    }
    if params.stride() != 1 {
        return Err(TensorError::UnsupportedKernel {
            reason: "winograd F(2x2,3x3) requires stride 1",
        });
    }
    let out_shape = output_shape(input, weights, params)?;
    let [n, h, w, _] = input.shape().dims();
    let [_, out_h, out_w, _] = out_shape.dims();
    let pad = params.pad() as isize;

    // Precompute filter transforms: u[oc][ic].
    let mut u = vec![vec![[[0.0f32; 4]; 4]; c_in]; c_out];
    #[allow(clippy::needless_range_loop)]
    for oc in 0..c_out {
        #[allow(clippy::needless_range_loop)]
        for ic in 0..c_in {
            let mut g = [[0.0f32; 3]; 3];
            for (ky, grow) in g.iter_mut().enumerate() {
                for (kx, gv) in grow.iter_mut().enumerate() {
                    *gv = weights.at(oc, ky, kx, ic);
                }
            }
            u[oc][ic] = transform_filter(g);
        }
    }

    let mut out = Tensor::zeros(out_shape);
    let tiles_y = out_h.div_ceil(2);
    let tiles_x = out_w.div_ceil(2);
    for b in 0..n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather the 4x4 input tile for every input channel once.
                let mut v_per_ic = vec![[[0.0f32; 4]; 4]; c_in];
                for (ic, v_slot) in v_per_ic.iter_mut().enumerate() {
                    let mut d = [[0.0f32; 4]; 4];
                    for (r, drow) in d.iter_mut().enumerate() {
                        let iy = (ty * 2 + r) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for (c, dv) in drow.iter_mut().enumerate() {
                            let ix = (tx * 2 + c) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            *dv = input.at(b, iy as usize, ix as usize, ic);
                        }
                    }
                    *v_slot = transform_input(d);
                }
                #[allow(clippy::needless_range_loop)]
                for oc in 0..c_out {
                    // Elementwise product accumulated over input channels.
                    let mut m = [[0.0f32; 4]; 4];
                    for ic in 0..c_in {
                        let uf = &u[oc][ic];
                        let vf = &v_per_ic[ic];
                        for r in 0..4 {
                            for c in 0..4 {
                                m[r][c] += uf[r][c] * vf[r][c];
                            }
                        }
                    }
                    let y = transform_output(m);
                    for (r, yrow) in y.iter().enumerate() {
                        for (c, yv) in yrow.iter().enumerate() {
                            let oy = ty * 2 + r;
                            let ox = tx * 2 + c;
                            if oy < out_h && ox < out_w {
                                out.set(b, oy, ox, oc, *yv);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct;

    fn fixture(shape: [usize; 4], seed: u32) -> Tensor {
        Tensor::from_fn(shape, |i| {
            let x = (i as u32)
                .wrapping_mul(2246822519)
                .wrapping_add(seed.wrapping_mul(374761393));
            ((x >> 9) as f32 / (1 << 23) as f32) - 1.0
        })
    }

    #[test]
    fn rejects_non_3x3() {
        let input = Tensor::zeros([1, 8, 8, 2]);
        let w = Tensor::zeros([2, 5, 5, 2]);
        assert!(matches!(
            conv2d(&input, &w, Conv2dParams::new(1, 2)),
            Err(TensorError::UnsupportedKernel { .. })
        ));
    }

    #[test]
    fn rejects_stride_2() {
        let input = Tensor::zeros([1, 8, 8, 2]);
        let w = Tensor::zeros([2, 3, 3, 2]);
        assert!(matches!(
            conv2d(&input, &w, Conv2dParams::new(2, 1)),
            Err(TensorError::UnsupportedKernel { .. })
        ));
    }

    #[test]
    fn matches_direct_even_output() {
        let input = fixture([1, 8, 8, 3], 11);
        let w = fixture([4, 3, 3, 3], 12);
        let p = Conv2dParams::new(1, 1);
        let a = direct::conv2d(&input, &w, p).unwrap();
        let b = conv2d(&input, &w, p).unwrap();
        assert!(a.all_close(&b, 1e-3), "diff {:?}", a.max_abs_diff(&b));
    }

    #[test]
    fn matches_direct_odd_output_needs_edge_tiles() {
        // 7x7 output: last tile row/col is partial.
        let input = fixture([1, 7, 7, 2], 21);
        let w = fixture([3, 3, 3, 2], 22);
        let p = Conv2dParams::new(1, 1);
        let a = direct::conv2d(&input, &w, p).unwrap();
        let b = conv2d(&input, &w, p).unwrap();
        assert!(a.all_close(&b, 1e-3));
    }

    #[test]
    fn matches_direct_valid_padding() {
        let input = fixture([2, 9, 9, 2], 31);
        let w = fixture([2, 3, 3, 2], 32);
        let p = Conv2dParams::default(); // pad 0 -> 7x7 output
        let a = direct::conv2d(&input, &w, p).unwrap();
        let b = conv2d(&input, &w, p).unwrap();
        assert!(a.all_close(&b, 1e-3));
    }

    #[test]
    fn filter_transform_of_identity_kernel() {
        // A kernel with only the centre tap set convolves as a shift; its
        // transform should reproduce that via the output transform.
        let mut g = [[0.0f32; 3]; 3];
        g[1][1] = 1.0;
        let u = transform_filter(g);
        // d = all ones -> V, m = u .* v, y must be all ones.
        let d = [[1.0f32; 4]; 4];
        let v = transform_input(d);
        let mut m = [[0.0f32; 4]; 4];
        for r in 0..4 {
            for c in 0..4 {
                m[r][c] = u[r][c] * v[r][c];
            }
        }
        let y = transform_output(m);
        for row in y {
            for val in row {
                assert!((val - 1.0).abs() < 1e-6, "{val}");
            }
        }
    }
}

//! Direct (deep-nested-loop) convolution.
//!
//! §II-A of the paper: “this method shifts each filter (channel) one position
//! at a time over an input image with a deep nested loop. This requires the
//! least amount of extra memory … although it is also very slow.”

use crate::{Tensor, TensorError};

use super::{output_shape, Conv2dParams};

/// Computes a 2-D convolution with the direct nested-loop algorithm.
///
/// `input` is NHWC, `weights` is OHWI; the result is NHWC with
/// `C = weights.O`. Out-of-bounds taps read zero (zero padding).
///
/// # Errors
///
/// Propagates the shape-validation errors of [`output_shape`].
///
/// # Example
///
/// ```
/// use pruneperf_tensor::{Tensor, conv::{Conv2dParams, direct}};
/// # fn main() -> Result<(), pruneperf_tensor::TensorError> {
/// let input = Tensor::from_fn([1, 4, 4, 1], |i| i as f32);
/// let identity = Tensor::from_vec([1, 1, 1, 1], vec![1.0])?;
/// let out = direct::conv2d(&input, &identity, Conv2dParams::default())?;
/// assert_eq!(out.as_slice(), input.as_slice());
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let out_shape = output_shape(input, weights, params)?;
    let [n, h, w, c_in] = input.shape().dims();
    let [c_out, kh, kw, _] = weights.shape().dims();
    let [_, out_h, out_w, _] = out_shape.dims();
    let stride = params.stride();
    let pad = params.pad() as isize;

    let mut out = Tensor::zeros(out_shape);
    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for oc in 0..c_out {
                    let mut acc = 0.0f32;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for ic in 0..c_in {
                                acc += input.at(b, iy as usize, ix as usize, ic)
                                    * weights.at(oc, ky, kx, ic);
                            }
                        }
                    }
                    out.set(b, oy, ox, oc, acc);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1×1 convolution with a single unit weight is the identity per channel.
    #[test]
    fn identity_1x1() {
        let input = Tensor::from_fn([1, 3, 3, 1], |i| i as f32 + 1.0);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::default()).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    /// Hand-computed 2×2 box filter over a 3×3 image, valid padding.
    #[test]
    fn box_filter_2x2_valid() {
        // input rows: [1 2 3; 4 5 6; 7 8 9]
        let input = Tensor::from_fn([1, 3, 3, 1], |i| i as f32 + 1.0);
        let w = Tensor::from_vec([1, 2, 2, 1], vec![1.0; 4]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::default()).unwrap();
        assert_eq!(out.shape().dims(), [1, 2, 2, 1]);
        assert_eq!(out.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    /// Zero padding contributes zero taps at the borders.
    #[test]
    fn same_padding_borders_read_zero() {
        let input = Tensor::from_fn([1, 2, 2, 1], |i| i as f32 + 1.0); // [1 2; 3 4]
        let w = Tensor::from_vec([1, 3, 3, 1], vec![1.0; 9]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::new(1, 1)).unwrap();
        // Every output is the sum of the in-bounds neighbourhood.
        assert_eq!(out.shape().dims(), [1, 2, 2, 1]);
        assert_eq!(out.as_slice(), &[10.0, 10.0, 10.0, 10.0]);
    }

    /// Stride-2 picks every other window.
    #[test]
    fn stride_two() {
        let input = Tensor::from_fn([1, 4, 4, 1], |i| i as f32);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![2.0]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::new(2, 0)).unwrap();
        assert_eq!(out.shape().dims(), [1, 2, 2, 1]);
        assert_eq!(out.as_slice(), &[0.0, 4.0, 16.0, 20.0]);
    }

    /// Each output channel is an independent dot product with its filter.
    #[test]
    fn multi_channel_independence() {
        let input = Tensor::from_fn([1, 1, 1, 3], |i| (i + 1) as f32); // [1,2,3]
                                                                       // Two 1x1 filters over 3 input channels.
        let w = Tensor::from_vec([2, 1, 1, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::default()).unwrap();
        assert_eq!(out.as_slice(), &[1.0, 5.0]);
    }

    /// Batch entries are convolved independently.
    #[test]
    fn batch_independence() {
        let input = Tensor::from_fn([2, 2, 2, 1], |i| i as f32);
        let w = Tensor::from_vec([1, 2, 2, 1], vec![1.0; 4]).unwrap();
        let out = conv2d(&input, &w, Conv2dParams::default()).unwrap();
        assert_eq!(out.shape().dims(), [2, 1, 1, 1]);
        assert_eq!(
            out.as_slice(),
            &[0.0 + 1.0 + 2.0 + 3.0, 4.0 + 5.0 + 6.0 + 7.0]
        );
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let input = Tensor::zeros([1, 4, 4, 3]);
        let w = Tensor::zeros([2, 3, 3, 4]);
        assert!(conv2d(&input, &w, Conv2dParams::new(1, 1)).is_err());
    }
}

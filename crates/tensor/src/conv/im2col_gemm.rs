//! im2col + GEMM convolution.
//!
//! §II-A of the paper: “this method performs the convolution by unrolling
//! each image patch to convolve over into a column of a larger matrix of
//! unrolled patches, while filters (channels) are unrolled into rows to form
//! a second large matrix, in a process known as image2col.”
//!
//! The intermediate patch matrix costs roughly `kh*kw` times the input —
//! almost an order of magnitude more memory for 3×3 filters, which is why
//! the paper notes direct convolution remains the only option on very
//! memory-constrained devices.

use crate::{Tensor, TensorError};

use super::gemm::{gemm, Matrix};
use super::{output_shape, Conv2dParams};

/// Unrolls convolution patches of one batch entry into a matrix.
///
/// Row `oy*out_w + ox` holds the flattened `kh×kw×c_in` receptive field of
/// output position `(oy, ox)`; out-of-bounds taps are zero. This is the
/// `im2col` step that ACL dispatches as its `im2col3x3_nhwc` kernel.
///
/// # Errors
///
/// Propagates the shape-validation errors of [`Conv2dParams::out_extent`].
pub fn im2col(
    input: &Tensor,
    batch: usize,
    kernel: (usize, usize),
    params: Conv2dParams,
) -> Result<Matrix, TensorError> {
    let [_, h, w, c_in] = input.shape().dims();
    let (kh, kw) = kernel;
    let out_h = params.out_extent(h, kh)?;
    let out_w = params.out_extent(w, kw)?;
    let stride = params.stride();
    let pad = params.pad() as isize;

    let mut m = Matrix::zeros(out_h * out_w, kh * kw * c_in);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let row = oy * out_w + ox;
            for ky in 0..kh {
                let iy = (oy * stride + ky) as isize - pad;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for kx in 0..kw {
                    let ix = (ox * stride + kx) as isize - pad;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    for ic in 0..c_in {
                        let col = (ky * kw + kx) * c_in + ic;
                        m.set(row, col, input.at(batch, iy as usize, ix as usize, ic));
                    }
                }
            }
        }
    }
    Ok(m)
}

/// Reshapes OHWI weights into a `(kh*kw*c_in) × c_out` matrix.
///
/// Columns are output channels; this is ACL's `reshape_to_columns` kernel.
pub fn weights_to_columns(weights: &Tensor) -> Matrix {
    let [c_out, kh, kw, c_in] = weights.shape().dims();
    let mut m = Matrix::zeros(kh * kw * c_in, c_out);
    for oc in 0..c_out {
        for ky in 0..kh {
            for kx in 0..kw {
                for ic in 0..c_in {
                    let row = (ky * kw + kx) * c_in + ic;
                    m.set(row, oc, weights.at(oc, ky, kx, ic));
                }
            }
        }
    }
    m
}

/// Computes a 2-D convolution via im2col + GEMM.
///
/// Semantically identical to [`super::direct::conv2d`]; cross-validated by
/// property tests in this crate.
///
/// # Errors
///
/// Propagates the shape-validation errors of [`output_shape`].
pub fn conv2d(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let out_shape = output_shape(input, weights, params)?;
    let [n, _, _, _] = input.shape().dims();
    let [c_out, kh, kw, _] = weights.shape().dims();
    let [_, out_h, out_w, _] = out_shape.dims();

    let w_cols = weights_to_columns(weights);
    let mut out = Tensor::zeros(out_shape);
    for b in 0..n {
        let patches = im2col(input, b, (kh, kw), params)?;
        let prod = gemm(&patches, &w_cols); // (out_h*out_w) x c_out
        for oy in 0..out_h {
            for ox in 0..out_w {
                for oc in 0..c_out {
                    out.set(b, oy, ox, oc, prod.at(oy * out_w + ox, oc));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct;

    fn fixture(shape: [usize; 4], seed: u32) -> Tensor {
        // Small deterministic pseudo-random values in [-1, 1).
        Tensor::from_fn(shape, |i| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(40503));
            ((x >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
    }

    #[test]
    fn im2col_identity_for_1x1_stride1() {
        let input = fixture([1, 4, 4, 3], 1);
        let m = im2col(&input, 0, (1, 1), Conv2dParams::default()).unwrap();
        assert_eq!(m.rows(), 16);
        assert_eq!(m.cols(), 3);
        // Each row is exactly the pixel's channel vector.
        for y in 0..4 {
            for x in 0..4 {
                for c in 0..3 {
                    assert_eq!(m.at(y * 4 + x, c), input.at(0, y, x, c));
                }
            }
        }
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let input = Tensor::from_fn([1, 2, 2, 1], |i| i as f32 + 1.0);
        let m = im2col(&input, 0, (3, 3), Conv2dParams::new(1, 1)).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 9);
        // Top-left output: only taps (1,1),(1,2),(2,1),(2,2) of the kernel
        // are in bounds -> kernel positions 4,5,7,8.
        let row0: Vec<f32> = (0..9).map(|c| m.at(0, c)).collect();
        assert_eq!(row0, vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn weights_to_columns_layout() {
        // 2 output channels, 1x1 kernel, 3 input channels.
        let w = Tensor::from_fn([2, 1, 1, 3], |i| i as f32);
        let m = weights_to_columns(&w);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        // Column 0 = filter 0 = [0,1,2]; column 1 = filter 1 = [3,4,5].
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(2, 0), 2.0);
        assert_eq!(m.at(0, 1), 3.0);
        assert_eq!(m.at(2, 1), 5.0);
    }

    #[test]
    fn matches_direct_3x3_pad1() {
        let input = fixture([1, 9, 9, 4], 7);
        let weights = fixture([6, 3, 3, 4], 9);
        let p = Conv2dParams::new(1, 1);
        let a = direct::conv2d(&input, &weights, p).unwrap();
        let b = conv2d(&input, &weights, p).unwrap();
        assert!(a.all_close(&b, 1e-4), "diff {:?}", a.max_abs_diff(&b));
    }

    #[test]
    fn matches_direct_strided_batch() {
        let input = fixture([2, 11, 7, 3], 3);
        let weights = fixture([5, 3, 3, 3], 4);
        let p = Conv2dParams::new(2, 1);
        let a = direct::conv2d(&input, &weights, p).unwrap();
        let b = conv2d(&input, &weights, p).unwrap();
        assert!(a.all_close(&b, 1e-4));
    }

    #[test]
    fn matches_direct_1x1() {
        let input = fixture([1, 14, 14, 8], 5);
        let weights = fixture([12, 1, 1, 8], 6);
        let p = Conv2dParams::default();
        let a = direct::conv2d(&input, &weights, p).unwrap();
        let b = conv2d(&input, &weights, p).unwrap();
        assert!(a.all_close(&b, 1e-4));
    }
}

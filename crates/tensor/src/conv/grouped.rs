//! Grouped and depthwise convolution.
//!
//! Extension beyond the paper's three networks: efficient mobile
//! architectures (MobileNet and successors) replace dense convolutions with
//! grouped/depthwise ones, and per-device channel selection matters there
//! just as much. Weights are OHWI with the *per-group* input channel count:
//! `[c_out, kh, kw, c_in / groups]`; output channel `o` reads input group
//! `o / (c_out / groups)`.

use crate::{Shape4, Tensor, TensorError};

use super::Conv2dParams;

/// Computes a grouped 2-D convolution; `groups == c_in == c_out` is the
/// depthwise case.
///
/// # Errors
///
/// * [`TensorError::ChannelMismatch`] — `groups` does not divide the input
///   channels, or the weights' per-group input count is inconsistent.
/// * [`TensorError::WindowTooLarge`] — kernel exceeds the padded input.
pub fn conv2d_grouped(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
    groups: usize,
) -> Result<Tensor, TensorError> {
    let [n, h, w, c_in] = input.shape().dims();
    let [c_out, kh, kw, cg] = weights.shape().dims();
    if groups == 0 || c_in % groups != 0 || c_out % groups != 0 || cg != c_in / groups {
        return Err(TensorError::ChannelMismatch {
            input: c_in,
            weights: cg * groups,
        });
    }
    let out_h = params.out_extent(h, kh)?;
    let out_w = params.out_extent(w, kw)?;
    let out_per_group = c_out / groups;
    let stride = params.stride();
    let pad = params.pad() as isize;

    let mut out = Tensor::zeros(Shape4::new(n, out_h, out_w, c_out));
    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for oc in 0..c_out {
                    let group = oc / out_per_group;
                    let ic_base = group * cg;
                    let mut acc = 0.0f32;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for g_ic in 0..cg {
                                acc += input.at(b, iy as usize, ix as usize, ic_base + g_ic)
                                    * weights.at(oc, ky, kx, g_ic);
                            }
                        }
                    }
                    out.set(b, oy, ox, oc, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Depthwise convolution: one filter per input channel
/// (`groups == c_in == c_out`).
///
/// # Errors
///
/// Same as [`conv2d_grouped`].
pub fn conv2d_depthwise(
    input: &Tensor,
    weights: &Tensor,
    params: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let c_in = input.shape().dims()[3];
    conv2d_grouped(input, weights, params, c_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct;

    fn fixture(shape: [usize; 4], seed: u32) -> Tensor {
        Tensor::from_fn(shape, |i| {
            let x = (i as u32)
                .wrapping_mul(747796405)
                .wrapping_add(seed.wrapping_mul(2891336453));
            ((x >> 9) as f32 / (1 << 23) as f32) - 1.0
        })
    }

    /// groups = 1 reduces to dense convolution.
    #[test]
    fn groups_one_matches_direct() {
        let input = fixture([1, 6, 6, 4], 1);
        let weights = fixture([6, 3, 3, 4], 2);
        let p = Conv2dParams::new(1, 1);
        let dense = direct::conv2d(&input, &weights, p).unwrap();
        let grouped = conv2d_grouped(&input, &weights, p, 1).unwrap();
        assert!(dense.all_close(&grouped, 0.0));
    }

    /// Grouped conv equals dense conv with block-diagonal weights.
    #[test]
    fn grouped_matches_block_diagonal_dense() {
        let groups = 2;
        let input = fixture([1, 5, 5, 4], 3); // 2 channels per group
        let gw = fixture([6, 3, 3, 2], 4); // 3 outputs per group
                                           // Expand to dense weights with zeros outside each block.
        let mut dense_w = Tensor::zeros([6, 3, 3, 4]);
        for oc in 0..6 {
            let group = oc / 3;
            for ky in 0..3 {
                for kx in 0..3 {
                    for gic in 0..2 {
                        dense_w.set(oc, ky, kx, group * 2 + gic, gw.at(oc, ky, kx, gic));
                    }
                }
            }
        }
        let p = Conv2dParams::new(1, 1);
        let expect = direct::conv2d(&input, &dense_w, p).unwrap();
        let got = conv2d_grouped(&input, &gw, p, groups).unwrap();
        assert!(got.all_close(&expect, 1e-5));
    }

    /// Depthwise: each output channel sees exactly its own input channel.
    #[test]
    fn depthwise_isolates_channels() {
        let input = fixture([1, 4, 4, 3], 5);
        // Identity 1x1 depthwise filters with per-channel scales.
        let w = Tensor::from_vec([3, 1, 1, 1], vec![1.0, 2.0, -1.0]).unwrap();
        let out = conv2d_depthwise(&input, &w, Conv2dParams::default()).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out.at(0, y, x, 0), input.at(0, y, x, 0));
                assert_eq!(out.at(0, y, x, 1), 2.0 * input.at(0, y, x, 1));
                assert_eq!(out.at(0, y, x, 2), -input.at(0, y, x, 2));
            }
        }
    }

    #[test]
    fn invalid_group_configurations_rejected() {
        let input = Tensor::zeros([1, 4, 4, 4]);
        let w = Tensor::zeros([4, 3, 3, 2]);
        let p = Conv2dParams::new(1, 1);
        // groups must divide channels and match weights.
        assert!(conv2d_grouped(&input, &w, p, 3).is_err());
        assert!(conv2d_grouped(&input, &w, p, 0).is_err());
        assert!(conv2d_grouped(&input, &w, p, 4).is_err()); // cg should be 1
        assert!(conv2d_grouped(&input, &w, p, 2).is_ok());
    }

    #[test]
    fn depthwise_stride_two() {
        let input = fixture([1, 6, 6, 2], 7);
        let w = fixture([2, 3, 3, 1], 8);
        let out = conv2d_depthwise(&input, &w, Conv2dParams::new(2, 1)).unwrap();
        assert_eq!(out.shape().dims(), [1, 3, 3, 2]);
    }
}

//! Non-convolutional layers: pooling, ReLU and fully-connected.
//!
//! §II-A of the paper: “Although important, these affine transformations
//! account for very little in the total inference time of modern neural
//! networks, with most of the computational load being executed in the
//! convolutional layer.” These reference implementations let the models
//! crate assemble *complete* networks and verify that claim numerically.

use crate::{Tensor, TensorError};

/// Element-wise rectified linear unit.
pub fn relu(t: &Tensor) -> Tensor {
    Tensor::from_vec(t.shape(), t.as_slice().iter().map(|v| v.max(0.0)).collect())
        // lint: allow(unwrap) — maps an existing tensor element-wise
        .expect("same shape, same length")
}

/// 2-D max pooling with a square window and stride (no padding).
///
/// # Errors
///
/// Returns [`TensorError::WindowTooLarge`] if the window does not fit, and
/// [`TensorError::ZeroStride`] for a zero stride.
pub fn max_pool2d(t: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    pool2d(
        t,
        window,
        stride,
        f32::NEG_INFINITY,
        |acc, v| acc.max(v),
        |acc, _| acc,
    )
}

/// 2-D average pooling with a square window and stride (no padding).
///
/// # Errors
///
/// Returns [`TensorError::WindowTooLarge`] if the window does not fit, and
/// [`TensorError::ZeroStride`] for a zero stride.
pub fn avg_pool2d(t: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    pool2d(
        t,
        window,
        stride,
        0.0,
        |acc, v| acc + v,
        |acc, n| acc / n as f32,
    )
}

fn pool2d(
    t: &Tensor,
    window: usize,
    stride: usize,
    init: f32,
    fold: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor, TensorError> {
    if stride == 0 {
        return Err(TensorError::ZeroStride);
    }
    let [n, h, w, c] = t.shape().dims();
    if window == 0 || window > h || window > w {
        return Err(TensorError::WindowTooLarge {
            padded: h.min(w),
            kernel: window,
        });
    }
    let out_h = (h - window) / stride + 1;
    let out_w = (w - window) / stride + 1;
    let mut out = Tensor::zeros([n, out_h, out_w, c]);
    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for ch in 0..c {
                    let mut acc = init;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc = fold(acc, t.at(b, oy * stride + ky, ox * stride + kx, ch));
                        }
                    }
                    out.set(b, oy, ox, ch, finish(acc, window * window));
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling: NHWC → `[n, 1, 1, c]`.
pub fn global_avg_pool(t: &Tensor) -> Tensor {
    let [n, h, w, c] = t.shape().dims();
    let mut out = Tensor::zeros([n, 1, 1, c]);
    let denom = (h * w) as f32;
    for b in 0..n {
        for ch in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += t.at(b, y, x, ch);
                }
            }
            out.set(b, 0, 0, ch, acc / denom);
        }
    }
    out
}

/// Fully-connected layer: flattens each batch entry and multiplies by a
/// `[out_features, in_features]`-shaped weight tensor (stored as OHWI with
/// `kh = kw = 1`).
///
/// # Errors
///
/// Returns [`TensorError::ChannelMismatch`] if the flattened input length
/// differs from the weights' input features.
pub fn fully_connected(t: &Tensor, weights: &Tensor) -> Result<Tensor, TensorError> {
    let [n, h, w, c] = t.shape().dims();
    let [out_f, kh, kw, in_f] = weights.shape().dims();
    let flat = h * w * c;
    if kh != 1 || kw != 1 {
        return Err(TensorError::UnsupportedKernel {
            reason: "fully-connected weights must be stored as [out, 1, 1, in]",
        });
    }
    if in_f != flat {
        return Err(TensorError::ChannelMismatch {
            input: flat,
            weights: in_f,
        });
    }
    let mut out = Tensor::zeros([n, 1, 1, out_f]);
    let x = t.as_slice();
    let wts = weights.as_slice();
    for b in 0..n {
        for o in 0..out_f {
            let mut acc = 0.0;
            for i in 0..flat {
                acc += x[b * flat + i] * wts[o * flat + i];
            }
            out.set(b, 0, 0, o, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![-1.0, 2.0, -0.5, 0.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_picks_window_maximum() {
        // [1 2; 3 4] -> 2x2 window -> 4
        let t = Tensor::from_fn([1, 2, 2, 1], |i| i as f32 + 1.0);
        let p = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape().dims(), [1, 1, 1, 1]);
        assert_eq!(p.as_slice(), &[4.0]);
    }

    #[test]
    fn max_pool_stride_and_channels() {
        let t = Tensor::from_fn([1, 4, 4, 2], |i| i as f32);
        let p = max_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.shape().dims(), [1, 2, 2, 2]);
        // Top-left window covers pixels (0,0),(0,1),(1,0),(1,1); channel 0
        // values 0,2,8,10 -> 10.
        assert_eq!(p.at(0, 0, 0, 0), 10.0);
        assert_eq!(p.at(0, 0, 0, 1), 11.0);
    }

    #[test]
    fn avg_pool_averages() {
        let t = Tensor::from_fn([1, 2, 2, 1], |i| i as f32 + 1.0);
        let p = avg_pool2d(&t, 2, 2).unwrap();
        assert_eq!(p.as_slice(), &[2.5]);
    }

    #[test]
    fn pooling_validates_window_and_stride() {
        let t = Tensor::zeros([1, 2, 2, 1]);
        assert!(matches!(
            max_pool2d(&t, 3, 1),
            Err(TensorError::WindowTooLarge { .. })
        ));
        assert!(matches!(max_pool2d(&t, 2, 0), Err(TensorError::ZeroStride)));
        assert!(matches!(
            max_pool2d(&t, 0, 1),
            Err(TensorError::WindowTooLarge { .. })
        ));
    }

    #[test]
    fn global_avg_pool_reduces_spatial() {
        let t = Tensor::from_fn([1, 2, 2, 2], |i| i as f32);
        let g = global_avg_pool(&t);
        assert_eq!(g.shape().dims(), [1, 1, 1, 2]);
        // channel 0: values 0,2,4,6 -> 3; channel 1: 1,3,5,7 -> 4.
        assert_eq!(g.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn fully_connected_computes_dot_products() {
        let x = Tensor::from_vec([1, 1, 1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let w = Tensor::from_vec([2, 1, 1, 3], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let y = fully_connected(&x, &w).unwrap();
        assert_eq!(y.as_slice(), &[1.0, 6.0]);
    }

    #[test]
    fn fully_connected_validates_shapes() {
        let x = Tensor::zeros([1, 2, 2, 3]); // flat = 12
        let w = Tensor::zeros([2, 1, 1, 10]);
        assert!(matches!(
            fully_connected(&x, &w),
            Err(TensorError::ChannelMismatch {
                input: 12,
                weights: 10
            })
        ));
        let w = Tensor::zeros([2, 3, 3, 12]);
        assert!(matches!(
            fully_connected(&x, &w),
            Err(TensorError::UnsupportedKernel { .. })
        ));
    }

    #[test]
    fn fully_connected_batches_independently() {
        let x = Tensor::from_vec([2, 1, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 1.0]).unwrap();
        let y = fully_connected(&x, &w).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }
}

use crate::{Shape4, TensorError};

/// A dense, row-major, four-dimensional `f32` tensor.
///
/// Activations use NHWC layout, weights use OHWI; see [`Shape4`] for the
/// axis conventions. The type is intentionally small: it is the substrate
/// that the convolution algorithms and the channel-pruning transforms are
/// verified against, not a general-purpose array library.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if `data.len()` differs
    /// from the shape's element count, and [`TensorError::EmptyDimension`]
    /// if any axis is zero.
    pub fn from_vec(shape: impl Into<Shape4>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.has_zero_dim() {
            return Err(TensorError::EmptyDimension { shape });
        }
        if data.len() != shape.len() {
            return Err(TensorError::DataLengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any axis extent is zero.
    pub fn zeros(shape: impl Into<Shape4>) -> Self {
        let shape = shape.into();
        assert!(
            !shape.has_zero_dim(),
            "Tensor::zeros requires non-empty shape, got {shape}"
        );
        Tensor {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Creates a tensor whose element at linear index `i` is `f(i)`.
    ///
    /// Handy for deterministic test fixtures:
    ///
    /// ```
    /// use pruneperf_tensor::Tensor;
    /// let t = Tensor::from_fn([1, 2, 2, 1], |i| i as f32);
    /// assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if any axis extent is zero.
    pub fn from_fn(shape: impl Into<Shape4>, f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        // lint: allow(panic) — documented # Panics contract: zero extents are caller bugs
        assert!(
            !shape.has_zero_dim(),
            "Tensor::from_fn requires non-empty shape, got {shape}"
        );
        let data = (0..shape.len()).map(f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Borrow the backing storage as a flat slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing storage as a flat slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(i0, i1, i2, i3)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an index is out of bounds.
    #[inline]
    pub fn at(&self, i0: usize, i1: usize, i2: usize, i3: usize) -> f32 {
        self.data[self.shape.offset(i0, i1, i2, i3)]
    }

    /// Sets the element at `(i0, i1, i2, i3)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an index is out of bounds.
    #[inline]
    pub fn set(&mut self, i0: usize, i1: usize, i2: usize, i3: usize, value: f32) {
        let off = self.shape.offset(i0, i1, i2, i3);
        self.data[off] = value;
    }

    /// Maximum absolute element-wise difference to another tensor.
    ///
    /// Returns `None` when the shapes differ (the comparison is undefined).
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max),
        )
    }

    /// `true` when every element differs from `other` by at most `tol`.
    ///
    /// Shapes must match for the tensors to be considered close.
    pub fn all_close(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other).is_some_and(|d| d <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec([1, 2, 2, 1], vec![1.0; 3]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::DataLengthMismatch { len: 3, .. }
        ));
        assert!(Tensor::from_vec([1, 2, 2, 1], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_vec_rejects_empty_dims() {
        let err = Tensor::from_vec([1, 0, 2, 1], vec![]).unwrap_err();
        assert!(matches!(err, TensorError::EmptyDimension { .. }));
    }

    #[test]
    #[should_panic(expected = "non-empty shape")]
    fn zeros_panics_on_zero_dim() {
        let _ = Tensor::zeros([1, 0, 1, 1]);
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        t.set(1, 2, 3, 4, 42.0);
        assert_eq!(t.at(1, 2, 3, 4), 42.0);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::from_fn([1, 2, 2, 1], |i| i as f32);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
        b.set(0, 1, 1, 0, 10.0);
        assert_eq!(a.max_abs_diff(&b), Some(7.0));
    }

    #[test]
    fn max_abs_diff_none_on_shape_mismatch() {
        let a = Tensor::zeros([1, 2, 2, 1]);
        let b = Tensor::zeros([1, 2, 2, 2]);
        assert_eq!(a.max_abs_diff(&b), None);
        assert!(!a.all_close(&b, 1.0));
    }

    #[test]
    fn all_close_respects_tolerance() {
        let a = Tensor::from_fn([1, 1, 1, 2], |_| 1.0);
        let b = Tensor::from_fn([1, 1, 1, 2], |_| 1.0005);
        assert!(a.all_close(&b, 1e-3));
        assert!(!a.all_close(&b, 1e-4));
    }

    #[test]
    fn into_vec_returns_storage() {
        let t = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        assert_eq!(t.into_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}

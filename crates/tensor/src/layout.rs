//! Data-layout conversions: NHWC ↔ NCHW.
//!
//! The paper's OpenCL stacks work in NHWC (`im2col3x3_nhwc`,
//! `direct_convolution3x3_nhwc`) while cuDNN's classic kernels default to
//! NCHW. Layout determines which memory accesses coalesce — one of the
//! reasons identical shapes behave differently across libraries — so the
//! reference substrate supports both and verifies that convolution results
//! are layout-invariant.

use crate::Tensor;

/// Converts an NHWC activation tensor to NCHW element order.
///
/// The result is still a [`Tensor`] (a plain 4-D array); its axes are now
/// `(batch, channels, height, width)`.
pub fn nhwc_to_nchw(t: &Tensor) -> Tensor {
    let [n, h, w, c] = t.shape().dims();
    let mut out = Tensor::zeros([n, c, h, w]);
    for b in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    out.set(b, ch, y, x, t.at(b, y, x, ch));
                }
            }
        }
    }
    out
}

/// Converts an NCHW activation tensor back to NHWC element order.
pub fn nchw_to_nhwc(t: &Tensor) -> Tensor {
    let [n, c, h, w] = t.shape().dims();
    let mut out = Tensor::zeros([n, h, w, c]);
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    out.set(b, y, x, ch, t.at(b, ch, y, x));
                }
            }
        }
    }
    out
}

/// Stride in elements between horizontally adjacent pixels of the same
/// channel — the quantity that decides whether lanes iterating over `x`
/// coalesce. NHWC: `c` (adjacent pixels are a whole channel vector apart);
/// NCHW: 1 (perfectly contiguous rows).
pub fn x_stride_elems(c: usize, layout_is_nhwc: bool) -> usize {
    if layout_is_nhwc {
        c
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{direct, Conv2dParams};

    fn fixture(shape: [usize; 4], seed: u32) -> Tensor {
        Tensor::from_fn(shape, |i| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(seed.wrapping_mul(2246822519));
            ((x >> 8) as f32 / (1 << 24) as f32) * 2.0 - 1.0
        })
    }

    #[test]
    fn round_trip_is_identity() {
        let t = fixture([2, 5, 7, 3], 1);
        let back = nchw_to_nhwc(&nhwc_to_nchw(&t));
        assert_eq!(t, back);
    }

    #[test]
    fn transpose_moves_elements_correctly() {
        let t = fixture([1, 2, 3, 4], 2);
        let nchw = nhwc_to_nchw(&t);
        assert_eq!(nchw.shape().dims(), [1, 4, 2, 3]);
        for y in 0..2 {
            for x in 0..3 {
                for c in 0..4 {
                    assert_eq!(nchw.at(0, c, y, x), t.at(0, y, x, c));
                }
            }
        }
    }

    /// Convolution results are layout-invariant: converting the input to
    /// NCHW and back before convolving changes nothing.
    #[test]
    fn convolution_is_layout_invariant() {
        let input = fixture([1, 8, 8, 3], 3);
        let weights = fixture([4, 3, 3, 3], 4);
        let p = Conv2dParams::new(1, 1);
        let direct_out = direct::conv2d(&input, &weights, p).unwrap();
        let round_tripped = nchw_to_nhwc(&nhwc_to_nchw(&input));
        let out2 = direct::conv2d(&round_tripped, &weights, p).unwrap();
        assert!(direct_out.all_close(&out2, 0.0));
    }

    #[test]
    fn x_strides_explain_coalescing() {
        // NHWC: lanes walking x hit addresses c elements apart — the reason
        // ACL's direct kernels coalesce poorly with few live channels.
        assert_eq!(x_stride_elems(128, true), 128);
        assert_eq!(x_stride_elems(128, false), 1);
    }

    #[test]
    fn single_element_tensor_converts() {
        // Conversions are total for non-empty tensors; a 1-element tensor
        // hits every boundary at once.
        let t = Tensor::from_vec([1, 1, 1, 1], vec![42.0]).expect("valid");
        assert_eq!(nhwc_to_nchw(&t).as_slice(), &[42.0]);
        assert_eq!(nchw_to_nhwc(&t).as_slice(), &[42.0]);
    }
}

use std::fmt;

/// A four-dimensional tensor shape.
///
/// The interpretation of the four axes depends on the tensor's role:
///
/// * activations are `NHWC` — `(batch, height, width, channels)`,
/// * convolution weights are `OHWI` — `(out_channels, kernel_h, kernel_w,
///   in_channels)`, which pairs naturally with NHWC activations.
///
/// `Shape4` is a plain value type; emptiness and overflow checks live in
/// [`crate::Tensor`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    dims: [usize; 4],
}

impl Shape4 {
    /// Creates a shape from the four axis extents.
    ///
    /// ```
    /// use pruneperf_tensor::Shape4;
    /// let s = Shape4::new(1, 28, 28, 128);
    /// assert_eq!(s.len(), 28 * 28 * 128);
    /// ```
    pub fn new(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Shape4 {
            dims: [d0, d1, d2, d3],
        }
    }

    /// The four axis extents in order.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Total number of elements (product of the extents).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` if any axis has extent zero.
    pub fn has_zero_dim(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Row-major linear offset of the element at `(i0, i1, i2, i3)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any index is out of bounds.
    #[inline]
    pub fn offset(&self, i0: usize, i1: usize, i2: usize, i3: usize) -> usize {
        debug_assert!(
            i0 < self.dims[0],
            "axis 0 index {i0} out of {}",
            self.dims[0]
        );
        debug_assert!(
            i1 < self.dims[1],
            "axis 1 index {i1} out of {}",
            self.dims[1]
        );
        debug_assert!(
            i2 < self.dims[2],
            "axis 2 index {i2} out of {}",
            self.dims[2]
        );
        debug_assert!(
            i3 < self.dims[3],
            "axis 3 index {i3} out of {}",
            self.dims[3]
        );
        ((i0 * self.dims[1] + i1) * self.dims[2] + i2) * self.dims[3] + i3
    }
}

impl From<[usize; 4]> for Shape4 {
    fn from(dims: [usize; 4]) -> Self {
        Shape4 { dims }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}, {}, {}]",
            self.dims[0], self.dims[1], self.dims[2], self.dims[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product() {
        assert_eq!(Shape4::new(2, 3, 4, 5).len(), 120);
        assert_eq!(Shape4::new(1, 1, 1, 1).len(), 1);
    }

    #[test]
    fn zero_dim_detection() {
        assert!(Shape4::new(1, 0, 2, 3).has_zero_dim());
        assert!(!Shape4::new(1, 1, 2, 3).has_zero_dim());
        assert_eq!(Shape4::new(4, 0, 2, 3).len(), 0);
    }

    #[test]
    fn offsets_are_row_major_and_dense() {
        let s = Shape4::new(2, 3, 4, 5);
        let mut expected = 0usize;
        for i0 in 0..2 {
            for i1 in 0..3 {
                for i2 in 0..4 {
                    for i3 in 0..5 {
                        assert_eq!(s.offset(i0, i1, i2, i3), expected);
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(expected, s.len());
    }

    #[test]
    fn display_renders_all_dims() {
        assert_eq!(Shape4::new(1, 28, 28, 128).to_string(), "[1, 28, 28, 128]");
    }

    #[test]
    fn from_array_round_trips() {
        let s: Shape4 = [4, 3, 2, 1].into();
        assert_eq!(s.dims(), [4, 3, 2, 1]);
    }
}

//! Reference tensor and convolution kernels for `pruneperf`.
//!
//! This crate is the *numerical ground truth* of the reproduction of
//! Radu et al., “Performance Aware Convolutional Neural Network Channel
//! Pruning for Embedded GPUs” (IISWC 2019). It provides:
//!
//! * a minimal NHWC [`Tensor`] type with shape-checked construction,
//! * the two dominant convolution routines the paper discusses in §II-A —
//!   **direct convolution** ([`conv::direct`]) and **im2col + GEMM**
//!   ([`conv::im2col_gemm`]) — plus a Winograd `F(2×2, 3×3)` variant
//!   ([`conv::winograd`]) used by the cuDNN backend model,
//! * exact floating-point-operation accounting ([`flops`]) that the GPU
//!   simulator's instruction-mix models are validated against,
//! * weight-level channel pruning ([`prune`]) implementing the §II-B
//!   sequential-removal/re-indexing semantics on real tensors.
//!
//! All algorithms are deliberately straightforward, exhaustively tested
//! against each other, and deterministic.
//!
//! # Example
//!
//! ```
//! use pruneperf_tensor::{Tensor, conv::{Conv2dParams, direct, im2col_gemm}};
//!
//! # fn main() -> Result<(), pruneperf_tensor::TensorError> {
//! let input = Tensor::from_fn([1, 8, 8, 3], |i| i as f32 * 0.01);
//! let weights = Tensor::from_fn([4, 3, 3, 3], |i| (i % 7) as f32 * 0.1);
//! let params = Conv2dParams::new(1, 1); // stride 1, pad 1
//! let a = direct::conv2d(&input, &weights, params)?;
//! let b = im2col_gemm::conv2d(&input, &weights, params)?;
//! assert_eq!(a.shape(), b.shape());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod conv;
pub mod flops;
pub mod layout;
pub mod ops;
pub mod prune;

pub use error::TensorError;
pub use shape::Shape4;
pub use tensor::Tensor;

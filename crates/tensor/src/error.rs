use std::error::Error;
use std::fmt;

use crate::Shape4;

/// Errors produced by tensor construction and convolution routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided data length does not match the product of the shape dims.
    DataLengthMismatch {
        /// Shape the caller asked for.
        shape: Shape4,
        /// Number of elements actually supplied.
        len: usize,
    },
    /// A shape dimension was zero where a non-empty tensor is required.
    EmptyDimension {
        /// Shape containing the zero dimension.
        shape: Shape4,
    },
    /// Input channel count of the image does not match the weight tensor.
    ChannelMismatch {
        /// Channels in the input image (NHWC `C`).
        input: usize,
        /// Input channels expected by the weights (OHWI `I`).
        weights: usize,
    },
    /// Convolution window does not fit the (padded) input even once.
    WindowTooLarge {
        /// Padded input extent (height or width).
        padded: usize,
        /// Kernel extent along the same axis.
        kernel: usize,
    },
    /// Stride of zero was requested.
    ZeroStride,
    /// The algorithm only supports a specific kernel configuration.
    UnsupportedKernel {
        /// Human-readable description of the restriction.
        reason: &'static str,
    },
    /// Channel index out of range for a pruning operation.
    ChannelOutOfRange {
        /// Index the caller asked to prune.
        index: usize,
        /// Number of channels in the tensor.
        channels: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataLengthMismatch { shape, len } => write!(
                f,
                "data length {len} does not match shape {shape} ({} elements)",
                shape.len()
            ),
            TensorError::EmptyDimension { shape } => {
                write!(f, "shape {shape} contains a zero dimension")
            }
            TensorError::ChannelMismatch { input, weights } => {
                write!(f, "input has {input} channels but weights expect {weights}")
            }
            TensorError::WindowTooLarge { padded, kernel } => write!(
                f,
                "kernel extent {kernel} exceeds padded input extent {padded}"
            ),
            TensorError::ZeroStride => write!(f, "stride must be at least 1"),
            TensorError::UnsupportedKernel { reason } => {
                write!(f, "unsupported kernel configuration: {reason}")
            }
            TensorError::ChannelOutOfRange { index, channels } => write!(
                f,
                "channel index {index} out of range for tensor with {channels} channels"
            ),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            TensorError::DataLengthMismatch {
                shape: Shape4::new(1, 2, 2, 3),
                len: 5,
            },
            TensorError::EmptyDimension {
                shape: Shape4::new(1, 0, 2, 3),
            },
            TensorError::ChannelMismatch {
                input: 3,
                weights: 4,
            },
            TensorError::WindowTooLarge {
                padded: 2,
                kernel: 3,
            },
            TensorError::ZeroStride,
            TensorError::UnsupportedKernel { reason: "only 3x3" },
            TensorError::ChannelOutOfRange {
                index: 9,
                channels: 4,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

//! Exact work accounting for the convolution algorithms.
//!
//! The GPU simulator's instruction-mix models are expressed in terms of
//! these counts; keeping them next to the reference kernels lets tests pin
//! the analytical numbers to the actual arithmetic performed.

use crate::conv::Conv2dParams;
use crate::TensorError;

/// Dimensions of one convolutional workload, the unit of accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDims {
    /// Batch size.
    pub batch: usize,
    /// Input height.
    pub h_in: usize,
    /// Input width.
    pub w_in: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels (filters).
    pub c_out: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Convolution groups (1 = dense, `c_in` = depthwise).
    pub groups: usize,
    /// Stride/padding.
    pub params: Conv2dParams,
}

impl ConvDims {
    /// Output spatial extents `(out_h, out_w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit.
    pub fn out_hw(&self) -> Result<(usize, usize), TensorError> {
        Ok((
            self.params.out_extent(self.h_in, self.kh)?,
            self.params.out_extent(self.w_in, self.kw)?,
        ))
    }

    /// Input channels each output channel reads (`c_in / groups`).
    pub fn c_in_per_group(&self) -> usize {
        self.c_in / self.groups.max(1)
    }

    /// Multiply–accumulate count of the mathematically exact convolution
    /// (identical for direct and im2col+GEMM).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit.
    pub fn macs(&self) -> Result<u64, TensorError> {
        let (oh, ow) = self.out_hw()?;
        Ok(self.batch as u64
            * oh as u64
            * ow as u64
            * self.c_out as u64
            * self.kh as u64
            * self.kw as u64
            * self.c_in_per_group() as u64)
    }

    /// Floating point operations (2 per MAC).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit.
    pub fn flops(&self) -> Result<u64, TensorError> {
        Ok(self.macs()? * 2)
    }

    /// GEMM problem `(m, k, n)` after im2col: `m = out_h*out_w`,
    /// `k = kh*kw*c_in/groups`, `n = c_out` (per batch entry and group).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit.
    pub fn gemm_mkn(&self) -> Result<(usize, usize, usize), TensorError> {
        let (oh, ow) = self.out_hw()?;
        Ok((
            oh * ow,
            self.kh * self.kw * self.c_in_per_group(),
            self.c_out,
        ))
    }

    /// Number of f32 elements of the im2col patch matrix (per batch entry).
    ///
    /// The paper notes this is “almost one order of magnitude more memory
    /// for a 3×3 filter” than the input itself.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WindowTooLarge`] if the kernel does not fit.
    pub fn im2col_elems(&self) -> Result<u64, TensorError> {
        let (m, k, _) = self.gemm_mkn()?;
        Ok(m as u64 * k as u64)
    }

    /// Input elements per batch entry, for memory-blowup comparisons.
    pub fn input_elems(&self) -> u64 {
        self.h_in as u64 * self.w_in as u64 * self.c_in as u64
    }

    /// Multiplies performed by Winograd `F(2×2,3×3)` (element-wise stage
    /// only, the dominant term): `16 · tiles · c_in · c_out` per batch entry.
    ///
    /// Returns `None` for configurations Winograd does not support.
    pub fn winograd_mults(&self) -> Option<u64> {
        if (self.kh, self.kw) != (3, 3) || self.params.stride() != 1 {
            return None;
        }
        let (oh, ow) = self.out_hw().ok()?;
        let tiles = oh.div_ceil(2) as u64 * ow.div_ceil(2) as u64;
        Some(self.batch as u64 * tiles * 16 * self.c_in as u64 * self.c_out as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims_3x3_28() -> ConvDims {
        ConvDims {
            batch: 1,
            h_in: 28,
            w_in: 28,
            c_in: 128,
            c_out: 96,
            kh: 3,
            kw: 3,
            groups: 1,
            params: Conv2dParams::new(1, 1),
        }
    }

    #[test]
    fn depthwise_macs_divide_by_groups() {
        let mut d = dims_3x3_28();
        d.c_out = 128;
        d.groups = 128;
        // Depthwise: each output channel reads a single input channel.
        assert_eq!(d.macs().unwrap(), 28 * 28 * 128 * 9);
        assert_eq!(d.c_in_per_group(), 1);
        assert_eq!(d.gemm_mkn().unwrap().1, 9);
    }

    #[test]
    fn macs_of_resnet_l16_like_layer() {
        // 28*28*96*3*3*128 = 86_704_128
        assert_eq!(dims_3x3_28().macs().unwrap(), 86_704_128);
    }

    #[test]
    fn gemm_dims_match_im2col() {
        let (m, k, n) = dims_3x3_28().gemm_mkn().unwrap();
        assert_eq!((m, k, n), (784, 1152, 96));
        // GEMM MACs m*k*n equal conv MACs.
        assert_eq!((m * k * n) as u64, dims_3x3_28().macs().unwrap());
    }

    #[test]
    fn im2col_memory_blowup_near_kernel_area() {
        let d = dims_3x3_28();
        let blowup = d.im2col_elems().unwrap() as f64 / d.input_elems() as f64;
        // 3x3 stride-1 same-padding -> exactly 9x blowup.
        assert!((blowup - 9.0).abs() < 1e-9, "blowup {blowup}");
    }

    #[test]
    fn winograd_saves_multiplies() {
        let d = dims_3x3_28();
        let wino = d.winograd_mults().unwrap();
        let direct = d.macs().unwrap();
        // 16/36 of the direct multiplies for even tile coverage.
        assert!(
            wino < direct / 2 + direct / 10,
            "wino {wino} direct {direct}"
        );
        assert_eq!(wino, 14 * 14 * 16 * 128 * 96);
    }

    #[test]
    fn winograd_unsupported_configurations() {
        let mut d = dims_3x3_28();
        d.params = Conv2dParams::new(2, 1);
        assert_eq!(d.winograd_mults(), None);
        let mut d = dims_3x3_28();
        d.kh = 1;
        d.kw = 1;
        assert_eq!(d.winograd_mults(), None);
    }

    #[test]
    fn macs_scale_linearly_with_channels() {
        let base = dims_3x3_28();
        let mut pruned = base;
        pruned.c_out = 48;
        assert_eq!(pruned.macs().unwrap() * 2, base.macs().unwrap());
    }

    #[test]
    fn oversized_kernel_is_reported() {
        let mut d = dims_3x3_28();
        d.h_in = 1;
        d.params = Conv2dParams::new(1, 0);
        assert!(d.macs().is_err());
    }
}

//! Property-based cross-validation of the convolution algorithms and the
//! channel-pruning transforms.

use proptest::prelude::*;
use pruneperf_tensor::conv::{direct, im2col_gemm, winograd, Conv2dParams};
use pruneperf_tensor::prune;
use pruneperf_tensor::Tensor;

/// Deterministic tensor with values in [-1, 1).
fn tensor_strategy(shape: [usize; 4]) -> impl Strategy<Value = Tensor> {
    let len = shape.iter().product::<usize>();
    proptest::collection::vec(-1.0f32..1.0f32, len)
        .prop_map(move |v| Tensor::from_vec(shape, v).expect("length matches"))
}

/// A small convolution problem: shapes kept tiny so direct conv stays fast.
#[derive(Debug, Clone)]
struct Problem {
    input: Tensor,
    weights: Tensor,
    params: Conv2dParams,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (
        1usize..=2,                              // batch
        3usize..=9,                              // h
        3usize..=9,                              // w
        1usize..=4,                              // c_in
        1usize..=6,                              // c_out
        prop_oneof![Just(1usize), Just(3usize)], // square kernel
        1usize..=2,                              // stride
        0usize..=1,                              // pad
    )
        .prop_filter(
            "kernel must fit padded input",
            |(_, h, w, _, _, k, _, pad)| *k <= h + 2 * pad && *k <= w + 2 * pad,
        )
        .prop_flat_map(|(n, h, w, ci, co, k, stride, pad)| {
            (
                tensor_strategy([n, h, w, ci]),
                tensor_strategy([co, k, k, ci]),
                Just(Conv2dParams::new(stride, pad)),
            )
                .prop_map(|(input, weights, params)| Problem {
                    input,
                    weights,
                    params,
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// im2col+GEMM computes exactly the same convolution as the direct loop.
    #[test]
    fn im2col_gemm_matches_direct(p in problem_strategy()) {
        let a = direct::conv2d(&p.input, &p.weights, p.params).unwrap();
        let b = im2col_gemm::conv2d(&p.input, &p.weights, p.params).unwrap();
        prop_assert!(a.all_close(&b, 1e-4), "max diff {:?}", a.max_abs_diff(&b));
    }

    /// Winograd F(2x2,3x3) matches direct for every supported configuration.
    #[test]
    fn winograd_matches_direct(p in problem_strategy()) {
        let [_, kh, _, _] = p.weights.shape().dims();
        prop_assume!(kh == 3 && p.params.stride() == 1);
        let a = direct::conv2d(&p.input, &p.weights, p.params).unwrap();
        let b = winograd::conv2d(&p.input, &p.weights, p.params).unwrap();
        prop_assert!(a.all_close(&b, 1e-3), "max diff {:?}", a.max_abs_diff(&b));
    }

    /// §II-B: pruning filter p of the weights == dropping channel p of the
    /// full convolution's output — for every victim channel.
    #[test]
    fn pruning_commutes_with_convolution(p in problem_strategy()) {
        let [c_out, ..] = p.weights.shape().dims();
        prop_assume!(c_out >= 2);
        let full = direct::conv2d(&p.input, &p.weights, p.params).unwrap();
        for victim in 0..c_out {
            let pruned_w = prune::prune_output_channel(&p.weights, victim).unwrap();
            let got = direct::conv2d(&p.input, &pruned_w, p.params).unwrap();
            let expect = prune::drop_activation_channel(&full, victim).unwrap();
            prop_assert!(got.all_close(&expect, 0.0), "victim {victim}");
        }
    }

    /// Sequential pruning to a target count equals repeated last-channel removal.
    #[test]
    fn prune_to_count_is_repeated_removal(p in problem_strategy(), keep_frac in 0.2f64..1.0) {
        let [c_out, ..] = p.weights.shape().dims();
        prop_assume!(c_out >= 2);
        let keep = ((c_out as f64 * keep_frac).ceil() as usize).clamp(1, c_out);
        let direct_prune = prune::prune_output_channels_to(&p.weights, keep).unwrap();
        let mut iterative = p.weights.clone();
        while iterative.shape().dims()[0] > keep {
            let last = iterative.shape().dims()[0] - 1;
            iterative = prune::prune_output_channel(&iterative, last).unwrap();
        }
        prop_assert_eq!(direct_prune, iterative);
    }

    /// Output linearity: conv(a*x) == a*conv(x) for scalar a (exercises all
    /// index arithmetic without a second algorithm).
    #[test]
    fn convolution_is_homogeneous(p in problem_strategy(), scale in -2.0f32..2.0) {
        let base = direct::conv2d(&p.input, &p.weights, p.params).unwrap();
        let scaled_in = Tensor::from_vec(
            p.input.shape(),
            p.input.as_slice().iter().map(|v| v * scale).collect(),
        ).unwrap();
        let scaled_out = direct::conv2d(&scaled_in, &p.weights, p.params).unwrap();
        let expect = Tensor::from_vec(
            base.shape(),
            base.as_slice().iter().map(|v| v * scale).collect(),
        ).unwrap();
        prop_assert!(scaled_out.all_close(&expect, 1e-3));
    }
}

//! Criterion benches for the heatmap experiments (Figs 1, 6, 8–11, 13,
//! 16, 17, 19): time to regenerate each speedup/slowdown table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pruneperf_backends::{AclDirect, AclGemm, ConvBackend, Cudnn, Tvm};
use pruneperf_core::analysis;
use pruneperf_gpusim::Device;
use pruneperf_models::{alexnet, resnet50, vgg16, Network};
use pruneperf_profiler::LayerProfiler;

fn heatmap_bench(
    c: &mut Criterion,
    name: &str,
    device: &Device,
    backend: &dyn ConvBackend,
    network: &Network,
    slowdown: bool,
) {
    let profiler = LayerProfiler::new(device);
    c.bench_function(name, |b| {
        b.iter(|| {
            let h = if slowdown {
                analysis::slowdown_table(&profiler, backend, network, &analysis::FIG1_DISTANCES)
            } else {
                analysis::speedup_table(&profiler, backend, network, &analysis::PAPER_DISTANCES)
            };
            black_box(h.max_ratio())
        })
    });
}

fn benches(c: &mut Criterion) {
    let hikey = Device::mali_g72_hikey970();
    let tx2 = Device::jetson_tx2();
    let resnet = resnet50();
    let vgg = vgg16();
    let alex = alexnet();
    heatmap_bench(
        c,
        "fig1_slowdown_acl_gemm_resnet",
        &hikey,
        &AclGemm::new(),
        &resnet,
        true,
    );
    heatmap_bench(
        c,
        "fig6_speedup_cudnn_resnet",
        &tx2,
        &Cudnn::new(),
        &resnet,
        false,
    );
    heatmap_bench(
        c,
        "fig8_speedup_cudnn_vgg",
        &tx2,
        &Cudnn::new(),
        &vgg,
        false,
    );
    heatmap_bench(
        c,
        "fig9_speedup_cudnn_alexnet",
        &tx2,
        &Cudnn::new(),
        &alex,
        false,
    );
    heatmap_bench(
        c,
        "fig10_speedup_direct_resnet",
        &hikey,
        &AclDirect::new(),
        &resnet,
        false,
    );
    heatmap_bench(
        c,
        "fig11_speedup_direct_vgg",
        &hikey,
        &AclDirect::new(),
        &vgg,
        false,
    );
    heatmap_bench(
        c,
        "fig13_speedup_gemm_resnet",
        &hikey,
        &AclGemm::new(),
        &resnet,
        false,
    );
    heatmap_bench(
        c,
        "fig16_speedup_gemm_vgg",
        &hikey,
        &AclGemm::new(),
        &vgg,
        false,
    );
    heatmap_bench(
        c,
        "fig17_speedup_gemm_alexnet",
        &hikey,
        &AclGemm::new(),
        &alex,
        false,
    );
    heatmap_bench(
        c,
        "fig19_speedup_tvm_resnet",
        &hikey,
        &Tvm::new(),
        &resnet,
        false,
    );
}

criterion_group! {
    name = heatmaps;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(heatmaps);

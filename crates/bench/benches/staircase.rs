//! Criterion benches for the staircase experiments (Figs 2–5, 7, 12, 14,
//! 15, 20): time to regenerate each latency-vs-channels sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pruneperf_backends::{AclDirect, AclGemm, ConvBackend, Cudnn, Tvm};
use pruneperf_gpusim::Device;
use pruneperf_models::resnet50;
use pruneperf_profiler::LayerProfiler;

fn sweep_bench(
    c: &mut Criterion,
    name: &str,
    device: &Device,
    backend: &dyn ConvBackend,
    label: &str,
) {
    let layer = resnet50().layer(label).expect("catalog layer").clone();
    let profiler = LayerProfiler::new(device);
    c.bench_function(name, |b| {
        b.iter(|| {
            let curve = profiler.latency_curve(backend, &layer, 1..=layer.c_out());
            black_box(curve.points().len())
        })
    });
}

fn benches(c: &mut Criterion) {
    let hikey = Device::mali_g72_hikey970();
    let tx2 = Device::jetson_tx2();
    let nano = Device::jetson_nano();
    sweep_bench(
        c,
        "fig2_sweep_cudnn_tx2_L26",
        &tx2,
        &Cudnn::new(),
        "ResNet.L26",
    );
    sweep_bench(
        c,
        "fig4_sweep_cudnn_tx2_L16",
        &tx2,
        &Cudnn::new(),
        "ResNet.L16",
    );
    sweep_bench(
        c,
        "fig5_sweep_cudnn_tx2_L14",
        &tx2,
        &Cudnn::new(),
        "ResNet.L14",
    );
    sweep_bench(
        c,
        "fig7_sweep_cudnn_nano_L14",
        &nano,
        &Cudnn::new(),
        "ResNet.L14",
    );
    sweep_bench(
        c,
        "fig12_sweep_acl_direct_L14",
        &hikey,
        &AclDirect::new(),
        "ResNet.L14",
    );
    sweep_bench(
        c,
        "fig14_sweep_acl_gemm_L16",
        &hikey,
        &AclGemm::new(),
        "ResNet.L16",
    );
    sweep_bench(
        c,
        "fig15_sweep_acl_gemm_L45",
        &hikey,
        &AclGemm::new(),
        "ResNet.L45",
    );
    sweep_bench(c, "fig20_sweep_tvm_L14", &hikey, &Tvm::new(), "ResNet.L14");
}

criterion_group! {
    name = staircase;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(staircase);

//! Ablation benches for the design choices called out in `DESIGN.md` §6.
//!
//! Each group benches the same workload under two configurations; the
//! Criterion report's *ratio between the measured model outputs* is the
//! ablation result (printed to stderr once per group for convenience).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pruneperf_backends::{tuning::TuningLog, AclDirect, AclGemm, ConvBackend, Tvm};
use pruneperf_core::{accuracy::AccuracyModel, PerfAwarePruner, UninstructedPruner};
use pruneperf_gpusim::Device;
use pruneperf_models::resnet50;
use pruneperf_profiler::LayerProfiler;

/// Ablation 1 — job dispatch/sync overhead on vs off: shows the ACL GEMM
/// slow staircase is caused by the extra job, not the extra instructions.
fn ablation_job_overhead(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let stripped = device.without_job_overhead();
    let layer = resnet50()
        .layer("ResNet.L16")
        .unwrap()
        .with_c_out(92) // split configuration
        .unwrap();
    let backend = AclGemm::new();
    let with = backend.latency_ms(&layer, &device);
    let without = backend.latency_ms(&layer, &stripped);
    eprintln!(
        "[ablation_job_overhead] split layer 92ch: {with:.2} ms with job overhead, \
         {without:.2} ms without ({:.2}x)",
        with / without
    );
    let mut group = c.benchmark_group("ablation_job_overhead");
    group.bench_function("with_overhead", |b| {
        b.iter(|| black_box(backend.latency_ms(&layer, &device)))
    });
    group.bench_function("without_overhead", |b| {
        b.iter(|| black_box(backend.latency_ms(&layer, &stripped)))
    });
    group.finish();
}

/// Ablation 2 — workgroup auto-tuning vs the ACL heuristic (the paper's
/// reference [23] reports ~3.79x mean speedup from auto-tuned workgroups).
/// We emulate auto-tuning by always granting the best shape `(4,1,1)`.
fn ablation_workgroup_autotune(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let backend = AclDirect::new();
    // An odd channel count: the heuristic picks the slow (1,1,8) shape.
    let odd = resnet50()
        .layer("ResNet.L14")
        .unwrap()
        .with_c_out(401)
        .unwrap();
    // Auto-tuned equivalent: the same amount of work at a multiple-of-4
    // count that maps to (4,1,1).
    let tuned = resnet50()
        .layer("ResNet.L14")
        .unwrap()
        .with_c_out(404)
        .unwrap();
    let t_odd = backend.latency_ms(&odd, &device);
    let t_tuned = backend.latency_ms(&tuned, &device);
    eprintln!(
        "[ablation_workgroup_autotune] heuristic (1,1,8): {t_odd:.2} ms vs \
         auto-tuned (4,1,1): {t_tuned:.2} ms ({:.2}x, with 3 extra channels)",
        t_odd / t_tuned
    );
    let mut group = c.benchmark_group("ablation_workgroup_autotune");
    group.bench_function("heuristic_shape", |b| {
        b.iter(|| black_box(backend.latency_ms(&odd, &device)))
    });
    group.bench_function("autotuned_shape", |b| {
        b.iter(|| black_box(backend.latency_ms(&tuned, &device)))
    });
    group.finish();
}

/// Ablation 3 — occupancy-dependent latency hiding on vs off: collapses
/// the penalty of the tiny remainder GEMM kernel.
fn ablation_latency_hiding(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let perfect = device.with_perfect_latency_hiding();
    let layer = resnet50()
        .layer("ResNet.L16")
        .unwrap()
        .with_c_out(92)
        .unwrap();
    let backend = AclGemm::new();
    eprintln!(
        "[ablation_latency_hiding] split layer 92ch: {:.2} ms normal vs {:.2} ms \
         with perfect hiding",
        backend.latency_ms(&layer, &device),
        backend.latency_ms(&layer, &perfect),
    );
    let mut group = c.benchmark_group("ablation_latency_hiding");
    group.bench_function("occupancy_model", |b| {
        b.iter(|| black_box(backend.latency_ms(&layer, &device)))
    });
    group.bench_function("perfect_hiding", |b| {
        b.iter(|| black_box(backend.latency_ms(&layer, &perfect)))
    });
    group.finish();
}

/// Ablation 4 — performance-aware vs uninstructed pruning, end to end on
/// ResNet-50 (the paper's §V proposal vs the §I status quo).
fn ablation_pruning_policy(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::noiseless(&device);
    let net = resnet50();
    let acc = AccuracyModel::for_network(&net);
    let backend = AclGemm::new();
    let aware = PerfAwarePruner::new(&profiler, &acc);
    let naive = UninstructedPruner::new(&profiler, &acc);

    let plan_aware = aware.prune_to_latency(&backend, &net, 0.8);
    let plan_naive = naive.prune_to_fraction(&backend, &net, 0.9);
    eprintln!(
        "[ablation_pruning_policy] perf-aware: {:.1} ms @ acc {:.4} | uninstructed: \
         {:.1} ms @ acc {:.4}",
        plan_aware.latency_ms(),
        plan_aware.accuracy(),
        plan_naive.latency_ms(),
        plan_naive.accuracy(),
    );
    let mut group = c.benchmark_group("ablation_pruning_policy");
    group.sample_size(10);
    group.bench_function("perf_aware_prune", |b| {
        b.iter(|| black_box(aware.prune_to_latency(&backend, &net, 0.8).latency_ms()))
    });
    group.bench_function("uninstructed_prune", |b| {
        b.iter(|| black_box(naive.prune_to_fraction(&backend, &net, 0.9).latency_ms()))
    });
    group.finish();
}

/// Ablation 5 — TVM stock tuning log vs an autotuned log over a pruned
/// layer sweep (the fix for the Fig 20 spikes).
fn ablation_tvm_autotune(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let layer = resnet50()
        .layer("ResNet.L14")
        .unwrap()
        .with_c_out(451)
        .unwrap();
    let stock = Tvm::new();
    let mut log = TuningLog::tophub(device.name());
    log.autotune(&layer, 300);
    let tuned = Tvm::with_log(log);
    eprintln!(
        "[ablation_tvm_autotune] L14@451: stock {:.1} ms vs autotuned {:.1} ms",
        stock.latency_ms(&layer, &device),
        tuned.latency_ms(&layer, &device),
    );
    let mut group = c.benchmark_group("ablation_tvm_autotune");
    group.bench_function("stock_log", |b| {
        b.iter(|| black_box(stock.latency_ms(&layer, &device)))
    });
    group.bench_function("autotuned_log", |b| {
        b.iter(|| black_box(tuned.latency_ms(&layer, &device)))
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = ablation_job_overhead, ablation_workgroup_autotune,
        ablation_latency_hiding, ablation_pruning_policy, ablation_tvm_autotune
}
criterion_main!(ablations);

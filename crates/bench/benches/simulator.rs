//! Microbenches of the GPU simulator itself: per-chain execution cost for
//! the kernels the backends emit, plus the heterogeneous list scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pruneperf_backends::{AclGemm, ConvBackend, Cudnn};
use pruneperf_gpusim::{Device, Engine, JobChain, KernelDesc};
use pruneperf_models::resnet50;

fn chain_execution(c: &mut Criterion) {
    let hikey = Device::mali_g72_hikey970();
    let tx2 = Device::jetson_tx2();
    let l16 = resnet50().layer("ResNet.L16").unwrap().clone();
    let gemm_plan = AclGemm::new().plan(&l16, &hikey);
    let cudnn_plan = Cudnn::new().plan(&l16, &tx2);

    let mut group = c.benchmark_group("run_chain");
    group.bench_function("acl_gemm_l16_on_g72", |b| {
        let engine = Engine::new(&hikey);
        b.iter(|| black_box(engine.run_chain(gemm_plan.chain()).total_time_us()))
    });
    group.bench_function("cudnn_l16_on_tx2", |b| {
        let engine = Engine::new(&tx2);
        b.iter(|| black_box(engine.run_chain(cudnn_plan.chain()).total_time_us()))
    });
    group.finish();
}

fn kernel_scaling(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let engine = Engine::new(&device);
    let mut group = c.benchmark_group("kernel_time_vs_workgroups");
    for wgs in [16usize, 256, 4096, 65536] {
        let kernel = KernelDesc::builder("k")
            .global([wgs * 4, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(1000)
            .mem_per_item(100)
            .build();
        group.bench_with_input(BenchmarkId::from_parameter(wgs), &kernel, |b, k| {
            b.iter(|| black_box(engine.kernel_time_us(k)))
        });
    }
    group.finish();
}

fn list_scheduler(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let engine = Engine::new(&device);
    let costs: Vec<f64> = (0..10_000).map(|i| 100.0 + (i % 97) as f64).collect();
    c.bench_function("makespan_10k_heterogeneous_workgroups", |b| {
        b.iter(|| black_box(engine.makespan_cycles(&costs)))
    });
}

fn full_network_plan(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let backend = AclGemm::new();
    let net = resnet50();
    c.bench_function("plan_and_time_all_23_resnet_layers", |b| {
        b.iter(|| {
            let total: f64 = net
                .layers()
                .iter()
                .map(|l| backend.latency_ms(l, &device))
                .sum();
            black_box(total)
        })
    });
    // Also exercise an empty chain for baseline overhead.
    let engine = Engine::new(&device);
    c.bench_function("run_chain_empty", |b| {
        b.iter(|| black_box(engine.run_chain(&JobChain::new()).total_time_us()))
    });
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(20);
    targets = chain_execution, kernel_scaling, list_scheduler, full_network_plan
}
criterion_main!(simulator);

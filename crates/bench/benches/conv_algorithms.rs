//! Criterion benches of the reference convolution algorithms themselves —
//! the numerical substrate whose FLOP accounting the simulator's
//! instruction-mix models are validated against (§II-A's direct vs GEMM
//! trade, plus the Winograd and depthwise variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pruneperf_models::{weights, ConvLayerSpec};
use pruneperf_tensor::conv::{direct, grouped, im2col_gemm, winograd};

fn layer(c_in: usize, c_out: usize, hw: usize) -> ConvLayerSpec {
    ConvLayerSpec::new("Bench.L0", 3, 1, 1, c_in, c_out, hw, hw)
}

fn algorithms_3x3(c: &mut Criterion) {
    let spec = layer(16, 16, 28);
    let x = weights::synthetic_input(&spec);
    let w = weights::synthetic_weights(&spec);
    let p = spec.params();
    let mut group = c.benchmark_group("conv3x3_16ch_28px");
    group.bench_function("direct", |b| {
        b.iter(|| black_box(direct::conv2d(&x, &w, p).expect("valid")))
    });
    group.bench_function("im2col_gemm", |b| {
        b.iter(|| black_box(im2col_gemm::conv2d(&x, &w, p).expect("valid")))
    });
    group.bench_function("winograd_f2x3", |b| {
        b.iter(|| black_box(winograd::conv2d(&x, &w, p).expect("valid")))
    });
    group.finish();
}

fn depthwise_vs_dense(c: &mut Criterion) {
    let dense = layer(32, 32, 28);
    let dw = ConvLayerSpec::new_grouped("Bench.DW", 3, 1, 1, 32, 32, 28, 28, 32);
    let x = weights::synthetic_input(&dense);
    let wd = weights::synthetic_weights(&dense);
    let wg = weights::synthetic_weights(&dw);
    let p = dense.params();
    let mut group = c.benchmark_group("dense_vs_depthwise_32ch");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(direct::conv2d(&x, &wd, p).expect("valid")))
    });
    group.bench_function("depthwise", |b| {
        b.iter(|| black_box(grouped::conv2d_depthwise(&x, &wg, p).expect("valid")))
    });
    group.finish();
}

fn gemm_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col_gemm_vs_channels");
    for c_out in [8usize, 32, 64] {
        let spec = layer(16, c_out, 28);
        let x = weights::synthetic_input(&spec);
        let w = weights::synthetic_weights(&spec);
        let p = spec.params();
        group.bench_with_input(BenchmarkId::from_parameter(c_out), &c_out, |b, _| {
            b.iter(|| black_box(im2col_gemm::conv2d(&x, &w, p).expect("valid")))
        });
    }
    group.finish();
}

criterion_group! {
    name = conv_algorithms;
    config = Criterion::default().sample_size(10);
    targets = algorithms_3x3, depthwise_vs_dense, gemm_scaling
}
criterion_main!(conv_algorithms);

//! Benches of the §V performance-aware pruning loop components.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pruneperf_backends::AclGemm;
use pruneperf_core::{accuracy::AccuracyModel, PerfAwarePruner, Staircase};
use pruneperf_gpusim::Device;
use pruneperf_models::resnet50;
use pruneperf_profiler::LayerProfiler;

fn staircase_detection(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::new(&device);
    let layer = resnet50().layer("ResNet.L45").unwrap().clone();
    let curve = profiler.latency_curve(&AclGemm::new(), &layer, 1..=2048);
    c.bench_function("staircase_detect_2048_points", |b| {
        b.iter(|| black_box(Staircase::detect(&curve).optimal_points().len()))
    });
}

fn candidate_generation(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::noiseless(&device);
    let net = resnet50();
    let acc = AccuracyModel::for_network(&net);
    let pruner = PerfAwarePruner::new(&profiler, &acc);
    let backend = AclGemm::new();
    let layer = net.layer("ResNet.L16").unwrap().clone();
    c.bench_function("candidates_for_L16", |b| {
        b.iter(|| black_box(pruner.candidates_for(&backend, &layer).len()))
    });
}

fn full_pruning_loop(c: &mut Criterion) {
    let device = Device::mali_g72_hikey970();
    let profiler = LayerProfiler::noiseless(&device);
    let net = resnet50();
    let acc = AccuracyModel::for_network(&net);
    let pruner = PerfAwarePruner::new(&profiler, &acc);
    let backend = AclGemm::new();
    let mut group = c.benchmark_group("prune_resnet50_to_latency");
    group.sample_size(10);
    group.bench_function("budget_0.8", |b| {
        b.iter(|| black_box(pruner.prune_to_latency(&backend, &net, 0.8).latency_ms()))
    });
    group.bench_function("budget_0.5", |b| {
        b.iter(|| black_box(pruner.prune_to_latency(&backend, &net, 0.5).latency_ms()))
    });
    group.finish();
}

fn accuracy_model(c: &mut Criterion) {
    let net = resnet50();
    let acc = AccuracyModel::for_network(&net);
    let kept: std::collections::HashMap<String, usize> = net
        .layers()
        .iter()
        .map(|l| (l.label().to_string(), (l.c_out() * 3 / 4).max(1)))
        .collect();
    c.bench_function("accuracy_with_full_resnet_map", |b| {
        b.iter(|| black_box(acc.accuracy_with(&kept)))
    });
}

criterion_group! {
    name = pruning_loop;
    config = Criterion::default().sample_size(20);
    targets = staircase_detection, candidate_generation, full_pruning_loop, accuracy_model
}
criterion_main!(pruning_loop);

//! The parallel experiment runner must be indistinguishable — byte for
//! byte — from a sequential run, while the shared latency cache makes
//! repeated work cheap.

use pruneperf_bench::{run, run_many, ExperimentResult};
use pruneperf_profiler::LatencyCache;

fn ids(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

/// `--jobs 1` and `--jobs 8` must serialize to identical
/// `repro_results.json` content (acceptance criterion of the sweep
/// engine). A representative slice of figures, tables and extensions keeps
/// the test quick.
#[test]
fn jobs_1_and_jobs_8_produce_identical_json() {
    let subset = ids(&["fig2", "fig3", "fig14", "table1", "ext1"]);
    let sequential: Vec<ExperimentResult> = run_many(&subset, 1)
        .into_iter()
        .map(|r| r.expect("known id"))
        .collect();
    let parallel: Vec<ExperimentResult> = run_many(&subset, 8)
        .into_iter()
        .map(|r| r.expect("known id"))
        .collect();
    assert_eq!(sequential, parallel);
    let seq_json = serde_json::to_string_pretty(&sequential).expect("serializes");
    let par_json = serde_json::to_string_pretty(&parallel).expect("serializes");
    assert_eq!(seq_json, par_json);
}

/// Results land in the slot of their input id, so order follows the
/// request, not completion time; unknown ids surface as `None` in place.
#[test]
fn results_are_index_ordered_and_unknown_ids_are_none() {
    let mixed = ids(&["table1", "bogus", "fig2"]);
    let results = run_many(&mixed, 4);
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().expect("table1 exists").id, "table1");
    assert!(results[1].is_none());
    assert_eq!(results[2].as_ref().expect("fig2 exists").id, "fig2");
}

/// Running two figures back to back must hit the memo table: the second
/// pass over shared (backend, layer, device) configurations is served from
/// cache. Counters are monotone, so deltas are safe even though the cache
/// is process-global and other tests run concurrently.
#[test]
fn two_figure_run_records_cache_hits() {
    let before = LatencyCache::global().stats();
    run("fig14").expect("fig14 exists");
    run("fig14").expect("fig14 exists"); // identical queries: all hits
    run("fig15").expect("fig15 exists");
    let after = LatencyCache::global().stats();
    assert!(
        after.hits > before.hits,
        "expected cache hits, got {before:?} -> {after:?}"
    );
    assert!(after.misses > before.misses, "first run must miss");
}

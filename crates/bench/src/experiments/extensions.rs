//! Experiments beyond the paper's figures: the extensions `DESIGN.md`
//! motivates (auto-tuned workgroups, depthwise networks, energy-aware
//! pruning) plus the Odroid XU4 claims the paper states without a figure.

use pruneperf_backends::{
    AclAuto, AclDirect, AclDirectTuned, AclGemm, AclMethod, ConvBackend, Tvm,
};
use pruneperf_core::shootout::Shootout;
use pruneperf_core::{accuracy::AccuracyModel, PerfAwarePruner, Staircase, UninstructedPruner};
use pruneperf_gpusim::Device;
use pruneperf_models::{mobilenet_v1, resnet50};
use pruneperf_profiler::LayerProfiler;

use super::util::{curve_text, hikey, resnet_layer, sweep};
use super::{ExperimentResult, Finding};

/// ext1 — auto-tuned workgroup sizes vs the ACL heuristic (the paper's
/// deferred future work; its reference \[23\] reports 3.79× mean speedup).
pub fn ext1() -> ExperimentResult {
    let device = hikey();
    let heuristic = AclDirect::new();
    let tuned = AclDirectTuned::new();
    let mut body = String::from("layer           channels  heuristic_ms  tuned_ms  speedup\n");
    let mut worst_case_speedup = 1.0f64;
    let mut never_slower = true;
    for label in ["ResNet.L1", "ResNet.L5", "ResNet.L14", "ResNet.L16"] {
        let base = resnet_layer(label);
        for c in [base.c_out(), base.c_out() - 1, base.c_out() - 3] {
            let layer = base.with_c_out(c).expect("valid count");
            let t_h = heuristic.latency_ms(&layer, &device);
            let t_t = tuned.latency_ms(&layer, &device);
            let speedup = t_h / t_t;
            body.push_str(&format!(
                "{label:<15} {c:>8}  {t_h:>12.3}  {t_t:>8.3}  {speedup:>6.2}x\n"
            ));
            worst_case_speedup = worst_case_speedup.max(speedup);
            never_slower &= t_t <= t_h * 1.0001;
        }
    }
    let findings = vec![
        Finding::claim(
            "auto-tuning never loses to the heuristic",
            "search space is a superset of ACL's shapes",
            never_slower,
        ),
        Finding::ratio(
            "best auto-tuning speedup over the heuristic",
            3.79,
            worst_case_speedup,
            (1.3, 4.5),
        ),
    ];
    ExperimentResult {
        id: "ext1".into(),
        title: "Extension: auto-tuned direct-convolution workgroups (papers future work, ref 23)"
            .into(),
        body,
        findings,
        csv: None,
    }
}

/// ext2 — MobileNetV1's pointwise layers show the same ACL GEMM staircases
/// the paper reports for dense networks.
pub fn ext2() -> ExperimentResult {
    let device = hikey();
    let layer = mobilenet_v1()
        .layer("MobileNet.L12")
        .expect("catalog has L12")
        .clone(); // pointwise 256 -> 512
    let curve = sweep(&device, &AclGemm::new(), &layer);
    let staircase = Staircase::detect(&curve);
    let t511 = curve.ms_at(511).expect("profiled");
    let t512 = curve.ms_at(512).expect("profiled");
    let findings = vec![
        Finding::claim(
            "pointwise layers of depthwise-separable networks show the split staircase",
            "same planner, same anomaly",
            staircase.optimal_points().len() < curve.points().len() / 4,
        ),
        Finding::claim(
            "pruning one channel from the stock 512 stays safe (c4 % 8 == 0)",
            "511 -> padded single kernel",
            (t511 / t512 - 1.0).abs() < 0.1,
        ),
    ];
    ExperimentResult {
        id: "ext2".into(),
        title: "Extension: MobileNetV1 pointwise staircase (ACL GEMM, Mali G72)".into(),
        body: curve_text(&curve, 32),
        findings,
        csv: None,
    }
}

/// ext3 — energy-aware pruning: the same §V loop driven by the energy
/// model instead of latency.
pub fn ext3() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::noiseless(&device);
    let network = resnet50();
    let accuracy = AccuracyModel::for_network(&network);
    let backend = AclGemm::new();
    let pruner = PerfAwarePruner::new(&profiler, &accuracy);
    let full =
        UninstructedPruner::new(&profiler, &accuracy).prune_by_distance(&backend, &network, 0);
    let plan = pruner.prune_to_energy(&backend, &network, 0.75);
    let body = format!(
        "unpruned ResNet-50: {:.1} ms, {:.1} mJ, accuracy {:.4}\n\
         energy-aware plan (0.75 budget): {:.1} ms, {:.1} mJ, accuracy {:.4}\n",
        full.latency_ms(),
        full.energy_mj(),
        full.accuracy(),
        plan.latency_ms(),
        plan.energy_mj(),
        plan.accuracy()
    );
    let findings = vec![
        Finding::claim(
            "energy budget met",
            "<= 75% of unpruned energy",
            plan.energy_mj() <= full.energy_mj() * 0.75 * 1.001,
        ),
        Finding::claim(
            "energy savings come with latency savings",
            "ops dominate both costs",
            plan.latency_ms() < full.latency_ms(),
        ),
        Finding::claim(
            "accuracy cost stays moderate",
            "> 0.70 under the surrogate",
            plan.accuracy() > 0.70,
        ),
    ];
    ExperimentResult {
        id: "ext3".into(),
        title: "Extension: energy-aware pruning (ResNet-50, ACL GEMM, Mali G72)".into(),
        body,
        findings,
        csv: None,
    }
}

/// ext4 — the Odroid XU4 (Mali T628) claims the paper states in prose:
/// “Similar patterns were observed when running both on the HiKey 970 and
/// on the Odroid XU4” (§IV-A2) and the TVM “bad decisions are also
/// observed on the other Mali platforms (Odroid XU4)” (§IV-A4).
pub fn ext4() -> ExperimentResult {
    let odroid = Device::mali_t628_odroidxu4();
    let layer = resnet_layer("ResNet.L16");
    let curve = sweep(&odroid, &AclGemm::new(), &layer);
    let t92 = curve.ms_at(92).expect("profiled");
    let t96 = curve.ms_at(96).expect("profiled");
    let hikey_ratio = {
        let h = hikey();
        let b = AclGemm::new();
        b.latency_ms(&layer, &h)
    };
    let t128 = curve.ms_at(128).expect("profiled");
    let tvm_jumps = {
        let tvm_curve = sweep(&odroid, &Tvm::new(), &resnet_layer("ResNet.L14"));
        tvm_curve.max_adjacent_ratio().map(|r| r.2).unwrap_or(1.0)
    };
    let findings = vec![
        Finding::ratio(
            "ACL GEMM split penalty exists on the T628 too (92 vs 96 ch)",
            1.6,
            t92 / t96,
            (1.2, 2.6),
        ),
        Finding::claim(
            "the older T628 is slower than the G72 on the same layer",
            "device tiering",
            t128 > hikey_ratio * 2.0,
        ),
        Finding::ratio(
            "TVM fallback spikes appear on the T628",
            10.5,
            tvm_jumps,
            (4.0, 45.0),
        ),
    ];
    ExperimentResult {
        id: "ext4".into(),
        title: "Extension: Odroid XU4 (Mali T628) shows the same patterns (§IV-A2/§IV-A4 prose)"
            .into(),
        body: curve_text(&curve, 8),
        findings,
        csv: None,
    }
}

/// ext5 — the §V discussion as data: “no optimal library exists to
/// outperform across all neural network layers”, and the cross-library
/// oracle quantifies what “integrating optimizations from across different
/// deep learning libraries” would buy.
pub fn ext5() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::noiseless(&device);
    let backends: Vec<Box<dyn ConvBackend>> = vec![
        Box::new(AclDirect::new()),
        Box::new(AclGemm::new()),
        Box::new(Tvm::new()),
        Box::new(AclDirectTuned::new()),
    ];
    let shootout = Shootout::run(&profiler, &backends, &resnet50());
    let (best_idx, best_ms) = shootout.best_single_backend();
    let oracle = shootout.oracle_ms();
    let findings = vec![
        Finding::claim(
            "no single library wins every ResNet-50 layer on Mali",
            "§V: neither ACL nor TVM dominates, even with auto-tuning",
            !shootout.has_dominant_backend(),
        ),
        Finding::ratio(
            "cross-library oracle speedup over the best single library",
            1.2,
            best_ms / oracle,
            (1.01, 2.5),
        ),
    ];
    let mut body = shootout.to_string();
    body.push_str(&format!(
        "\nbest single backend: {} at {:.1} ms | cross-library oracle: {:.1} ms\n",
        shootout.backend_names()[best_idx],
        best_ms,
        oracle
    ));
    ExperimentResult {
        id: "ext5".into(),
        title: "Extension: library shootout and the cross-library oracle (§V discussion)".into(),
        body,
        findings,
        csv: None,
    }
}

/// ext6 — the §IV-A2 memory claim quantified: GEMM's patch matrix can
/// exceed a small device's GPU heap, leaving direct convolution as “the
/// only method that can actually execute at all”.
pub fn ext6() -> ExperimentResult {
    use pruneperf_gpusim::Device;
    use pruneperf_models::vgg16;

    let tiny = Device::builder("Tiny IoT board (24 MiB heap)")
        .gpu_heap_mib(24)
        .build();
    let roomy = hikey();
    let vgg = vgg16();
    let mut body = String::from("layer        gemm_buffers_mib   method@24MiB   method@1GiB\n");
    let mut forced_direct = 0usize;
    for layer in vgg.layers() {
        let mib = AclAuto::gemm_footprint_bytes(layer) / (1024 * 1024);
        let m_tiny = AclAuto::method_for(layer, &tiny);
        let m_roomy = AclAuto::method_for(layer, &roomy);
        if m_tiny == AclMethod::Direct {
            forced_direct += 1;
        }
        body.push_str(&format!(
            "{:<12} {mib:>16}   {:<12?}   {:<12?}\n",
            layer.label(),
            m_tiny,
            m_roomy
        ));
    }
    let l2 = vgg.layer("VGG.L2").expect("catalog has L2");
    let blowup =
        AclAuto::gemm_footprint_bytes(l2) as f64 / (l2.h_in() * l2.w_in() * l2.c_in() * 4) as f64;
    let findings = vec![
        Finding::claim(
            "a tight heap forces direct convolution on the large early layers",
            "§IV-A2: direct is the only method that can execute at all",
            forced_direct >= 2,
        ),
        Finding::ratio(
            "GEMM memory blow-up vs the input (3x3 layer)",
            9.0,
            blowup,
            (7.0, 13.0),
        ),
        Finding::claim(
            "a roomy device uses GEMM everywhere",
            "no spurious fallbacks",
            vgg.layers()
                .iter()
                .all(|l| AclAuto::method_for(l, &roomy) == AclMethod::Gemm),
        ),
    ];
    ExperimentResult {
        id: "ext6".into(),
        title: "Extension: memory-forced GEMM-to-Direct fallback (§IV-A2 claim)".into(),
        body,
        findings,
        csv: None,
    }
}

/// ext7 — coupled pruning quantified: the paper profiles layers in
/// isolation (output channels only), but deploying a pruned network also
/// shrinks every successor's input (`K`) dimension. On sequential networks
/// the compounding is substantial.
pub fn ext7() -> ExperimentResult {
    use pruneperf_models::vgg16;
    use std::collections::HashMap;

    let device = hikey();
    let backend = AclGemm::new();
    let net = vgg16();
    // Keep 75% everywhere, rounded to the fast staircase (multiples of 8).
    let kept: HashMap<String, usize> = net
        .layers()
        .iter()
        .map(|l| {
            let c = ((l.c_out() * 3 / 4) / 8 * 8).max(8);
            (l.label().to_string(), c)
        })
        .collect();
    let isolated: f64 = net
        .layers()
        .iter()
        .map(|l| {
            let c = kept[l.label()];
            backend.latency_ms(&l.with_c_out(c).expect("valid"), &device)
        })
        .sum();
    let coupled_net = net.sequential_with_kept(&kept);
    let coupled: f64 = coupled_net
        .layers()
        .iter()
        .map(|l| backend.latency_ms(l, &device))
        .sum();
    let full: f64 = net
        .layers()
        .iter()
        .map(|l| backend.latency_ms(l, &device))
        .sum();
    let body = format!(
        "VGG-16, keep ~75% per layer (fast-staircase sizes), ACL GEMM on Mali G72\n\
         unpruned:                    {full:>8.1} ms\n\
         per-layer view (paper):      {isolated:>8.1} ms  ({:.2}x)\n\
         coupled deployment:          {coupled:>8.1} ms  ({:.2}x)\n",
        full / isolated,
        full / coupled
    );
    let findings = vec![
        Finding::claim(
            "coupled pruning is faster than the per-layer view predicts",
            "successors' K dimension shrinks too",
            coupled < isolated * 0.95,
        ),
        Finding::ratio(
            "extra speedup from input-channel propagation",
            1.33, // keep 3/4 -> K shrinks to 3/4 on every non-first layer
            isolated / coupled,
            (1.1, 1.45),
        ),
    ];
    ExperimentResult {
        id: "ext7".into(),
        title: "Extension: coupled (propagated) pruning vs the paper's per-layer view".into(),
        body,
        findings,
        csv: None,
    }
}

/// ext8 — whole-network beam search vs the §V greedy loop (PR 10): on the
/// `ragged_net` fixture (coarse Mali staircase quanta that trip
/// one-layer-at-a-time trading) the beam's Pareto front strictly
/// dominates the greedy plan in all three objectives on both Mali
/// devices, while greedy stays optimal on the two CUDA devices.
pub fn ext8() -> ExperimentResult {
    use pruneperf_core::search::{search, ParetoPoint, SearchAlgo, SearchConfig};
    use pruneperf_core::testkit;

    let net = testkit::ragged_net();
    let backend = AclGemm::new();
    // `(device, greedy budget, beam width)` mirrors the differential
    // suite's pinned beats-greedy fixture.
    let mut all = Device::all_paper_devices().into_iter();
    let fixture = [
        (all.next().expect("hikey"), 0.8f64, 16usize),
        (all.next().expect("odroid"), 0.6, 96),
        (all.next().expect("tx2"), 0.8, 16),
        (all.next().expect("nano"), 0.8, 24),
    ];

    let mut body = String::from(
        "ragged fixture (3 conv layers), ACL GEMM, beam seed 1, per-device budgets\n\
         device                       budget  greedy_ms    beam_ms  speedup      d_mj     d_acc  dominates\n",
    );
    let mut beaten: Vec<String> = Vec::new();
    let mut conserved = true;
    let mut best_speedup = 1.0f64;
    for (device, budget, width) in fixture {
        let (p, a) = testkit::noiseless_setup(&net, &device);
        let greedy = PerfAwarePruner::new(&p, &a).prune_to_latency(&backend, &net, budget);
        let gpt = ParetoPoint {
            latency_ms: greedy.latency_ms(),
            energy_mj: greedy.energy_mj(),
            accuracy: greedy.accuracy(),
        };
        let out = search(
            &p,
            &a,
            &backend,
            &net,
            &SearchConfig {
                algo: SearchAlgo::Beam,
                seed: 1,
                beam_width: width,
                generations: 12,
            },
        );
        conserved &= out.evaluated == out.archived as u64 + out.dominated + out.duplicates;
        // The fastest front plan that genuinely dominates greedy: better
        // in all three objectives with a >0.1% latency margin, so
        // summation-order ulps can never count as a win.
        let winner = out
            .plans
            .iter()
            .map(|plan| ParetoPoint {
                latency_ms: plan.latency_ms(),
                energy_mj: plan.energy_mj(),
                accuracy: plan.accuracy(),
            })
            .filter(|q| q.dominates(&gpt) && q.latency_ms < gpt.latency_ms * 0.999)
            .min_by(|x, y| x.latency_ms.total_cmp(&y.latency_ms));
        let (beam_point, verdict) = match winner {
            Some(q) => {
                beaten.push(device.name().to_string());
                best_speedup = best_speedup.max(gpt.latency_ms / q.latency_ms);
                (q, "yes")
            }
            None => (gpt, "no (greedy optimal)"),
        };
        body.push_str(&format!(
            "{:<28} {:>6.2}  {:>9.4}  {:>9.4}  {:>6.4}x  {:>8.4}  {:>8.6}  {}\n",
            device.name(),
            budget,
            gpt.latency_ms,
            beam_point.latency_ms,
            gpt.latency_ms / beam_point.latency_ms,
            gpt.energy_mj - beam_point.energy_mj,
            beam_point.accuracy - gpt.accuracy,
            verdict,
        ));
    }
    body.push_str(&format!(
        "\nbeam strictly dominates greedy on: {}\n",
        beaten.join(", ")
    ));

    let findings = vec![
        Finding::claim(
            "beam front strictly dominates greedy (all three objectives, >0.1% latency) on \u{2265}2 of 4 devices",
            "joint search beats one-layer-at-a-time trading",
            beaten.len() >= 2,
        ),
        Finding::claim(
            "search bookkeeping conserves candidates (evaluated = archived + dominated + duplicates)",
            "no candidate lost or double-counted",
            conserved,
        ),
        Finding::ratio(
            "best latency speedup over greedy at strictly better accuracy and energy",
            1.01,
            best_speedup,
            (1.005, 1.2),
        ),
    ];
    ExperimentResult {
        id: "ext8".into(),
        title: "Extension: whole-network multi-objective search vs greedy pruning (PR 10)".into(),
        body,
        findings,
        csv: None,
    }
}

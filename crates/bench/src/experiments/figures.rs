//! Generators for the paper's 20 figures.
//!
//! Band choices: the simulator is calibrated to reproduce *shapes* (step
//! positions, who wins, rough factors), so each finding accepts a band
//! around the paper's number rather than the exact value — see
//! `EXPERIMENTS.md` for the recorded outcomes.

use pruneperf_backends::{AclDirect, AclGemm, Cudnn, Tvm};
use pruneperf_core::{analysis, Staircase};
use pruneperf_models::{alexnet, resnet50, vgg16};
use pruneperf_profiler::LayerProfiler;

use super::util::{curve_text, hikey, ms_at, nano, resnet_layer, sweep, tx2};
use super::{ExperimentResult, Finding};

/// Fig 1: potential slowdown heatmap, ResNet-50 with ACL GEMM on Mali G72.
pub fn fig01() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::slowdown_table(
        &profiler,
        &AclGemm::new(),
        &resnet50(),
        &analysis::FIG1_DISTANCES,
    );
    let max = heatmap.max_ratio();
    let prune1_max = (0..heatmap.layer_labels().len())
        .filter_map(|j| heatmap.cell(0, j))
        .fold(0.0f64, f64::max);
    let findings = vec![
        Finding::ratio("max slowdown anywhere in the table", 1.9, max, (1.2, 3.0)),
        Finding::claim(
            "Prune=1 row is harmless (stock sizes minus one stay off the slow staircase)",
            "Fig 1 row 1: 0.8x-1.2x",
            prune1_max < 1.25,
        ),
    ];
    ExperimentResult {
        id: "fig1".into(),
        title: "Potential slowdown of pruned ResNet-50 layers, ACL GEMM on Mali G72 (HiKey 970)"
            .into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 2: staircase of a ~1000-channel ResNet-50 layer, cuDNN on Jetson TX2.
pub fn fig02() -> ExperimentResult {
    let device = tx2();
    let layer = resnet_layer("ResNet.L26"); // 1024 filters
    let curve = sweep(&device, &Cudnn::new(), &layer);
    let staircase = Staircase::detect(&curve);
    let t_max = curve.ms_at(1024).unwrap_or(0.0);
    let findings = vec![
        Finding::claim(
            "inference time is a staircase in the channel count",
            "Fig 2: stepped changes due to workgroup filling",
            staircase.steps().len() >= 8,
        ),
        Finding::in_band(
            "latency at 1024 channels",
            "Fig 2 y-axis tops out near 8 ms",
            t_max,
            "ms",
            (2.0, 15.0),
        ),
    ];
    ExperimentResult {
        id: "fig2".into(),
        title: "Staircase: inference time vs channels, ResNet-50 L26 (1024 ch), cuDNN on TX2"
            .into(),
        body: curve_text(&curve, 64),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 3: the ACL two-parallel-staircase pattern on a 128-channel layer.
pub fn fig03() -> ExperimentResult {
    let device = hikey();
    let layer = resnet_layer("ResNet.L16");
    let curve = sweep(&device, &AclGemm::new(), &layer);
    // Count adjacent jumps larger than 1.3x in either direction — the
    // signature of points alternating between two staircases.
    let series = curve.series();
    let jumps = series
        .windows(2)
        .filter(|w| {
            let r = w[1].1 / w[0].1;
            !(1.0 / 1.3..=1.3).contains(&r)
        })
        .count();
    let findings = vec![
        Finding::claim(
            "two parallel staircases (frequent large jumps between adjacent counts)",
            "Fig 3: pattern with two parallel staircases",
            jumps >= 10,
        ),
        Finding::in_band(
            "latency at 128 channels",
            "Fig 3 y-axis: 5-30 ms",
            curve.ms_at(128).unwrap_or(0.0),
            "ms",
            (5.0, 30.0),
        ),
    ];
    ExperimentResult {
        id: "fig3".into(),
        title: "Inference time of ResNet-50 L16 under pruning, ACL GEMM on Mali G72".into(),
        body: curve_text(&curve, 8),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 4: cuDNN staircase for ResNet-50 L16 on TX2 with the 1.3x step.
pub fn fig04() -> ExperimentResult {
    let device = tx2();
    let layer = resnet_layer("ResNet.L16");
    let curve = sweep(&device, &Cudnn::new(), &layer);
    let t96 = curve.ms_at(96).unwrap();
    let t97 = curve.ms_at(97).unwrap();
    let t128 = curve.ms_at(128).unwrap();
    let staircase = Staircase::detect(&curve);
    let findings = vec![
        Finding::ratio("97 vs 96 channels step", 1.3, t97 / t96, (1.1, 1.6)),
        Finding::claim(
            "flat performance for all channel counts above 97",
            "Fig 4: same inference time for 97..128",
            (t128 / t97 - 1.0).abs() < 0.05,
        ),
        Finding::claim(
            "four optimal execution points (one per 32-wide stair)",
            "Fig 4: drops at 96 and 64 (and 32)",
            staircase.optimal_points().len() == 4,
        ),
        Finding::in_band(
            "latency at 128 channels",
            "Fig 4 y-axis: ~10.5 ms",
            t128,
            "ms",
            (6.0, 16.0),
        ),
    ];
    ExperimentResult {
        id: "fig4".into(),
        title: "Staircase for ResNet-50 L16 with cuDNN on Jetson TX2".into(),
        body: curve_text(&curve, 8),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 5: cuDNN staircase for ResNet-50 L14 (512 ch) on TX2, uneven gaps.
pub fn fig05() -> ExperimentResult {
    let device = tx2();
    let layer = resnet_layer("ResNet.L14");
    let curve = sweep(&device, &Cudnn::new(), &layer);
    let staircase = Staircase::detect(&curve);
    let findings = vec![
        Finding::claim(
            "more stairs than L16 (larger channel count)",
            "Fig 5: 16 N-tiles of 32",
            staircase.steps().len() >= 8,
        ),
        Finding::in_band(
            "latency at 512 channels",
            "Fig 5 y-axis: up to ~4 ms",
            curve.ms_at(512).unwrap(),
            "ms",
            (1.5, 9.0),
        ),
    ];
    ExperimentResult {
        id: "fig5".into(),
        title: "Staircase for ResNet-50 L14 with cuDNN on Jetson TX2".into(),
        body: curve_text(&curve, 32),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 6: cuDNN speedup heatmap over ResNet-50 on TX2.
pub fn fig06() -> ExperimentResult {
    let device = tx2();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &Cudnn::new(),
        &resnet50(),
        &analysis::PAPER_DISTANCES,
    );
    // Rows Prune=1..31 are all 1.0x in the paper.
    let mut small_prune_flat = true;
    for (row, _) in analysis::PAPER_DISTANCES.iter().enumerate().take(5) {
        for col in 0..heatmap.layer_labels().len() {
            if let Some(v) = heatmap.cell(row, col) {
                if (v - 1.0).abs() > 0.06 {
                    small_prune_flat = false;
                }
            }
        }
    }
    let findings = vec![
        Finding::claim(
            "no speedup for pruning below the 32-channel tile width",
            "Fig 6: rows Prune=1..31 all 1.0x",
            small_prune_flat,
        ),
        Finding::ratio(
            "max speedup at Prune=127",
            3.3,
            heatmap.max_ratio(),
            (1.8, 5.0),
        ),
    ];
    ExperimentResult {
        id: "fig6".into(),
        title: "Speedups from pruning ResNet-50 with cuDNN on Jetson TX2".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 7: the Nano shows the TX2's staircase scaled by the device gap.
pub fn fig07() -> ExperimentResult {
    let nano_dev = nano();
    let tx2_dev = tx2();
    let layer = resnet_layer("ResNet.L14");
    let curve = sweep(&nano_dev, &Cudnn::new(), &layer);
    let t512_nano = curve.ms_at(512).unwrap();
    let t512_tx2 = ms_at(&tx2_dev, &Cudnn::new(), &layer, 512);
    let findings = vec![
        Finding::in_band(
            "latency at 512 channels on the Nano",
            "Fig 7 y-axis: up to ~14 ms",
            t512_nano,
            "ms",
            (8.0, 22.0),
        ),
        Finding::ratio(
            "Nano / TX2 latency ratio (same layer)",
            3.5,
            t512_nano / t512_tx2,
            (2.0, 4.5),
        ),
        Finding::claim(
            "same pattern as the TX2 (similar GPU architectures)",
            "Fig 7: same staircase shape as Fig 5",
            Staircase::detect(&curve).steps().len() >= 8,
        ),
    ];
    ExperimentResult {
        id: "fig7".into(),
        title: "Staircase for ResNet-50 L14 with cuDNN on Jetson Nano".into(),
        body: curve_text(&curve, 32),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 8: cuDNN speedups over VGG-16.
pub fn fig08() -> ExperimentResult {
    let device = tx2();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &Cudnn::new(),
        &vgg16(),
        &analysis::PAPER_DISTANCES,
    );
    let findings = vec![Finding::ratio(
        "max speedup at Prune=127",
        2.8,
        heatmap.max_ratio(),
        (1.5, 4.5),
    )];
    ExperimentResult {
        id: "fig8".into(),
        title: "Speedups from pruning VGG-16 with cuDNN on Jetson TX2".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 9: cuDNN speedups over AlexNet.
pub fn fig09() -> ExperimentResult {
    let device = tx2();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &Cudnn::new(),
        &alexnet(),
        &analysis::PAPER_DISTANCES,
    );
    let findings = vec![Finding::ratio(
        "max speedup at Prune=127",
        1.4,
        heatmap.max_ratio(),
        (1.1, 2.5),
    )];
    ExperimentResult {
        id: "fig9".into(),
        title: "Speedups from pruning AlexNet with cuDNN on Jetson TX2".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 10: ACL Direct speedups over ResNet-50 — prune-by-one backfires.
pub fn fig10() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclDirect::new(),
        &resnet50(),
        &analysis::PAPER_DISTANCES,
    );
    let prune1_min = (0..heatmap.layer_labels().len())
        .filter_map(|j| heatmap.cell(0, j))
        .fold(f64::INFINITY, f64::min);
    let findings = vec![
        Finding::ratio(
            "worst Prune=1 cell (sub-unit speedup = slowdown)",
            0.2,
            prune1_min,
            (0.1, 0.7),
        ),
        Finding::ratio(
            "max speedup at Prune=127",
            16.9,
            heatmap.max_ratio(),
            (3.0, 25.0),
        ),
    ];
    ExperimentResult {
        id: "fig10".into(),
        title: "Speedups from pruning ResNet-50 with ACL Direct convolution on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 11: ACL Direct speedups over VGG-16.
pub fn fig11() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclDirect::new(),
        &vgg16(),
        &analysis::PAPER_DISTANCES,
    );
    let prune1_min = (0..heatmap.layer_labels().len())
        .filter_map(|j| heatmap.cell(0, j))
        .fold(f64::INFINITY, f64::min);
    let findings = vec![
        Finding::ratio(
            "worst Prune=1 cell (3x3 layers suffer mildly)",
            0.8,
            prune1_min,
            (0.55, 1.05),
        ),
        Finding::ratio(
            "max speedup at Prune=127",
            14.7,
            heatmap.max_ratio(),
            (2.5, 22.0),
        ),
    ];
    ExperimentResult {
        id: "fig11".into(),
        title: "Speedups from pruning VGG-16 with ACL Direct convolution on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 12: three alternating execution levels for ACL Direct on L14.
pub fn fig12() -> ExperimentResult {
    let device = hikey();
    let layer = resnet_layer("ResNet.L14");
    let curve = sweep(&device, &AclDirect::new(), &layer);
    let t400 = curve.ms_at(400).unwrap(); // %4 == 0
    let t402 = curve.ms_at(402).unwrap(); // %2 == 0
    let t401 = curve.ms_at(401).unwrap(); // odd
    let findings = vec![
        Finding::ratio(
            "spread between the slowest and fastest level",
            1.9,
            t401 / t400,
            (1.4, 2.5),
        ),
        Finding::claim(
            "three execution levels: %4 fastest, %2 middle, odd slowest",
            "Fig 12: three alternating levels",
            t400 < t402 && t402 < t401,
        ),
        Finding::in_band(
            "latency near 512 channels",
            "Fig 12 y-axis: up to ~70 ms",
            curve.ms_at(512).unwrap(),
            "ms",
            (15.0, 100.0),
        ),
    ];
    ExperimentResult {
        id: "fig12".into(),
        title: "Execution pattern of ResNet-50 L14 with ACL Direct convolution on HiKey 970".into(),
        body: curve_text(&curve, 32),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 13: ACL GEMM speedups over ResNet-50 — no slowdown near stock sizes.
pub fn fig13() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclGemm::new(),
        &resnet50(),
        &analysis::PAPER_DISTANCES,
    );
    let prune1_min = (0..heatmap.layer_labels().len())
        .filter_map(|j| heatmap.cell(0, j))
        .fold(f64::INFINITY, f64::min);
    let findings = vec![
        Finding::claim(
            "no slowdown in the vicinity of the initial number of channels",
            "Fig 13: Prune=1 row is 0.8x-1.3x (vs Direct's 0.2x)",
            prune1_min > 0.75,
        ),
        Finding::ratio(
            "max speedup at Prune=127",
            5.2,
            heatmap.max_ratio(),
            (2.0, 8.0),
        ),
    ];
    ExperimentResult {
        id: "fig13".into(),
        title: "Speedups from pruning ResNet-50 with ACL GEMM on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 14: the two parallel staircases of ACL GEMM on L16, with the
/// paper's exact callouts (76/78, 92/93, 96/97).
pub fn fig14() -> ExperimentResult {
    let device = hikey();
    let layer = resnet_layer("ResNet.L16");
    let curve = sweep(&device, &AclGemm::new(), &layer);
    let t76 = curve.ms_at(76).unwrap();
    let t78 = curve.ms_at(78).unwrap();
    let t92 = curve.ms_at(92).unwrap();
    let t93 = curve.ms_at(93).unwrap();
    let t96 = curve.ms_at(96).unwrap();
    let t97 = curve.ms_at(97).unwrap();
    let findings = vec![
        Finding::ratio("t(76) / t(78)", 1.83, t76 / t78, (1.3, 2.6)),
        Finding::claim(
            "93..96 run at one (fast) level",
            "Fig 14: channels 93 to 96 executing in 14 ms",
            (t96 / t93 - 1.0).abs() < 0.08,
        ),
        Finding::claim(
            "92 and 97 jump to the slow staircase",
            "Fig 14: 92 and 97 at ~23 ms vs 14 ms",
            t92 > t93 * 1.3 && t97 > t96 * 1.3,
        ),
        Finding::in_band(
            "fast level at 96 channels",
            "Fig 14: ~14 ms",
            t96,
            "ms",
            (6.0, 20.0),
        ),
        Finding::in_band(
            "slow level at 92 channels",
            "Fig 14: ~23 ms",
            t92,
            "ms",
            (11.0, 32.0),
        ),
    ];
    ExperimentResult {
        id: "fig14".into(),
        title: "Two parallel staircases: ResNet-50 L16 with ACL GEMM on HiKey 970".into(),
        body: curve_text(&curve, 4),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 15: the large gap between 2024 and 2036 channels on L45.
pub fn fig15() -> ExperimentResult {
    let device = hikey();
    let layer = resnet_layer("ResNet.L45");
    let curve = sweep(&device, &AclGemm::new(), &layer);
    let t2024 = curve.ms_at(2024).unwrap();
    let t2036 = curve.ms_at(2036).unwrap();
    let findings = vec![
        Finding::ratio("t(2036) / t(2024)", 2.57, t2036 / t2024, (1.5, 3.4)),
        Finding::in_band(
            "fast configuration (2024 channels)",
            "Fig 15: 7.67 ms",
            t2024,
            "ms",
            (4.0, 12.0),
        ),
        Finding::in_band(
            "slow configuration (2036 channels)",
            "Fig 15: 19.69 ms",
            t2036,
            "ms",
            (10.0, 28.0),
        ),
    ];
    ExperimentResult {
        id: "fig15".into(),
        title: "Large latency gap between nearby channel counts: ResNet-50 L45, ACL GEMM".into(),
        body: curve_text(&curve, 128),
        findings,
        csv: Some(curve.to_csv()),
    }
}

/// Fig 16: ACL GEMM speedups over VGG-16.
pub fn fig16() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclGemm::new(),
        &vgg16(),
        &analysis::PAPER_DISTANCES,
    );
    let findings = vec![Finding::ratio(
        "max speedup at Prune=127",
        4.2,
        heatmap.max_ratio(),
        (1.8, 8.5),
    )];
    ExperimentResult {
        id: "fig16".into(),
        title: "Speedups from pruning VGG-16 with ACL GEMM on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 17: ACL GEMM speedups over AlexNet.
pub fn fig17() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(
        &profiler,
        &AclGemm::new(),
        &alexnet(),
        &analysis::PAPER_DISTANCES,
    );
    let findings = vec![Finding::ratio(
        "max speedup at Prune=127",
        2.5,
        heatmap.max_ratio(),
        (1.3, 4.0),
    )];
    ExperimentResult {
        id: "fig17".into(),
        title: "Speedups from pruning AlexNet with ACL GEMM on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 18: relative system-level counters for 92/93/96/97 channels.
pub fn fig18() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let layer = resnet_layer("ResNet.L16");
    let backend = AclGemm::new();
    let mut body =
        String::from("channels  jobs  ctrl_wr  ctrl_rd  interrupts  submissions  runtime_ms\n");
    let mut by_channels = Vec::new();
    for c in [92usize, 93, 96, 97] {
        let pruned = layer.with_c_out(c).unwrap();
        let t = profiler.timeline(&backend, &pruned);
        let counters = *t.counters();
        body.push_str(&format!(
            "{c:>8}  {:>4}  {:>7}  {:>7}  {:>10}  {:>11}  {:>10.3}\n",
            counters.jobs,
            counters.ctrl_reg_writes,
            counters.ctrl_reg_reads,
            counters.interrupts,
            counters.submissions,
            t.total_ms()
        ));
        by_channels.push((c, counters, t.total_ms()));
    }
    let (c92, c93, c97) = (&by_channels[0], &by_channels[1], &by_channels[3]);
    let rel = c92.1.relative_to(&c93.1);
    let findings = vec![
        Finding::claim(
            "92 channels dispatches more jobs than 93 (runtime splits the GEMM)",
            "Fig 18 / §IV-B1: additional jobs dispatched at 92 channels",
            rel.jobs.is_some_and(|r| r > 1.0),
        ),
        Finding::claim(
            "control-register traffic and interrupts scale with the extra job",
            "Fig 18: elevated reads/writes/interrupts for 92 and 97",
            rel.ctrl_reg_writes.is_some_and(|r| r > 1.0)
                && rel.interrupts.is_some_and(|r| r > 1.0)
                && c97.1.jobs > c93.1.jobs,
        ),
        Finding::ratio(
            "runtime ratio 92 vs 93 channels",
            23.0 / 14.0,
            c92.2 / c93.2,
            (1.3, 2.6),
        ),
    ];
    ExperimentResult {
        id: "fig18".into(),
        title: "System-level counters for the GEMM split (ResNet-50 L16, Mali G72)".into(),
        body,
        findings,
        csv: None,
    }
}

/// Fig 19: TVM speedup heatmap — untuned sizes crater performance.
pub fn fig19() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let heatmap = analysis::speedup_table(&profiler, &Tvm::new(), &resnet50(), &[1, 3, 7, 15, 31]);
    let prune1_min = (0..heatmap.layer_labels().len())
        .filter_map(|j| heatmap.cell(0, j))
        .fold(f64::INFINITY, f64::min);
    let findings = vec![
        Finding::claim(
            "some Prune=1 cells are catastrophic (0.0x in the paper's rounding)",
            "Fig 19: 0.0x cells at Prune=1",
            prune1_min < 0.2,
        ),
        Finding::ratio(
            "max speedup in the table",
            13.9,
            heatmap.max_ratio(),
            (2.0, 25.0),
        ),
    ];
    ExperimentResult {
        id: "fig19".into(),
        title: "Speedups from pruning ResNet-50 with TVM on HiKey 970".into(),
        body: heatmap.to_string(),
        findings,
        csv: Some(heatmap.to_csv()),
    }
}

/// Fig 20: TVM's spiky latency curve on L14 — untuned sizes out of the box.
pub fn fig20() -> ExperimentResult {
    let device = hikey();
    let layer = resnet_layer("ResNet.L14");
    let curve = sweep(&device, &Tvm::new(), &layer);
    let series = curve.series();
    // The paper's 10.5x arrow marks the jump between an untuned spike and
    // the tuned size right next to it.
    let (_, _, spike_ratio) = curve.max_adjacent_ratio().expect("curve has points");
    let all_min = series.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let slow_points = series.iter().filter(|p| p.1 > all_min * 4.0).count();
    let findings = vec![
        Finding::ratio(
            "largest jump between adjacent channel counts",
            10.5,
            spike_ratio,
            (4.0, 45.0),
        ),
        Finding::claim(
            "a significant number of sizes use the slow fallback",
            "Fig 20: many sizes untuned out of the box",
            slow_points * 2 > series.len(),
        ),
    ];
    ExperimentResult {
        id: "fig20".into(),
        title: "TVM OpenCL on ResNet-50 L14: untuned sizes spike (HiKey 970)".into(),
        body: curve_text(&curve, 32),
        findings,
        csv: Some(curve.to_csv()),
    }
}

//! Generators for the paper's Tables I–V.

use pruneperf_backends::{AclDirect, AclGemm, ConvBackend};
use pruneperf_gpusim::Engine;
use pruneperf_profiler::LayerProfiler;

use super::util::{hikey, resnet_layer};
use super::{ExperimentResult, Finding};

/// Paper values for the `gemm_mm` kernels of Tables I–IV:
/// `(channels, [(arith, mem), ...])`.
const PAPER_GEMM_COUNTS: [(usize, &[(u64, u64)]); 4] = [
    (92, &[(706_713_280, 36_267_840), (106_006_992, 5_440_176)]),
    (93, &[(848_055_936, 43_521_408)]),
    (96, &[(848_055_936, 43_521_408)]),
    (97, &[(848_055_936, 43_521_408), (35_335_664, 1_813_392)]),
];

/// Shared generator for Tables I–IV (they differ only in channel count).
fn gemm_instruction_table(index: usize) -> ExperimentResult {
    let (channels, paper_gemms) = PAPER_GEMM_COUNTS[index];
    let device = hikey();
    let layer = resnet_layer("ResNet.L16").with_c_out(channels).unwrap();
    let plan = AclGemm::new().plan(&layer, &device);
    let report = Engine::new(&device).run_chain(plan.chain());

    let mut body = format!(
        "ACL execution for ResNet-50 layer 16 with {channels} output channels\n{:<22} {:>16} {:>14}\n",
        "Kernel Name", "No Arithm. Instr.", "No Mem. Instr."
    );
    for k in report.kernels() {
        body.push_str(&format!(
            "{:<22} {:>16} {:>14}\n",
            k.name, k.arith_instructions, k.mem_instructions
        ));
    }

    let measured_gemms: Vec<(u64, u64)> = report
        .kernels_named("gemm_mm")
        .map(|k| (k.arith_instructions, k.mem_instructions))
        .collect();
    let mut findings = vec![
        Finding::claim(
            format!("number of gemm_mm kernels at {channels} channels"),
            format!("paper: {}", paper_gemms.len()),
            measured_gemms.len() == paper_gemms.len(),
        ),
        Finding::claim(
            "gemm_mm arithmetic and memory instruction counts",
            format!("paper: {paper_gemms:?}"),
            measured_gemms == paper_gemms,
        ),
    ];
    if channels == 92 {
        // §IV-B1: the second kernel is "responsible for only 13% of the
        // computation".
        let total: u64 = measured_gemms.iter().map(|g| g.0).sum();
        let second_share = measured_gemms[1].0 as f64 / total as f64;
        findings.push(Finding::ratio(
            "second gemm_mm share of the computation",
            0.13,
            second_share,
            (0.125, 0.135),
        ));
    }
    if channels == 93 {
        // §IV-B1: "the number of instructions in the gemm_mm kernel
        // increases by 4.35%" relative to the 92-channel split total.
        let split_total: u64 = PAPER_GEMM_COUNTS[0].1.iter().map(|g| g.0).sum();
        let ratio = measured_gemms[0].0 as f64 / split_total as f64;
        findings.push(Finding::ratio(
            "gemm_mm instruction increase 93 vs 92 channels",
            1.0435,
            ratio,
            (1.04, 1.05),
        ));
    }
    let roman = ["I", "II", "III", "IV"][index];
    ExperimentResult {
        id: format!("table{}", index + 1),
        title: format!(
            "Table {roman}: ACL kernel instruction counts, ResNet-50 L16 @ {channels} channels"
        ),
        body,
        findings,
        csv: None,
    }
}

/// Table I (92 output channels — the 80+12 split).
pub fn table1() -> ExperimentResult {
    gemm_instruction_table(0)
}

/// Table II (93 output channels — single padded kernel).
pub fn table2() -> ExperimentResult {
    gemm_instruction_table(1)
}

/// Table III (96 output channels — single exact kernel).
pub fn table3() -> ExperimentResult {
    gemm_instruction_table(2)
}

/// Table IV (97 output channels — the 96+4 split).
pub fn table4() -> ExperimentResult {
    gemm_instruction_table(3)
}

/// Table V: ACL Direct workgroup sizes for 90–93 channels, with relative
/// executed instructions and runtimes.
pub fn table5() -> ExperimentResult {
    let device = hikey();
    let profiler = LayerProfiler::new(&device);
    let layer = resnet_layer("ResNet.L16");
    let backend = AclDirect::new();

    let mut rows = Vec::new();
    for c in [90usize, 91, 92, 93] {
        let pruned = layer.with_c_out(c).unwrap();
        let plan = backend.plan(&pruned, &device);
        let wg = plan.chain().jobs()[0].kernel().local();
        let instr = plan.chain().total_arith();
        let ms = profiler.measure(&backend, &pruned).median_ms();
        rows.push((c, wg, instr, ms));
    }
    let base_instr = rows[0].2 as f64;
    let mut body = String::from("Channels   X  Y  Z   Relative GPU instructions   Time (ms)\n");
    for (c, wg, instr, ms) in &rows {
        body.push_str(&format!(
            "{c:>8}  {:>2} {:>2} {:>2}   {:>25.3}   {ms:>9.3}\n",
            wg[0],
            wg[1],
            wg[2],
            *instr as f64 / base_instr
        ));
    }

    let wgs: Vec<[usize; 3]> = rows.iter().map(|r| r.1).collect();
    let instr_growth = rows[3].2 as f64 / rows[0].2 as f64;
    let odd_vs_even = rows[1].3 / rows[0].3;
    let findings = vec![
        Finding::claim(
            "workgroup sizes follow the divisibility heuristic",
            "Table V: 90→2x1x8, 91→1x1x8, 92→4x1x1, 93→1x1x8",
            wgs == [[2, 1, 8], [1, 1, 8], [4, 1, 1], [1, 1, 8]],
        ),
        Finding::ratio(
            "executed instructions grow ~1% per channel (90→93)",
            1.034,
            instr_growth,
            (1.01, 1.06),
        ),
        Finding::ratio(
            "odd channel counts run slower despite equal work (91 vs 90)",
            198.0 / 167.9,
            odd_vs_even,
            (1.05, 1.6),
        ),
    ];
    ExperimentResult {
        id: "table5".into(),
        title: "Table V: ACL Direct workgroup sizes vs runtime, 90–93 channels".into(),
        body,
        findings,
        csv: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_1_to_4_are_fully_in_band() {
        for t in [table1(), table2(), table3(), table4()] {
            assert!(t.all_ok(), "{t}");
            assert!(t.body.contains("gemm_mm"), "{t}");
        }
    }

    #[test]
    fn table5_is_fully_in_band() {
        let t = table5();
        assert!(t.all_ok(), "{t}");
        assert!(t.body.contains("Channels"), "{t}");
    }
}

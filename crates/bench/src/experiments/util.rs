//! Shared helpers for the experiment generators.

use pruneperf_backends::ConvBackend;
use pruneperf_core::Staircase;
use pruneperf_gpusim::Device;
use pruneperf_models::{resnet50, ConvLayerSpec};
use pruneperf_profiler::{LatencyCurve, LayerProfiler};

/// The paper's primary OpenCL board.
pub fn hikey() -> Device {
    Device::mali_g72_hikey970()
}

/// The paper's primary CUDA board.
pub fn tx2() -> Device {
    Device::jetson_tx2()
}

/// The second CUDA board.
pub fn nano() -> Device {
    Device::jetson_nano()
}

/// A ResNet-50 layer by label.
pub fn resnet_layer(label: &str) -> ConvLayerSpec {
    resnet50()
        .layer(label)
        .unwrap_or_else(|| panic!("catalog has {label}"))
        .clone()
}

/// Sweeps a layer's full channel range on a device.
pub fn sweep(device: &Device, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> LatencyCurve {
    LayerProfiler::new(device).latency_curve(backend, layer, 1..=layer.c_out())
}

/// Renders a curve as a compact table: staircase steps plus sampled points.
pub fn curve_text(curve: &LatencyCurve, sample_every: usize) -> String {
    let staircase = Staircase::detect(curve);
    let mut out = String::new();
    out.push_str(&format!("{curve}\n"));
    out.push_str(&curve.ascii_plot(84, 14));
    out.push_str(&format!("{staircase}"));
    out.push_str("sampled series (channels, ms):\n");
    for (i, (c, ms)) in curve.series().iter().enumerate() {
        if i % sample_every == 0 || i + 1 == curve.points().len() {
            out.push_str(&format!("  {c:>5}  {ms:>9.3}\n"));
        }
    }
    out
}

/// Median latency at one channel count via a fresh measurement.
pub fn ms_at(
    device: &Device,
    backend: &dyn ConvBackend,
    layer: &ConvLayerSpec,
    channels: usize,
) -> f64 {
    let pruned = layer.with_c_out(channels).expect("valid channel count");
    LayerProfiler::new(device)
        .measure(backend, &pruned)
        .median_ms()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::AclGemm;

    #[test]
    fn curve_text_contains_plot_steps_and_samples() {
        let device = hikey();
        let layer = resnet_layer("ResNet.L16").with_c_out(32).unwrap();
        let curve = sweep(&device, &AclGemm::new(), &layer);
        let text = curve_text(&curve, 8);
        assert!(text.contains("step(s)"), "{text}");
        assert!(text.contains("sampled series"), "{text}");
        assert!(text.contains('*'), "{text}"); // the ASCII plot
    }

    #[test]
    fn ms_at_matches_sweep() {
        let device = tx2();
        let layer = resnet_layer("ResNet.L16");
        let backend = pruneperf_backends::Cudnn::new();
        let curve = sweep(&device, &backend, &layer);
        let direct = ms_at(&device, &backend, &layer, 96);
        assert_eq!(curve.ms_at(96), Some(direct));
    }

    #[test]
    #[should_panic(expected = "catalog has")]
    fn unknown_layer_panics() {
        let _ = resnet_layer("ResNet.L999");
    }
}

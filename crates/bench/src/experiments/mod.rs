//! The experiment registry.

mod extensions;
mod figures;
mod tables;
pub(crate) mod util;

use std::fmt;

use pruneperf_profiler::sweep;
use serde::{Deserialize, Serialize};

/// One paper-vs-measured comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What is being compared (e.g. `"t(76)/t(78) latency ratio"`).
    pub metric: String,
    /// The paper's value or qualitative claim.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the measurement lands in the acceptance band.
    pub ok: bool,
}

impl Finding {
    /// Compares a measured ratio against a band around the paper's value.
    pub fn ratio(metric: impl Into<String>, paper: f64, measured: f64, band: (f64, f64)) -> Self {
        Finding {
            metric: metric.into(),
            paper: format!("{paper:.2}x"),
            measured: format!("{measured:.2}x"),
            ok: (band.0..=band.1).contains(&measured),
        }
    }

    /// Records a qualitative claim that either held or did not.
    pub fn claim(metric: impl Into<String>, paper: impl Into<String>, held: bool) -> Self {
        Finding {
            metric: metric.into(),
            paper: paper.into(),
            measured: if held { "holds" } else { "VIOLATED" }.into(),
            ok: held,
        }
    }

    /// Compares a measured value against an absolute band (e.g. ms ranges
    /// read off a figure's axis).
    pub fn in_band(
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: f64,
        unit: &str,
        band: (f64, f64),
    ) -> Self {
        Finding {
            metric: metric.into(),
            paper: paper.into(),
            measured: format!("{measured:.2} {unit}"),
            ok: (band.0..=band.1).contains(&measured),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — paper: {}, measured: {}",
            if self.ok { "ok" } else { "MISS" },
            self.metric,
            self.paper,
            self.measured
        )
    }
}

/// The output of one regenerated table or figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`"fig14"`, `"table1"`).
    pub id: String,
    /// Human title mirroring the paper caption.
    pub title: String,
    /// The regenerated rows/series, printable.
    pub body: String,
    /// Paper-vs-measured comparisons.
    pub findings: Vec<Finding>,
    /// Plot-ready CSV of the regenerated data, when the experiment has a
    /// natural tabular form (curves and heatmaps).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub csv: Option<String>,
}

impl ExperimentResult {
    /// `true` when every finding landed in its acceptance band.
    pub fn all_ok(&self) -> bool {
        self.findings.iter().all(|f| f.ok)
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {}", self.id, self.title)?;
        writeln!(f, "{}", self.body)?;
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        Ok(())
    }
}

/// All experiment ids in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "table1",
        "table2", "table3", "table4", "table5", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6",
        "ext7", "ext8",
    ]
}

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn run(id: &str) -> Option<ExperimentResult> {
    Some(match id {
        "fig1" => figures::fig01(),
        "fig2" => figures::fig02(),
        "fig3" => figures::fig03(),
        "fig4" => figures::fig04(),
        "fig5" => figures::fig05(),
        "fig6" => figures::fig06(),
        "fig7" => figures::fig07(),
        "fig8" => figures::fig08(),
        "fig9" => figures::fig09(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "fig13" => figures::fig13(),
        "fig14" => figures::fig14(),
        "fig15" => figures::fig15(),
        "fig16" => figures::fig16(),
        "fig17" => figures::fig17(),
        "fig18" => figures::fig18(),
        "fig19" => figures::fig19(),
        "fig20" => figures::fig20(),
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "table3" => tables::table3(),
        "table4" => tables::table4(),
        "table5" => tables::table5(),
        "ext1" => extensions::ext1(),
        "ext2" => extensions::ext2(),
        "ext3" => extensions::ext3(),
        "ext4" => extensions::ext4(),
        "ext5" => extensions::ext5(),
        "ext6" => extensions::ext6(),
        "ext7" => extensions::ext7(),
        "ext8" => extensions::ext8(),
        _ => return None,
    })
}

/// Runs many experiments across `jobs` worker threads.
///
/// Results come back in the order of `ids` (index-ordered collection), so
/// anything rendered from them — `repro` stdout, `repro_results.json`,
/// per-experiment CSVs — is byte-identical to a sequential run at any
/// worker count. Experiments are pure functions of the deterministic
/// simulator stack and share the process-wide
/// [`pruneperf_profiler::LatencyCache`], so workers also warm each other's
/// latency queries.
pub fn run_many(ids: &[String], jobs: usize) -> Vec<Option<ExperimentResult>> {
    // lint: allow(hot-root) — one closure run per experiment, not per candidate plan
    sweep::ordered_parallel_map(ids, jobs, |id| run(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(all_ids().len(), 33);
        for id in all_ids() {
            assert!(run(id).is_some(), "{id} missing");
        }
        assert!(run("fig99").is_none());
    }

    #[test]
    fn finding_constructors() {
        let f = Finding::ratio("r", 1.83, 1.7, (1.3, 2.6));
        assert!(f.ok);
        assert!(f.to_string().contains("ok"));
        let f = Finding::ratio("r", 1.83, 5.0, (1.3, 2.6));
        assert!(!f.ok);
        assert!(Finding::claim("c", "staircase", true).ok);
        assert!(Finding::in_band("b", "10-30 ms", 14.0, "ms", (10.0, 30.0)).ok);
    }
}

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section and reports paper-vs-measured findings.
//!
//! Each experiment is a pure function from the (deterministic) simulator
//! stack to an [`ExperimentResult`]: a human-readable body plus a list of
//! [`Finding`]s comparing a measured quantity against the value or band the
//! paper reports. The `repro` binary runs them from the command line:
//!
//! ```text
//! cargo run -p pruneperf-bench --bin repro -- list
//! cargo run -p pruneperf-bench --bin repro -- fig14 table1
//! cargo run -p pruneperf-bench --bin repro -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod micro;

pub use experiments::{all_ids, run, run_many, ExperimentResult, Finding};
pub use micro::{run_suite, BenchResult, BenchSuite, Metric, WallStats};

//! The `pruneperf bench` micro-benchmark suite (PR 5).
//!
//! Six fixed benchmarks exercise the hot paths of the simulation stack:
//!
//! 1. **cache_hit** — repeated lookups against a warmed latency cache;
//! 2. **cold_sweep** — a full channel sweep of ResNet-50 L16 with an
//!    empty cache (the profiler's worst case);
//! 3. **staircase_detect** — staircase analysis over a full-range curve;
//! 4. **gemm_split_plan** — ACL GEMM dispatch planning across every
//!    channel count, including the split-kernel tail shapes;
//! 5. **resnet50_full** — one whole-network run through
//!    [`NetworkRunner`];
//! 6. **search_beam_small** (PR 10) — the whole-network beam search on
//!    the micro network, cold then warm against one cache; the warm-pass
//!    engine deltas gate at zero.
//!
//! Each benchmark reports two kinds of numbers:
//!
//! * **deterministic metrics** — counts and *virtual*-time quantities
//!   from the simulator, plus (since PR 6) the latency cache's
//!   engine-activity counters, which prove the incremental simulation
//!   path is doing its job: `engine_runs` counts full cold simulations,
//!   `chains_assembled` counts layer costs rebuilt from memoized kernel
//!   costs, and `kernel_memo_hits` counts per-kernel queries answered
//!   without the engine. These are byte-identical on every machine and at
//!   every `--jobs` count, so CI diffs them against a checked-in baseline
//!   (`BENCH_PR10.json`) and fails on any drift;
//! * **wall-clock stats** — warmup plus median-of-N real time via
//!   `Instant` (legal here: the bench crate is outside the determinism
//!   lint scope). These are informational only and never participate in
//!   regression comparisons; `--no-wall` omits them entirely so rendered
//!   reports can be compared byte-for-byte across worker counts.
//!
//! Floats render through Rust's shortest-roundtrip `Display`, so string
//! equality of a rendered metric is bit equality of the underlying `f64`.

use std::sync::Arc;
use std::time::Instant;

use pruneperf_backends::{AclGemm, ConvBackend};
use pruneperf_core::accuracy::AccuracyModel;
use pruneperf_core::search::{search, SearchAlgo, SearchConfig};
use pruneperf_core::Staircase;
use pruneperf_gpusim::Device;
use pruneperf_models::{resnet50, ConvLayerSpec};
use pruneperf_profiler::{EngineStats, LatencyCache, LayerProfiler, NetworkRunner, Stats};

/// Measured wall-clock repetitions per benchmark (after warmup).
pub const WALL_RUNS: usize = 5;
/// Untimed warmup repetitions per benchmark.
pub const WALL_WARMUP: usize = 1;
/// Schema version of the rendered JSON.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// One deterministic metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// An exact count.
    Count(u64),
    /// A virtual-time / virtual-energy quantity. Rendered via `Display`
    /// (shortest roundtrip), compared bit-exactly.
    Float(f64),
}

impl Metric {
    /// Renders the value as a JSON number token.
    pub fn render(&self) -> String {
        match self {
            Metric::Count(v) => v.to_string(),
            Metric::Float(v) => format!("{v}"),
        }
    }

    /// Bit-exact equality against a parsed baseline number.
    fn matches(&self, baseline: &serde::Value) -> bool {
        match self {
            Metric::Count(v) => baseline.as_u64() == Some(*v),
            Metric::Float(v) => baseline
                .as_f64()
                .is_some_and(|b| b.to_bits() == v.to_bits()),
        }
    }
}

/// Wall-clock statistics for one benchmark: median of [`WALL_RUNS`]
/// timed repetitions after [`WALL_WARMUP`] untimed ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallStats {
    /// Timed repetitions.
    pub runs: usize,
    /// Median elapsed nanoseconds.
    pub median_ns: u64,
    /// Fastest repetition, nanoseconds.
    pub min_ns: u64,
    /// Slowest repetition, nanoseconds.
    pub max_ns: u64,
}

impl WallStats {
    /// Median elapsed milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns as f64 / 1e6
    }
}

/// One benchmark's outcome: its deterministic metrics in a stable order,
/// plus optional wall-clock stats.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable benchmark identifier.
    pub name: &'static str,
    /// `(metric name, value)` in render order.
    pub metrics: Vec<(&'static str, Metric)>,
    /// Wall-clock stats; `None` when the suite ran with wall timing off.
    pub wall: Option<WallStats>,
}

/// The whole suite's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    results: Vec<BenchResult>,
}

/// Warmup + median-of-N wall timing around a workload.
fn time_wall(mut workload: impl FnMut()) -> WallStats {
    for _ in 0..WALL_WARMUP {
        workload();
    }
    let mut samples = [0u64; WALL_RUNS];
    for slot in &mut samples {
        let start = Instant::now();
        workload();
        *slot = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    samples.sort_unstable();
    WallStats {
        runs: WALL_RUNS,
        median_ns: samples[WALL_RUNS / 2],
        min_ns: samples[0],
        max_ns: samples[WALL_RUNS - 1],
    }
}

fn hikey() -> Device {
    Device::mali_g72_hikey970()
}

fn l16() -> ConvLayerSpec {
    resnet50()
        .layer("ResNet.L16")
        // lint: allow(unwrap) — the static catalog always carries L16
        .expect("catalog has L16")
        .clone()
}

/// Every valid pruning of `layer` down to 1 kept channel.
fn all_prunings(layer: &ConvLayerSpec) -> Vec<ConvLayerSpec> {
    (1..=layer.c_out())
        .filter_map(|c| layer.with_c_out(c).ok())
        .collect()
}

/// Benchmark 1: repeated queries against a warmed latency cache.
fn bench_cache_hit(wall: bool) -> BenchResult {
    const PASSES: usize = 8;
    let device = hikey();
    let backend = AclGemm::new();
    let configs = all_prunings(&l16());
    let workload = || {
        let cache = LatencyCache::new();
        let mut virtual_ms = 0.0f64;
        for _ in 0..=PASSES {
            for config in &configs {
                virtual_ms += cache.cost(&backend, config, &device).0;
            }
        }
        (cache.stats(), virtual_ms)
    };
    let (stats, virtual_ms) = workload();
    BenchResult {
        name: "cache_hit",
        metrics: vec![
            ("lookups", Metric::Count(stats.lookups)),
            ("hits", Metric::Count(stats.hits)),
            ("misses", Metric::Count(stats.misses)),
            ("entries", Metric::Count(stats.entries as u64)),
            ("virtual_ms", Metric::Float(virtual_ms)),
        ],
        wall: wall.then(|| {
            time_wall(|| {
                workload();
            })
        }),
    }
}

/// Appends the cache's engine-activity counters to a metric list. The
/// `engine_runs`/`chains_assembled` split is the regression gate for the
/// incremental path: a change that silently falls back to cold simulation
/// moves `engine_runs` off its baseline and fails `--check`.
fn push_engine_metrics(metrics: &mut Vec<(&'static str, Metric)>, engine: EngineStats) {
    metrics.push(("chains_assembled", Metric::Count(engine.chains_assembled)));
    metrics.push(("engine_runs", Metric::Count(engine.engine_runs)));
    metrics.push(("kernel_lookups", Metric::Count(engine.kernel_lookups)));
    metrics.push(("kernel_memo_hits", Metric::Count(engine.kernel_memo_hits())));
    metrics.push(("kernel_evals", Metric::Count(engine.kernel_evals)));
}

/// Benchmark 2: a full channel sweep against an empty cache.
fn bench_cold_sweep(wall: bool) -> BenchResult {
    let device = hikey();
    let backend = AclGemm::new();
    let layer = l16();
    let workload = || {
        let cache = Arc::new(LatencyCache::new());
        let curve = LayerProfiler::noiseless(&device)
            .with_cache(Arc::clone(&cache))
            .with_stats(Arc::new(Stats::new()))
            .latency_curve(&backend, &layer, 60..=128);
        let engine = cache.engine_stats();
        (curve, engine)
    };
    let (curve, engine) = workload();
    let total_ms: f64 = curve.series().iter().map(|&(_, ms)| ms).sum();
    let mut metrics = vec![
        ("points", Metric::Count(curve.points().len() as u64)),
        ("total_virtual_ms", Metric::Float(total_ms)),
    ];
    push_engine_metrics(&mut metrics, engine);
    BenchResult {
        name: "cold_sweep",
        metrics,
        wall: wall.then(|| {
            time_wall(|| {
                workload();
            })
        }),
    }
}

/// Benchmark 3: staircase detection over a full-range curve.
fn bench_staircase_detect(wall: bool) -> BenchResult {
    let device = hikey();
    let backend = AclGemm::new();
    let layer = l16();
    // The curve is the fixture, not the workload: build it once outside
    // the timed region so wall time measures detection alone.
    let curve = LayerProfiler::noiseless(&device)
        .with_cache(Arc::new(LatencyCache::new()))
        .with_stats(Arc::new(Stats::new()))
        .latency_curve(&backend, &layer, 1..=layer.c_out());
    let staircase = Staircase::detect(&curve);
    let best_ms = staircase
        .optimal_points()
        .iter()
        .map(|p| p.ms)
        .fold(f64::INFINITY, f64::min);
    BenchResult {
        name: "staircase_detect",
        metrics: vec![
            ("curve_points", Metric::Count(curve.points().len() as u64)),
            ("steps", Metric::Count(staircase.steps().len() as u64)),
            (
                "optimal_points",
                Metric::Count(staircase.optimal_points().len() as u64),
            ),
            ("best_ms", Metric::Float(best_ms)),
        ],
        wall: wall.then(|| {
            time_wall(|| {
                Staircase::detect(&curve);
            })
        }),
    }
}

/// Benchmark 4: ACL GEMM dispatch planning across every channel count.
fn bench_gemm_split_plan(wall: bool) -> BenchResult {
    let device = hikey();
    let backend = AclGemm::new();
    let configs = all_prunings(&l16());
    let workload = || {
        let mut jobs = 0u64;
        let mut split_plans = 0u64;
        let mut arith = 0u64;
        for config in &configs {
            let plan = backend.plan(config, &device);
            jobs += plan.chain().len() as u64;
            arith += plan.chain().total_arith();
            if plan.kernels_named("gemm_mm").count() > 1 {
                split_plans += 1;
            }
        }
        (jobs, split_plans, arith)
    };
    let (jobs, split_plans, arith) = workload();
    BenchResult {
        name: "gemm_split_plan",
        metrics: vec![
            ("plans", Metric::Count(configs.len() as u64)),
            ("jobs", Metric::Count(jobs)),
            ("split_plans", Metric::Count(split_plans)),
            ("arith_instructions", Metric::Count(arith)),
        ],
        wall: wall.then(|| {
            time_wall(|| {
                workload();
            })
        }),
    }
}

/// Benchmark 5: one whole-network ResNet-50 run.
///
/// Runs against a fresh local cache (not the process-wide one) so the
/// engine counters are a pure function of this benchmark's work; the
/// virtual metrics are bitwise-unaffected by where the cache lives.
fn bench_resnet50_full(wall: bool) -> BenchResult {
    let device = hikey();
    let backend = AclGemm::new();
    let network = resnet50();
    let workload = || {
        let cache = Arc::new(LatencyCache::new());
        let report = NetworkRunner::new(&device)
            .with_cache(Arc::clone(&cache))
            .run(&backend, &network);
        (report, cache.engine_stats())
    };
    let (report, engine) = workload();
    let mut metrics = vec![
        ("layers", Metric::Count(report.layers().len() as u64)),
        ("total_virtual_ms", Metric::Float(report.total_ms())),
        ("total_virtual_mj", Metric::Float(report.total_mj())),
    ];
    push_engine_metrics(&mut metrics, engine);
    BenchResult {
        name: "resnet50_full",
        metrics,
        wall: wall.then(|| {
            time_wall(|| {
                workload();
            })
        }),
    }
}

/// Benchmark 6 (PR 10): the whole-network beam search on the three-layer
/// micro network, run twice against the same cache.
///
/// The cold pass exercises the search engine plus the batched evaluation
/// path; the warm pass must answer *every* measurement from the latency
/// cache — `warm_engine_runs` and `warm_chains_assembled` are the deltas
/// across the second pass and gate at exactly zero. The search counters
/// themselves (candidates evaluated, front size, dominated) are
/// schedule-free and identical across passes.
fn bench_search_beam_small(wall: bool) -> BenchResult {
    let device = hikey();
    let backend = AclGemm::new();
    let network = pruneperf_core::testkit::micro_net();
    let config = SearchConfig {
        algo: SearchAlgo::Beam,
        seed: 1,
        beam_width: 16,
        generations: 12,
    };
    let workload = || {
        let cache = Arc::new(LatencyCache::new());
        let profiler = LayerProfiler::noiseless(&device).with_cache(Arc::clone(&cache));
        let accuracy = AccuracyModel::for_network(&network);
        let cold = search(&profiler, &accuracy, &backend, &network, &config);
        let cold_engine = cache.engine_stats();
        let warm = search(&profiler, &accuracy, &backend, &network, &config);
        let warm_engine = cache.engine_stats();
        (cold, warm, cold_engine, warm_engine)
    };
    let (cold, warm, cold_engine, warm_engine) = workload();
    debug_assert_eq!(cold.evaluated, warm.evaluated);
    let metrics = vec![
        ("candidates", Metric::Count(cold.evaluated)),
        ("front", Metric::Count(cold.archived as u64)),
        ("dominated", Metric::Count(cold.dominated)),
        ("rounds", Metric::Count(cold.rounds)),
        ("best_ms", Metric::Float(cold.plans[0].latency_ms())),
        ("cold_engine_runs", Metric::Count(cold_engine.engine_runs)),
        (
            "cold_chains_assembled",
            Metric::Count(cold_engine.chains_assembled),
        ),
        (
            "warm_engine_runs",
            Metric::Count(warm_engine.engine_runs - cold_engine.engine_runs),
        ),
        (
            "warm_chains_assembled",
            Metric::Count(warm_engine.chains_assembled - cold_engine.chains_assembled),
        ),
    ];
    BenchResult {
        name: "search_beam_small",
        metrics,
        wall: wall.then(|| {
            time_wall(|| {
                workload();
            })
        }),
    }
}

/// Runs the whole suite. With `wall` off the result carries only
/// deterministic metrics, so two renderings compare byte-for-byte.
pub fn run_suite(wall: bool) -> BenchSuite {
    BenchSuite {
        results: vec![
            bench_cache_hit(wall),
            bench_cold_sweep(wall),
            bench_staircase_detect(wall),
            bench_gemm_split_plan(wall),
            bench_resnet50_full(wall),
            bench_search_beam_small(wall),
        ],
    }
}

impl BenchSuite {
    /// The benchmark results in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Stable-field-order JSON rendering (same hand-rendered idiom as the
    /// analysis and chaos reports — no serializer in the render path).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"version\": {BENCH_SCHEMA_VERSION},\n"));
        out.push_str("  \"suite\": \"pruneperf bench\",\n");
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
            out.push_str("      \"metrics\": {");
            for (j, (key, value)) in r.metrics.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{key}\": {}", value.render()));
            }
            out.push('}');
            if let Some(w) = &r.wall {
                out.push_str(&format!(
                    ",\n      \"wall\": {{\"runs\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                    w.runs, w.median_ns, w.min_ns, w.max_ns
                ));
            }
            out.push_str("\n    }");
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table.
    pub fn render_human(&self) -> String {
        let mut out = String::from("pruneperf micro-benchmark suite\n");
        for r in &self.results {
            out.push_str(&format!("\n[{}]\n", r.name));
            for (key, value) in &r.metrics {
                out.push_str(&format!("  {key:<20} {}\n", value.render()));
            }
            if let Some(w) = &r.wall {
                out.push_str(&format!(
                    "  {:<20} {:.3} ms (min {:.3}, max {:.3}, {} runs + {} warmup)\n",
                    "wall median",
                    w.median_ms(),
                    w.min_ns as f64 / 1e6,
                    w.max_ns as f64 / 1e6,
                    w.runs,
                    WALL_WARMUP
                ));
            }
        }
        out
    }

    /// Compares this run's deterministic metrics against a baseline
    /// rendered by [`BenchSuite::render_json`] (wall stats, if present in
    /// either, are ignored).
    ///
    /// Returns a summary line on success.
    ///
    /// # Errors
    ///
    /// One message per mismatch: unparseable baseline, missing or extra
    /// benchmark, missing or extra metric, or a value that drifted.
    pub fn check_against(&self, baseline_json: &str) -> Result<String, Vec<String>> {
        let baseline: serde::Value = match serde_json::from_str(baseline_json) {
            Ok(v) => v,
            Err(e) => return Err(vec![format!("baseline is not valid JSON: {e}")]),
        };
        let Some(benchmarks) = baseline.get("benchmarks").and_then(|b| b.as_array()) else {
            return Err(vec!["baseline has no \"benchmarks\" array".to_string()]);
        };
        let mut problems = Vec::new();
        let mut compared = 0usize;
        for r in &self.results {
            let Some(base) = benchmarks
                .iter()
                .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(r.name))
            else {
                problems.push(format!("benchmark '{}' missing from baseline", r.name));
                continue;
            };
            let Some(metrics) = base.get("metrics").and_then(|m| m.as_object()) else {
                problems.push(format!("baseline '{}' has no \"metrics\" object", r.name));
                continue;
            };
            for (key, value) in &r.metrics {
                match metrics.iter().find(|(k, _)| k == key) {
                    None => problems.push(format!("{}.{key}: missing from baseline", r.name)),
                    Some((_, base_value)) if !value.matches(base_value) => {
                        problems.push(format!(
                            "{}.{key}: regression — baseline {}, measured {}",
                            r.name,
                            render_baseline(base_value),
                            value.render()
                        ));
                    }
                    Some(_) => compared += 1,
                }
            }
            for (key, _) in metrics {
                if !r.metrics.iter().any(|(k, _)| k == key) {
                    problems.push(format!("{}.{key}: in baseline but not measured", r.name));
                }
            }
        }
        for b in benchmarks {
            if let Some(name) = b.get("name").and_then(|n| n.as_str()) {
                if !self.results.iter().any(|r| r.name == name) {
                    problems.push(format!("baseline benchmark '{name}' was not run"));
                }
            }
        }
        if problems.is_empty() {
            Ok(format!(
                "bench check: {} benchmarks, {compared} deterministic metrics match the baseline",
                self.results.len()
            ))
        } else {
            Err(problems)
        }
    }

    /// Informational wall-clock comparison against a baseline rendering.
    ///
    /// Returns one line per benchmark where both this run and the baseline
    /// carry wall stats, or `None` when no benchmark is comparable (e.g.
    /// either side ran with `--no-wall`). Never part of the `--check`
    /// gate: wall time is machine- and load-dependent by nature.
    pub fn wall_delta_against(&self, baseline_json: &str) -> Option<String> {
        let baseline: serde::Value = serde_json::from_str(baseline_json).ok()?;
        let benchmarks = baseline.get("benchmarks")?.as_array()?;
        let mut lines = Vec::new();
        for r in &self.results {
            let Some(w) = &r.wall else { continue };
            let base_ns = benchmarks
                .iter()
                .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(r.name))
                .and_then(|b| b.get("wall"))
                .and_then(|bw| bw.get("median_ns"))
                .and_then(|v| v.as_u64());
            let Some(base_ns) = base_ns else { continue };
            if base_ns == 0 {
                continue;
            }
            let delta = (w.median_ns as f64 / base_ns as f64 - 1.0) * 100.0;
            lines.push(format!(
                "{}: median {:.3} ms vs baseline {:.3} ms ({:+.1}%)",
                r.name,
                w.median_ms(),
                base_ns as f64 / 1e6,
                delta
            ));
        }
        if lines.is_empty() {
            None
        } else {
            Some(format!(
                "wall-clock vs baseline (informational, never gating):\n  {}",
                lines.join("\n  ")
            ))
        }
    }
}

/// Renders a parsed baseline number back to a display token.
fn render_baseline(value: &serde::Value) -> String {
    if let Some(u) = value.as_u64() {
        u.to_string()
    } else if let Some(f) = value.as_f64() {
        format!("{f}")
    } else {
        format!("{value:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(suite: &BenchSuite, bench: &str, key: &str) -> Metric {
        suite
            .results()
            .iter()
            .find(|r| r.name == bench)
            .and_then(|r| r.metrics.iter().find(|(k, _)| *k == key))
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("{bench}.{key} missing"))
    }

    #[test]
    fn suite_covers_all_six_benchmarks_in_order() {
        let suite = run_suite(false);
        let names: Vec<&str> = suite.results().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            [
                "cache_hit",
                "cold_sweep",
                "staircase_detect",
                "gemm_split_plan",
                "resnet50_full",
                "search_beam_small"
            ]
        );
        assert!(suite.results().iter().all(|r| r.wall.is_none()));
    }

    #[test]
    fn warm_search_pass_never_touches_the_engine() {
        let suite = run_suite(false);
        let (Metric::Count(warm_runs), Metric::Count(warm_chains), Metric::Count(cold_runs)) = (
            metric(&suite, "search_beam_small", "warm_engine_runs"),
            metric(&suite, "search_beam_small", "warm_chains_assembled"),
            metric(&suite, "search_beam_small", "cold_engine_runs"),
        ) else {
            panic!("search_beam_small engine metrics must be counts");
        };
        let Metric::Count(cold_chains) =
            metric(&suite, "search_beam_small", "cold_chains_assembled")
        else {
            panic!("cold_chains_assembled must be a count");
        };
        assert_eq!(warm_runs, 0, "warm search must be fully cached");
        assert_eq!(warm_chains, 0, "warm search must not re-assemble chains");
        // The incremental path may satisfy the cold pass without a single
        // full engine run; either way the cold pass built real costs.
        assert!(cold_runs + cold_chains > 0, "cold search did no work");
        let Metric::Count(candidates) = metric(&suite, "search_beam_small", "candidates") else {
            panic!("candidates must be a count");
        };
        assert!(candidates > 0);
    }

    #[test]
    fn deterministic_metrics_are_identical_across_runs() {
        let a = run_suite(false);
        let b = run_suite(false);
        assert_eq!(a, b);
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn cache_hit_conserves_lookups() {
        let suite = run_suite(false);
        let (Metric::Count(lookups), Metric::Count(hits), Metric::Count(misses)) = (
            metric(&suite, "cache_hit", "lookups"),
            metric(&suite, "cache_hit", "hits"),
            metric(&suite, "cache_hit", "misses"),
        ) else {
            panic!("cache_hit metrics must be counts");
        };
        assert_eq!(lookups, hits + misses);
        assert!(hits >= 8 * misses, "warmed cache must be hit-dominated");
    }

    #[test]
    fn json_parses_and_wall_toggle_controls_the_wall_key() {
        let dry = run_suite(false).render_json();
        let parsed: serde::Value = serde_json::from_str(&dry).expect("valid JSON");
        let benchmarks = parsed
            .get("benchmarks")
            .and_then(|b| b.as_array())
            .expect("benchmarks array");
        assert_eq!(benchmarks.len(), 6);
        assert!(benchmarks.iter().all(|b| b.get("wall").is_none()));
        assert!(!dry.contains("median_ns"));

        let timed = run_suite(true).render_json();
        let parsed: serde::Value = serde_json::from_str(&timed).expect("valid JSON");
        let benchmarks = parsed
            .get("benchmarks")
            .and_then(|b| b.as_array())
            .expect("benchmarks array");
        assert!(benchmarks.iter().all(|b| b
            .get("wall")
            .and_then(|w| w.get("median_ns"))
            .and_then(|v| v.as_u64())
            .is_some()));
    }

    #[test]
    fn check_against_accepts_own_rendering_and_flags_drift() {
        let suite = run_suite(false);
        let baseline = suite.render_json();
        let summary = suite.check_against(&baseline).expect("self-check passes");
        assert!(summary.contains("match the baseline"), "{summary}");

        // Wall stats in the baseline are ignored.
        let timed = run_suite(true);
        timed
            .check_against(&baseline)
            .expect("wall stats do not affect the check");

        // A drifted count is reported as a regression.
        let drifted = baseline.replace("\"plans\": 128", "\"plans\": 127");
        assert_ne!(drifted, baseline, "fixture must actually change");
        let problems = suite.check_against(&drifted).expect_err("must flag drift");
        assert!(
            problems.iter().any(|p| p.contains("gemm_split_plan.plans")),
            "{problems:?}"
        );

        // A missing benchmark is reported.
        let gutted = baseline.replace("\"name\": \"cold_sweep\"", "\"name\": \"warm_sweep\"");
        let problems = suite.check_against(&gutted).expect_err("must flag rename");
        assert!(
            problems.iter().any(|p| p.contains("'cold_sweep' missing")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("'warm_sweep' was not run")),
            "{problems:?}"
        );

        assert!(suite.check_against("not json").is_err());
        assert!(suite.check_against("{}").is_err());
    }

    #[test]
    fn incremental_path_eliminates_full_engine_runs() {
        // The PR 6 acceptance gate: the cold path used to run one full
        // engine chain per point/layer; the incremental path must cut
        // that by at least 5× (here: to zero — every cost is assembled
        // from memoized kernel costs).
        let suite = run_suite(false);
        for bench in ["cold_sweep", "resnet50_full"] {
            let (Metric::Count(assembled), Metric::Count(runs)) = (
                metric(&suite, bench, "chains_assembled"),
                metric(&suite, bench, "engine_runs"),
            ) else {
                panic!("{bench} engine counters must be counts");
            };
            assert!(assembled > 0, "{bench}: nothing was assembled");
            assert!(
                5 * runs <= assembled,
                "{bench}: engine runs not reduced >=5x ({runs} runs vs {assembled} cold-path chains)"
            );
            assert_eq!(runs, 0, "{bench}: the infallible path never runs cold");
            let (Metric::Count(lookups), Metric::Count(evals), Metric::Count(hits)) = (
                metric(&suite, bench, "kernel_lookups"),
                metric(&suite, bench, "kernel_evals"),
                metric(&suite, bench, "kernel_memo_hits"),
            ) else {
                panic!("{bench} kernel counters must be counts");
            };
            assert_eq!(lookups, evals + hits);
            assert!(hits > 0, "{bench}: the kernel memo was never reused");
        }
    }

    #[test]
    fn wall_delta_is_informational_and_tolerant() {
        let timed = run_suite(true);
        let baseline = timed.render_json();
        let delta = timed
            .wall_delta_against(&baseline)
            .expect("both sides carry wall stats");
        assert!(delta.contains("informational"));
        assert!(delta.contains("cold_sweep"));
        // A wall-less side yields no delta rather than an error.
        let dry = run_suite(false);
        assert!(dry.wall_delta_against(&baseline).is_none());
        assert!(timed.wall_delta_against(&dry.render_json()).is_none());
        assert!(timed.wall_delta_against("not json").is_none());
    }

    #[test]
    fn wall_stats_are_ordered() {
        let w = time_wall(|| {
            std::hint::black_box(resnet50().total_macs());
        });
        assert_eq!(w.runs, WALL_RUNS);
        assert!(w.min_ns <= w.median_ns && w.median_ns <= w.max_ns);
    }
}

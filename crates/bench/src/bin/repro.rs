//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list            # show available experiment ids
//! repro fig14 table1    # run specific experiments
//! repro all             # run everything, print a summary
//! repro summary         # run everything, print one line per experiment
//! repro all --json out.json --csv-dir csv/
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use pruneperf_bench::{all_ids, run, ExperimentResult};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: repro <list | all | id...> [--json <path>] [--csv-dir <dir>]");
        eprintln!("ids: {}", all_ids().join(" "));
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for id in all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "summary" {
        let mut all_ok = true;
        for id in all_ids() {
            let r = run(id).expect("registry is complete");
            let ok = r.findings.iter().filter(|f| f.ok).count();
            println!(
                "{:<8} {:>2}/{:<2} findings ok  {}",
                r.id,
                ok,
                r.findings.len(),
                r.title
            );
            all_ok &= r.all_ok();
        }
        return if all_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next();
            if json_path.is_none() {
                eprintln!("--json needs a path");
                return ExitCode::from(2);
            }
        } else if a == "--csv-dir" {
            csv_dir = it.next();
            if csv_dir.is_none() {
                eprintln!("--csv-dir needs a directory");
                return ExitCode::from(2);
            }
        } else {
            ids.push(a);
        }
    }
    if ids.len() == 1 && ids[0] == "all" {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    let mut results: Vec<ExperimentResult> = Vec::new();
    for id in &ids {
        match run(id) {
            Some(r) => {
                println!("{r}");
                results.push(r);
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::from(2);
            }
        }
    }

    // Summary.
    let total_findings: usize = results.iter().map(|r| r.findings.len()).sum();
    let ok_findings: usize = results
        .iter()
        .flat_map(|r| &r.findings)
        .filter(|f| f.ok)
        .count();
    println!(
        "summary: {}/{} experiments fully in band, {ok_findings}/{total_findings} findings ok",
        results.iter().filter(|r| r.all_ok()).count(),
        results.len()
    );

    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let mut written = 0usize;
        for r in &results {
            if let Some(csv) = &r.csv {
                let path = format!("{dir}/{}.csv", r.id);
                if let Err(e) = std::fs::write(&path, csv) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                written += 1;
            }
        }
        println!("wrote {written} CSV file(s) to {dir}");
    }

    if let Some(path) = json_path {
        match std::fs::File::create(&path).and_then(|mut f| {
            let body = serde_json::to_string_pretty(&results).expect("results serialize");
            f.write_all(body.as_bytes())
        }) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if results.iter().all(|r| r.all_ok()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list            # show available experiment ids
//! repro fig14 table1    # run specific experiments
//! repro all             # run everything, print a summary
//! repro summary         # run everything, print one line per experiment
//! repro all --jobs 8 --json out.json --csv-dir csv/
//! ```
//!
//! Experiments fan out across `--jobs` worker threads (default: all
//! available cores; `PRUNEPERF_JOBS` overrides). Results are collected in
//! experiment order and every latency query is memoized, so stdout and the
//! JSON/CSV artifacts are byte-identical at any worker count; cache and
//! worker diagnostics go to stderr.

use std::io::Write as _;
use std::process::ExitCode;

use pruneperf_bench::{all_ids, run_many, ExperimentResult};
use pruneperf_profiler::{sweep, LatencyCache};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: repro <list | all | summary | id...> [--jobs <n>] [--json <path>] [--csv-dir <dir>]"
        );
        eprintln!("ids: {}", all_ids().join(" "));
        return ExitCode::from(2);
    }
    if args[0] == "list" {
        for id in all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut jobs_flag: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next();
            if json_path.is_none() {
                eprintln!("--json needs a path");
                return ExitCode::from(2);
            }
        } else if a == "--csv-dir" {
            csv_dir = it.next();
            if csv_dir.is_none() {
                eprintln!("--csv-dir needs a directory");
                return ExitCode::from(2);
            }
        } else if a == "--jobs" {
            jobs_flag = it.next().and_then(|v| v.parse().ok());
            if jobs_flag.is_none() {
                eprintln!("--jobs needs a positive integer");
                return ExitCode::from(2);
            }
        } else {
            ids.push(a);
        }
    }

    let jobs = sweep::resolve_jobs(jobs_flag);
    sweep::set_sweep_jobs(jobs);

    let summary_mode = ids.len() == 1 && ids[0] == "summary";
    if summary_mode || (ids.len() == 1 && ids[0] == "all") {
        ids = all_ids().iter().map(|s| s.to_string()).collect();
    }

    let outcomes = run_many(&ids, jobs);
    let mut results: Vec<ExperimentResult> = Vec::with_capacity(outcomes.len());
    for (id, outcome) in ids.iter().zip(outcomes) {
        match outcome {
            Some(r) => results.push(r),
            None => {
                eprintln!("unknown experiment id: {id}");
                return ExitCode::from(2);
            }
        }
    }

    if summary_mode {
        for r in &results {
            let ok = r.findings.iter().filter(|f| f.ok).count();
            println!(
                "{:<8} {:>2}/{:<2} findings ok  {}",
                r.id,
                ok,
                r.findings.len(),
                r.title
            );
        }
        report_engine_stats(jobs);
        return exit_code(&results);
    }

    for r in &results {
        println!("{r}");
    }

    // Summary.
    let total_findings: usize = results.iter().map(|r| r.findings.len()).sum();
    let ok_findings: usize = results
        .iter()
        .flat_map(|r| &r.findings)
        .filter(|f| f.ok)
        .count();
    println!(
        "summary: {}/{} experiments fully in band, {ok_findings}/{total_findings} findings ok",
        results.iter().filter(|r| r.all_ok()).count(),
        results.len()
    );
    report_engine_stats(jobs);

    if let Some(dir) = csv_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("failed to create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        let mut written = 0usize;
        for r in &results {
            if let Some(csv) = &r.csv {
                let path = format!("{dir}/{}.csv", r.id);
                if let Err(e) = std::fs::write(&path, csv) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                written += 1;
            }
        }
        println!("wrote {written} CSV file(s) to {dir}");
    }

    if let Some(path) = json_path {
        match std::fs::File::create(&path).and_then(|mut f| {
            let body = serde_json::to_string_pretty(&results).expect("results serialize");
            f.write_all(body.as_bytes())
        }) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    exit_code(&results)
}

/// Cache/worker diagnostics go to stderr so stdout stays byte-identical to
/// a sequential run (`repro ... > repro_output.txt` is a supported flow).
fn report_engine_stats(jobs: usize) {
    eprintln!("{} [{} worker(s)]", LatencyCache::global().stats(), jobs);
}

fn exit_code(results: &[ExperimentResult]) -> ExitCode {
    if results.iter().all(|r| r.all_ok()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

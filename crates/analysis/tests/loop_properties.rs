//! Property-based checks of the loop-context tracker: over randomized
//! nestings of `for`/`while`/`loop` bodies and non-loop `if` blocks, the
//! model's `loop_depth` reports exactly the true loop nesting at every
//! probe site, never a depth the site does not have — the invariant the
//! PF rules lean on when they call a site "per-iteration".

use proptest::prelude::*;
use pruneperf_analysis::model::model_file;

#[derive(Clone, Debug)]
enum Stmt {
    /// A probe line whose true loop depth the generator knows.
    Site,
    For(Vec<Stmt>),
    While(Vec<Stmt>),
    Loop(Vec<Stmt>),
    /// A non-loop block: braces and indentation without a new loop level.
    If(Vec<Stmt>),
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        return Just(Stmt::Site).boxed();
    }
    let body = || prop::collection::vec(stmt_strategy(depth - 1), 1..4);
    prop_oneof![
        body().prop_map(Stmt::For),
        body().prop_map(Stmt::While),
        body().prop_map(Stmt::Loop),
        body().prop_map(Stmt::If),
        Just(Stmt::Site),
    ]
    .boxed()
}

/// Rendering state: the source built so far, the current line number,
/// every probe and loop-header line with its true loop depth, and the
/// total number of loop nodes emitted.
#[derive(Default)]
struct Rendered {
    src: String,
    line: usize,
    sites: Vec<(usize, usize)>,
    headers: Vec<(usize, usize)>,
    loops: usize,
}

impl Rendered {
    fn push_line(&mut self, indent: usize, text: &str) {
        self.src.push_str(&"    ".repeat(indent));
        self.src.push_str(text);
        self.src.push('\n');
        self.line += 1;
    }
}

/// Renders the statements as Rust-shaped source into `r`.
fn render(stmts: &[Stmt], indent: usize, loop_depth: usize, r: &mut Rendered) {
    for s in stmts {
        match s {
            Stmt::Site => {
                r.push_line(indent, "acc += 1;");
                r.sites.push((r.line, loop_depth));
            }
            Stmt::For(body) | Stmt::While(body) | Stmt::Loop(body) => {
                let header = match s {
                    Stmt::For(_) => "for i in 0..n {",
                    Stmt::While(_) => "while acc < n {",
                    _ => "loop {",
                };
                r.push_line(indent, header);
                r.headers.push((r.line, loop_depth));
                r.loops += 1;
                render(body, indent + 1, loop_depth + 1, r);
                if matches!(s, Stmt::Loop(_)) {
                    r.push_line(indent + 1, "break;");
                }
                r.push_line(indent, "}");
            }
            Stmt::If(body) => {
                r.push_line(indent, "if acc > n {");
                render(body, indent + 1, loop_depth, r);
                r.push_line(indent, "}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `loop_depth` at every probe site equals the generator's true
    /// nesting; loop headers count as *outside* their own loop (the
    /// documented under-approximation); and the model sees exactly as
    /// many loops as the generator emitted.
    #[test]
    fn loop_depth_matches_true_nesting(stmts in prop::collection::vec(stmt_strategy(3), 1..5)) {
        let mut r = Rendered {
            src: String::from("fn probe(n: u32) -> u32 {\n    let mut acc = 0;\n"),
            line: 2,
            ..Rendered::default()
        };
        render(&stmts, 1, 0, &mut r);
        r.src.push_str("    acc\n}\n");

        let functions = model_file("prop.rs", &r.src);
        prop_assert_eq!(functions.len(), 1, "source:\n{}", r.src);
        let f = &functions[0];
        prop_assert_eq!(f.loops.len(), r.loops, "source:\n{}", r.src);
        for &(l, depth) in &r.sites {
            prop_assert_eq!(
                f.loop_depth(l), depth,
                "probe at line {} of:\n{}", l, r.src
            );
        }
        for &(l, depth) in &r.headers {
            prop_assert_eq!(
                f.loop_depth(l), depth,
                "header at line {} of:\n{}", l, r.src
            );
        }
    }
}

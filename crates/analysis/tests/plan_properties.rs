//! Property-based checks of the plan auditor: every plan a real backend
//! emits over randomized layer shapes passes the audit on every device,
//! and a corrupted plan is rejected.

use proptest::prelude::*;
use pruneperf_analysis::plan_audit::{audit_plan, audited_backends};
use pruneperf_analysis::rules;
use pruneperf_backends::DispatchPlan;
use pruneperf_gpusim::{Device, Job, JobChain, KernelDesc};
use pruneperf_models::ConvLayerSpec;

fn devices() -> [Device; 4] {
    [
        Device::mali_g72_hikey970(),
        Device::mali_t628_odroidxu4(),
        Device::jetson_tx2(),
        Device::jetson_nano(),
    ]
}

fn layer_strategy() -> impl Strategy<Value = ConvLayerSpec> {
    (
        prop_oneof![Just(1usize), Just(3usize), Just(5usize)], // kernel
        1usize..=2,                                            // stride
        7usize..=32,                                           // spatial
        1usize..=128,                                          // c_in
        1usize..=512,                                          // c_out
    )
        .prop_map(|(k, s, hw, ci, co)| {
            let pad = k / 2;
            ConvLayerSpec::new("Prop.audit", k, s, pad, ci, co, hw, hw)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The auditor accepts what the backends actually produce: no rule
    /// fires on any genuine plan, across all five backends and all four
    /// paper devices.
    #[test]
    fn every_real_plan_passes_the_audit(layer in layer_strategy()) {
        for device in &devices() {
            for backend in &audited_backends() {
                let plan = backend.plan(&layer, device);
                let findings = audit_plan(backend.name(), &plan, &layer, device);
                prop_assert!(
                    findings.is_empty(),
                    "{} on {} for {layer}: {findings:?}",
                    backend.name(),
                    device.name(),
                );
            }
        }
    }
}

/// A hand-corrupted split plan — a `gemm_mm` whose local y-extent does not
/// exactly tile its global — is rejected with PA003, on every device.
#[test]
fn corrupted_plan_is_rejected_everywhere() {
    let layer = ConvLayerSpec::new("Prop.corrupt", 1, 1, 0, 64, 92, 14, 14);
    let bad_main = KernelDesc::builder("gemm_mm")
        .global([49, 5, 1])
        .local([4, 4, 1])
        .arith_per_item(1)
        .footprint_bytes(64)
        .build();
    let rem = KernelDesc::builder("gemm_mm")
        .global([49, 3, 1])
        .local([4, 3, 1])
        .arith_per_item(1)
        .footprint_bytes(64)
        .build();
    for device in &devices() {
        let mut chain = JobChain::new();
        chain.push(Job::new(bad_main.clone()));
        chain.push(Job::with_own_submission(rem.clone()));
        let plan = DispatchPlan::new("ACL GEMM", "gemm", chain);
        let findings = audit_plan("ACL GEMM", &plan, &layer, device);
        assert!(
            findings.iter().any(|d| d.rule == rules::PA003),
            "on {}: {findings:?}",
            device.name()
        );
    }
}

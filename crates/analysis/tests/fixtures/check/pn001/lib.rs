//! Seeded PN001 violation: an unmarked `unwrap()` two calls deep on the
//! fallible path rooted at `try_cost`.

pub fn try_cost(v: &[u32]) -> Result<u32, ()> {
    Ok(mid(v))
}

fn mid(v: &[u32]) -> u32 {
    leaf(v)
}

fn leaf(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}

//! Seeded PF002 violation: per-iteration string formatting inside the
//! hot loop of a `cost` callee.

pub fn cost(rows: &[u32]) -> u32 {
    label_mass(rows)
}

fn label_mass(rows: &[u32]) -> u32 {
    let mut total = 0;
    for r in rows {
        let label = format!("row-{r}");
        total += label.chars().count() as u32;
    }
    total
}

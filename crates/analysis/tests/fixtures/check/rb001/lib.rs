//! Seeded RB001 violation: a struct field that receives pushes but has
//! no shrink site anywhere in its file.

pub struct Journal {
    entries: Vec<u32>,
}

impl Journal {
    pub fn record(&mut self, x: u32) {
        self.entries.push(x);
    }

    pub fn total(&self) -> u32 {
        self.entries.iter().sum()
    }
}

//! Seeded PF003 violation: a non-handle value cloned on every iteration
//! of a hot loop.

pub fn cost(plans: &[Plan]) -> usize {
    let mut n = 0;
    for p in plans {
        let copy = p.clone();
        n += weigh(copy);
    }
    n
}

fn weigh(p: Plan) -> usize {
    p.layers
}

pub struct Plan {
    pub layers: usize,
}

//! A tree that exercises locks, fan-out and the fallible surface while
//! violating no CC/PN rule: consistent lock order, poison recovery,
//! guards dropped before calls, and error returns instead of panics.

use std::sync::{Mutex, PoisonError};

pub struct Clean {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Clean {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn also_a_then_b(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga * *gb
    }

    pub fn snapshot_then_work(&self) -> u32 {
        let snapshot = {
            let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
            *ga
        };
        expensive(snapshot)
    }
}

fn expensive(n: u32) -> u32 {
    n.saturating_mul(3)
}

pub fn try_cost(v: &[u32]) -> Result<u32, ()> {
    let first = v.first().copied().ok_or(())?;
    let denom = v.len() as u32;
    Ok(first.checked_div(denom).unwrap_or(0))
}

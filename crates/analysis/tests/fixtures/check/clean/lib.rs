//! A tree that exercises locks, fan-out, the fallible surface, hot loops
//! and long-lived state while violating no CC/PN/PF/RB rule: consistent
//! lock order, poison recovery, guards dropped before calls, error
//! returns instead of panics, pre-sized hot-loop collections, a bounded
//! cache with an eviction path, and fuel-bounded recursion.

use std::sync::{Mutex, PoisonError};

pub struct Clean {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Clean {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn also_a_then_b(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga * *gb
    }

    pub fn snapshot_then_work(&self) -> u32 {
        let snapshot = {
            let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
            *ga
        };
        expensive(snapshot)
    }
}

fn expensive(n: u32) -> u32 {
    n.saturating_mul(3)
}

pub fn try_cost(v: &[u32]) -> Result<u32, ()> {
    let first = v.first().copied().ok_or(())?;
    let denom = v.len() as u32;
    Ok(first.checked_div(denom).unwrap_or(0))
}

pub fn cost(rows: &[u32]) -> u32 {
    let mut doubled = Vec::with_capacity(rows.len());
    for r in rows {
        doubled.push(r * 2);
    }
    doubled.iter().sum()
}

pub struct BoundedCache {
    rows: Vec<u64>,
    max_entries: usize,
}

impl BoundedCache {
    pub fn put(&mut self, v: u64) {
        if self.rows.len() == self.max_entries {
            self.rows.pop();
        }
        self.rows.push(v);
    }
}

pub fn try_deep_cost(v: &[u32]) -> Result<u32, ()> {
    descend(v, 64)
}

fn descend(v: &[u32], fuel: u32) -> Result<u32, ()> {
    if fuel == 0 {
        return Err(());
    }
    match v.split_first() {
        None => Ok(0),
        Some((first, rest)) => Ok(first + descend(rest, fuel - 1)?),
    }
}

//! Seeded CC006 violation: the guard is bound to `_` and drops before
//! the next statement runs — an empty critical section.

use std::sync::{Mutex, PoisonError};

pub struct Flusher {
    pending: Mutex<Vec<u32>>,
}

impl Flusher {
    pub fn bad_barrier(&self) {
        let _ = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
    }
}

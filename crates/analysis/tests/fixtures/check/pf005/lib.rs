//! Seeded PF005 violation: a lock re-acquired on every iteration of a
//! hot loop when the guard could be hoisted above it.

use std::sync::{Mutex, PoisonError};

pub struct Meter {
    stats: Mutex<u32>,
}

impl Meter {
    pub fn cost(&self, rows: &[u32]) -> u32 {
        let mut total = 0;
        for r in rows {
            let g = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
            total += *g + r;
        }
        total
    }
}

//! Seeded CC003 violation: a guard is held across a parallel fan-out
//! boundary, so every worker blocks on (or poisons) the held lock.

use std::sync::{Mutex, PoisonError};

pub struct Batch {
    state: Mutex<Vec<u32>>,
}

impl Batch {
    pub fn bad_fanout(&self, items: &[u32]) -> Vec<u32> {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let base = g.len() as u32;
        ordered_parallel_map(items.len(), 4, |i| items[i] + base)
    }
}

fn ordered_parallel_map(n: usize, _jobs: usize, f: impl Fn(usize) -> u32) -> Vec<u32> {
    (0..n).map(f).collect()
}

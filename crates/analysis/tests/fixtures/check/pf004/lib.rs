//! Seeded PF004 violation: a hot loop growing a local collection whose
//! binding was neither `with_capacity` nor `reserve`d.

pub fn cost(rows: &[u32]) -> usize {
    let mut doubled = Vec::new();
    for r in rows {
        doubled.push(r * 2);
    }
    doubled.iter().count()
}

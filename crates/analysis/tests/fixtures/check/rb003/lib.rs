//! Seeded RB003 violation: a cache-like struct with no capacity policy —
//! no eviction method, no shrink site, no capacity-limit vocabulary.

pub struct PlanCache {
    rows: Vec<u64>,
}

pub fn lookup(cache: &PlanCache, i: usize) -> Option<u64> {
    cache.rows.get(i).copied()
}

//! Seeded PF001 violation: a fresh heap allocation on every iteration of
//! a loop that is hot because `cost` reaches it.

pub fn cost(rows: &[u32]) -> u32 {
    accumulate(rows)
}

fn accumulate(rows: &[u32]) -> u32 {
    let mut total = 0;
    for r in rows {
        let scratch: Vec<u32> = Vec::new();
        total += r + scratch.capacity() as u32;
    }
    total
}

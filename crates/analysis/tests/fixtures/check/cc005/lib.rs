//! Seeded CC005 violation: an `Arc<Mutex<_>>` cloned into a spawned
//! thread with no `// lock-order:` doc stating the acquisition order.

use std::sync::{Arc, Mutex, PoisonError};

pub fn share_counter() -> Arc<Mutex<u64>> {
    let shared: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let clone = shared.clone();
    std::thread::spawn(move || {
        *clone.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    });
    shared
}

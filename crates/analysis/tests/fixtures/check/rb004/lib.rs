//! Seeded RB004 violation: self-recursion on the fallible surface with
//! no depth/fuel-style bound in scope.

pub fn try_cost(v: &[u32]) -> Result<u32, ()> {
    descend(v)
}

fn descend(v: &[u32]) -> Result<u32, ()> {
    match v.split_first() {
        None => Ok(0),
        Some((first, rest)) => Ok(first + descend(rest)?),
    }
}

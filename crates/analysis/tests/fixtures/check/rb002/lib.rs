//! Seeded RB002 violation: an unbounded channel — producers never block,
//! so a slow consumer grows the queue without limit.

use std::sync::mpsc;

pub fn wire() -> (mpsc::Sender<u32>, mpsc::Receiver<u32>) {
    mpsc::channel()
}

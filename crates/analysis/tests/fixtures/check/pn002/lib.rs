//! Seeded PN002 violation: a release-mode `assert!` inside the fallible
//! path rooted at `try_run`.

pub fn try_run(n: usize) -> Result<usize, ()> {
    Ok(scale(n))
}

fn scale(n: usize) -> usize {
    assert!(n > 0, "scale factor must be positive");
    n * 2
}

//! Seeded CC007 violation: the same lock is re-acquired while its own
//! guard is still live — a guaranteed self-deadlock with `std::sync`.

use std::sync::{Mutex, PoisonError};

pub struct Reentrant {
    state: Mutex<u32>,
}

impl Reentrant {
    pub fn bad_reentry(&self) -> u32 {
        let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let h = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *g + *h
    }
}

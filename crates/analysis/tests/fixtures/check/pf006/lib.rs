//! Seeded PF006 violation: a hot loop re-simulating through an engine
//! entry point instead of assembling from the memoized layers.

pub fn measure_batch(chains: &[Chain]) -> Vec<u64> {
    let mut out = Vec::with_capacity(chains.len());
    for c in chains {
        out.push(run_chain(c));
    }
    out
}

fn run_chain(c: &Chain) -> u64 {
    c.jobs as u64
}

pub struct Chain {
    pub jobs: usize,
}

//! Seeded CC001 violation: two functions acquire the same pair of locks
//! in opposite orders, closing a cycle in the lock-order graph.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        *ga + *gb
    }

    pub fn b_then_a(&self) -> u32 {
        let gb = self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let ga = self.a.lock().unwrap_or_else(PoisonError::into_inner);
        *gb - *ga
    }
}

//! Seeded CC004 violation: a lock acquisition consumed by a bare
//! `unwrap()` instead of the poison-recovery idiom.

use std::sync::Mutex;

pub struct Counter {
    count: Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) -> u64 {
        let mut g = self.count.lock().unwrap();
        *g += 1;
        *g
    }
}

//! Seeded PN003 violations: an unchecked slice index and a division by a
//! `.len()` divisor, both on the fallible path rooted at `try_measure`.

pub fn try_measure(v: &[u32], n: usize) -> Result<u32, ()> {
    let first = v[n + 1];
    let ratio = (n / v.len()) as u32;
    Ok(first + ratio)
}

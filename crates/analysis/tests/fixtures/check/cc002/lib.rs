//! Seeded CC002 violation: a guard is held across a call into another
//! function that takes a different lock.

use std::sync::{Mutex, PoisonError};

pub struct Holder {
    inner: Mutex<u32>,
    other: Mutex<u32>,
}

fn drain(other: &Mutex<u32>) -> u32 {
    *other.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Holder {
    pub fn bad(&self) -> u32 {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let drained = drain(&self.other);
        *g + drained
    }
}

//! A clean fixture crate root: every source rule is satisfied.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Sums values in key order, so the float total is reproducible.
pub fn ordered_sum(per_ms: &HashMap<String, f64>) -> f64 {
    let mut entries: Vec<(&String, f64)> = per_ms.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort();
    entries.iter().map(|(_, v)| v).sum()
}

/// Returns the value or a default — no panic path.
pub fn safe(v: Option<usize>) -> usize {
    v.unwrap_or(0)
}

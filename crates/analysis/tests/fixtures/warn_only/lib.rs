//! A fixture crate root whose only findings are warnings (SL005): clean
//! under the default lint, failing under `--deny-warnings`.

#![forbid(unsafe_code)]

/// Panics on None — a warning-severity robustness finding.
pub fn risky(v: Option<usize>) -> usize {
    v.unwrap()
}

// A deliberately dirty fixture crate root. The missing forbid-unsafe
// attribute seeds SL004; the items below seed one finding per source
// rule. These files are never compiled — the lint reads them as text.

use std::collections::HashMap;
use std::time::Instant;

pub fn timing_leak() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

/// Sums values in hash order (SL003) — float sums are order-sensitive.
pub fn hash_order_sum(per_ms: &HashMap<String, f64>) -> f64 {
    per_ms.values().sum()
}

/// Draws from an ad-hoc RNG (SL002).
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0.0..1.0)
}

/// Panics on None (SL005).
pub fn risky(v: Option<usize>) -> usize {
    v.unwrap()
}

/// Compares a float for exact equality (SL007).
pub fn budget_spent(remaining: f64) -> bool {
    remaining == 0.0
}

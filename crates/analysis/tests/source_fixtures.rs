//! The source lint over the checked-in fixture trees: the dirty tree
//! trips every source rule, the clean tree trips none, and the rendered
//! report is independent of the worker count.

use std::path::PathBuf;

use pruneperf_analysis::{lint_sources, rules, Severity};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn dirty_fixture_trips_every_source_rule() {
    let report = lint_sources(&fixture("dirty"), 1).expect("fixture tree readable");
    for rule in [
        rules::SL001,
        rules::SL002,
        rules::SL003,
        rules::SL004,
        rules::SL005,
        rules::SL006,
        rules::SL007,
    ] {
        assert!(
            report.diagnostics().iter().any(|d| d.rule == rule),
            "expected a {rule} finding:\n{}",
            report.render_human()
        );
    }
    assert!(report.errors() > 0);
    assert_eq!(report.plans_audited, 0);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn clean_fixture_is_clean() {
    let report = lint_sources(&fixture("clean"), 1).expect("fixture tree readable");
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn warn_only_fixture_has_warnings_but_no_errors() {
    let report = lint_sources(&fixture("warn_only"), 1).expect("fixture tree readable");
    assert_eq!(report.errors(), 0, "{}", report.render_human());
    assert!(report.warnings() > 0);
    assert!(report
        .diagnostics()
        .iter()
        .all(|d| d.severity == Severity::Warning));
}

#[test]
fn fixture_reports_are_identical_across_worker_counts() {
    let sequential = lint_sources(&fixture("dirty"), 1).expect("fixture tree readable");
    let parallel = lint_sources(&fixture("dirty"), 8).expect("fixture tree readable");
    assert_eq!(sequential.render_json(), parallel.render_json());
    assert_eq!(sequential.render_human(), parallel.render_human());
}

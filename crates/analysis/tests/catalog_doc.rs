//! Keeps `docs/RULE_CATALOG.md` and the `CATALOG` table in
//! `crates/analysis/src/rules.rs` in sync, both directions: every rule
//! id has a doc entry, every doc entry names a live rule, and the
//! documented severity matches the table.

use std::collections::BTreeMap;
use std::path::PathBuf;

use pruneperf_analysis::{rules, Severity};

fn catalog_doc() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/RULE_CATALOG.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `### XX00N — title` entries, with the `**Severity:**` value that
/// follows each (the doc format every family section uses).
fn documented_rules(doc: &str) -> BTreeMap<String, Option<Severity>> {
    let mut out = BTreeMap::new();
    let mut current: Option<String> = None;
    for line in doc.lines() {
        if let Some(rest) = line.strip_prefix("### ") {
            let id: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
            current = Some(id.clone());
            out.insert(id, None);
        } else if let Some(id) = &current {
            if let Some(idx) = line.find("**Severity:**") {
                let after = &line[idx + "**Severity:**".len()..];
                let sev = if after.trim_start().starts_with("Error") {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                out.insert(id.clone(), Some(sev));
                current = None; // one severity per entry
            }
        }
    }
    out
}

#[test]
fn every_catalog_rule_is_documented_with_matching_severity() {
    let doc = catalog_doc();
    let documented = documented_rules(&doc);
    for info in rules::CATALOG {
        let entry = documented.get(info.id).unwrap_or_else(|| {
            panic!(
                "{} has no `### {} — …` entry in RULE_CATALOG.md",
                info.id, info.id
            )
        });
        assert_eq!(
            *entry,
            Some(info.severity),
            "{}: documented severity disagrees with rules::CATALOG",
            info.id
        );
    }
}

#[test]
fn every_documented_rule_exists_in_the_catalog() {
    let doc = catalog_doc();
    for id in documented_rules(&doc).keys() {
        assert!(
            rules::rule_info(id).is_some(),
            "RULE_CATALOG.md documents `{id}`, which rules::CATALOG does not define"
        );
    }
}

#[test]
fn every_family_has_a_doc_section() {
    let doc = catalog_doc();
    for (prefix, _) in rules::FAMILIES {
        assert!(
            doc.lines()
                .any(|l| l.starts_with("## ") && l[3..].starts_with(prefix)),
            "RULE_CATALOG.md has no `## {prefix} — …` section"
        );
    }
}

//! The concurrency/panic-path/hot-path/resource checker over the seeded
//! fixture trees: one deliberately-bad tree per CC/PN/PF/RB rule, a clean
//! tree that exercises the same shapes without violating anything, and a
//! byte-identity guarantee across worker counts.

use std::path::PathBuf;

use pruneperf_analysis::{rules, run_check};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/check")
        .join(name)
}

#[test]
fn each_seeded_fixture_trips_its_rule() {
    for (dir, rule) in [
        ("cc001", rules::CC001),
        ("cc002", rules::CC002),
        ("cc003", rules::CC003),
        ("cc004", rules::CC004),
        ("cc005", rules::CC005),
        ("cc006", rules::CC006),
        ("cc007", rules::CC007),
        ("pn001", rules::PN001),
        ("pn002", rules::PN002),
        ("pn003", rules::PN003),
        ("pf001", rules::PF001),
        ("pf002", rules::PF002),
        ("pf003", rules::PF003),
        ("pf004", rules::PF004),
        ("pf005", rules::PF005),
        ("pf006", rules::PF006),
        ("rb001", rules::RB001),
        ("rb002", rules::RB002),
        ("rb003", rules::RB003),
        ("rb004", rules::RB004),
    ] {
        let report = run_check(&fixture(dir), 1).expect("fixture tree readable");
        assert!(
            report.diagnostics().iter().any(|d| d.rule == rule),
            "expected a {rule} finding in fixtures/check/{dir}:\n{}",
            report.render_human()
        );
    }
}

#[test]
fn seeded_fixtures_stay_on_target() {
    // Each bad tree seeds exactly one hazard; a fixture that also trips
    // unrelated rules would stop isolating the rule it names.
    for dir in [
        "cc001", "cc002", "cc003", "cc004", "cc005", "cc006", "cc007", "pn001", "pn002", "pf001",
        "pf002", "pf003", "pf004", "pf005", "pf006", "rb001", "rb002", "rb003", "rb004",
    ] {
        let report = run_check(&fixture(dir), 1).expect("fixture tree readable");
        let rules_hit: Vec<&str> = report.diagnostics().iter().map(|d| d.rule).collect();
        assert_eq!(
            rules_hit,
            vec![dir.to_uppercase()],
            "fixtures/check/{dir} trips more than its own rule:\n{}",
            report.render_human()
        );
    }
    // pn003 seeds two sites (index and division) under the same rule.
    let report = run_check(&fixture("pn003"), 1).expect("fixture tree readable");
    let rules_hit: Vec<&str> = report.diagnostics().iter().map(|d| d.rule).collect();
    assert_eq!(
        rules_hit,
        vec![rules::PN003, rules::PN003],
        "{}",
        report.render_human()
    );
}

#[test]
fn pf_findings_carry_hot_root_chains() {
    // Every PF diagnostic explains *why* the function is hot: the
    // shortest root→site call chain, like the PN rules.
    for dir in ["pf001", "pf002", "pf003", "pf004", "pf005", "pf006"] {
        let report = run_check(&fixture(dir), 1).expect("fixture tree readable");
        for d in report.diagnostics() {
            assert!(
                d.message.contains("hot from `") && d.message.contains("via"),
                "fixtures/check/{dir}: PF finding without a hot chain:\n{}",
                report.render_human()
            );
        }
    }
}

#[test]
fn clean_fixture_is_clean() {
    let report = run_check(&fixture("clean"), 1).expect("fixture tree readable");
    assert!(report.is_clean(), "{}", report.render_human());
    assert!(report.functions_modeled > 0);
}

#[test]
fn fixture_reports_are_identical_across_worker_counts() {
    for dir in ["cc001", "pn001", "pf001", "rb001", "clean"] {
        let sequential = run_check(&fixture(dir), 1).expect("fixture tree readable");
        let parallel = run_check(&fixture(dir), 8).expect("fixture tree readable");
        assert_eq!(sequential.render_json(), parallel.render_json(), "{dir}");
        assert_eq!(sequential.render_human(), parallel.render_human(), "{dir}");
    }
}

#[test]
fn workspace_report_is_identical_across_worker_counts() {
    // The acceptance gate for `pruneperf check --json`: byte-identical
    // output whatever the worker count, on the real tree.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolvable");
    let sequential = run_check(&root, 1).expect("workspace readable");
    let parallel = run_check(&root, 8).expect("workspace readable");
    assert_eq!(sequential.render_json(), parallel.render_json());
}

//! Layer 2 — a dependency-free determinism/robustness lint over the
//! repository's Rust sources (rules `SL001`–`SL007`, see [`crate::rules`]).
//!
//! The scanner is deliberately token-level, not a full parser: every rule
//! here is a *pattern with an escape hatch*, tuned to this codebase's
//! conventions. Before matching, each file is stripped of comments and
//! string/char literals (preserving line structure), so rule patterns never
//! fire inside documentation or message text — including this module's own
//! pattern literals when the lint scans itself.
//!
//! A finding is suppressed by a marker comment on the same line or the line
//! directly above:
//!
//! ```text
//! // lint: allow(unwrap) — queue is seeded above, pop cannot fail
//! ```
//!
//! Recognized keys: `wall-clock` (SL001), `rng` (SL002), `map-order`
//! (SL003), `unwrap` (SL005), `docs` (SL006), `float-eq` (SL007). `SL004`
//! has no marker — a crate root either forbids unsafe code or it does not.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pruneperf_profiler::sweep;

use crate::diag::{Diagnostic, Report, Severity};
use crate::rules;

/// Paths (relative, `/`-separated prefixes) where SL001/SL002 apply in repo
/// mode: the simulation and measurement pipeline, where wall-clock or
/// entropy would silently break run-to-run reproducibility.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/gpusim/",
    "crates/profiler/",
    "crates/backends/",
    "crates/core/",
];

/// Paths where SL005 does not apply: the fail-fast experiment harness,
/// where a panic on a malformed experiment is the desired behavior.
const UNWRAP_ALLOWLIST: &[&str] = &["crates/bench/src/experiments/", "crates/bench/src/bin/"];

/// Paths where SL006 (public-item docs) applies in repo mode.
const DOCS_SCOPE: &[&str] = &["crates/gpusim/src/", "crates/backends/src/"];

/// Lints every first-party source file under `root`.
///
/// Two layouts are understood. A *workspace* root (contains `crates/`)
/// scans `src/**/*.rs` plus `crates/*/src/**/*.rs` with the path scopes
/// above. Any other directory is treated as a *fixture* tree: every `.rs`
/// file under it is scanned with all rules in scope (files named `lib.rs`
/// are treated as crate roots), which is how the lint's own tests seed
/// violations without planting them in the real tree.
///
/// Files are read up front in path order; scanning fans out over `jobs`
/// workers with input-ordered reduction, so the report is byte-identical
/// for any worker count.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn lint_sources(root: &Path, jobs: usize) -> io::Result<Report> {
    let workspace = root.join("crates").is_dir();
    let mut files: Vec<PathBuf> = Vec::new();
    if workspace {
        collect_rs(&root.join("src"), &mut files)?;
        let mut crate_dirs: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(root.join("crates"))? {
            let p = entry?.path();
            if p.is_dir() {
                crate_dirs.push(p);
            }
        }
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    } else {
        collect_rs(root, &mut files)?;
    }

    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, fs::read_to_string(path)?));
    }
    inputs.sort_by(|a, b| a.0.cmp(&b.0));

    // lint: allow(hot-root) — build-time lint pass over files, not a serving path
    let per_file = sweep::ordered_parallel_map(&inputs, jobs, |(rel, content)| {
        scan_file(rel, content, workspace)
    });
    let mut report = Report::new(per_file.into_iter().flatten().collect());
    report.files_scanned = inputs.len();
    Ok(report)
}

/// Recursively collects `.rs` files (sorted per directory; missing
/// directories are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

fn is_crate_root(rel: &str, workspace: bool) -> bool {
    if workspace {
        rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"))
    } else {
        rel == "lib.rs" || rel.ends_with("/lib.rs")
    }
}

/// Scans one file. `raw` keeps comments (markers, doc comments); the
/// stripped twin drives every pattern match.
fn scan_file(rel: &str, raw: &str, workspace: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let stripped = strip_code(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();

    // Everything from a column-0 `#[cfg(test)]` onward is test code.
    let test_start = raw_lines
        .iter()
        .position(|l| l.trim_end() == "#[cfg(test)]" && !l.starts_with(char::is_whitespace))
        .unwrap_or(raw_lines.len());

    // SL004: crate roots must forbid unsafe code.
    if is_crate_root(rel, workspace) && !raw.contains("#![forbid(unsafe_code)]") {
        out.push(
            Diagnostic::new(
                rules::SL004,
                Severity::Error,
                format!("{rel}:1"),
                "crate root does not carry #![forbid(unsafe_code)]",
            )
            .with_hint("add the attribute next to the crate docs".to_string()),
        );
    }

    let determinism = !workspace || in_scope(rel, DETERMINISM_SCOPE);
    let docs = !workspace || in_scope(rel, DOCS_SCOPE);
    let unwrap_allowed = workspace && in_scope(rel, UNWRAP_ALLOWLIST);

    let allowed = |i: usize, key: &str| -> bool {
        marker_allows(raw_lines.get(i).copied().unwrap_or(""), key)
            || (i > 0 && marker_allows(raw_lines[i - 1], key))
    };

    let maps = tracked_map_names(&code_lines[..test_start.min(code_lines.len())]);

    for (i, line) in code_lines.iter().enumerate().take(test_start) {
        let locate = || format!("{rel}:{}", i + 1);
        if determinism {
            if (line.contains("Instant::now(") || line.contains("SystemTime::now("))
                && !allowed(i, "wall-clock")
            {
                out.push(
                    Diagnostic::new(
                        rules::SL001,
                        Severity::Error,
                        locate(),
                        "wall-clock read in a simulation/profiling path",
                    )
                    .with_hint("derive time from the deterministic engine".to_string()),
                );
            }
            if ["thread_rng(", "from_entropy(", "rand::random(", "OsRng"]
                .iter()
                .any(|p| line.contains(p))
                && !allowed(i, "rng")
            {
                out.push(
                    Diagnostic::new(
                        rules::SL002,
                        Severity::Error,
                        locate(),
                        "ad-hoc RNG in a simulation/profiling path",
                    )
                    .with_hint("thread an explicitly seeded generator through instead".to_string()),
                );
            }
        }
        if !unwrap_allowed
            && (line.contains(".unwrap()") || line.contains(".expect("))
            && !allowed(i, "unwrap")
        {
            out.push(
                Diagnostic::new(
                    rules::SL005,
                    Severity::Warning,
                    locate(),
                    "unwrap()/expect() in non-test library code",
                )
                .with_hint(
                    "return a typed error, or mark a provably infallible site with \
                     `// lint: allow(unwrap) — why`"
                        .to_string(),
                ),
            );
        }
        if let Some(msg) = float_eq_finding(line) {
            if !allowed(i, "float-eq") {
                out.push(
                    Diagnostic::new(rules::SL007, Severity::Error, locate(), msg).with_hint(
                        "compare against a tolerance (or bit patterns via to_bits); mark a \
                         deliberate exact-value guard with `// lint: allow(float-eq) — why`"
                            .to_string(),
                    ),
                );
            }
        }
        if let Some(msg) = map_order_finding(&code_lines, i, &maps) {
            if !allowed(i, "map-order") {
                out.push(
                    Diagnostic::new(rules::SL003, Severity::Error, locate(), msg).with_hint(
                        "iterate a deterministically ordered view (catalog order or a \
                         sorted Vec) instead"
                            .to_string(),
                    ),
                );
            }
        }
        if docs {
            if let Some(item) = undocumented_pub_item(&raw_lines, i) {
                if !allowed(i, "docs") {
                    out.push(
                        Diagnostic::new(
                            rules::SL006,
                            Severity::Warning,
                            locate(),
                            format!("public {item} has no doc comment"),
                        )
                        .with_hint("add a /// summary line".to_string()),
                    );
                }
            }
        }
    }
    out
}

/// `// lint: allow(key)` on this line?
pub(crate) fn marker_allows(raw_line: &str, key: &str) -> bool {
    let Some(idx) = raw_line.find("lint: allow(") else {
        return false;
    };
    if !raw_line[..idx].contains("//") {
        return false;
    }
    raw_line[idx + "lint: allow(".len()..]
        .split(')')
        .next()
        .is_some_and(|k| k.trim() == key)
}

/// Names bound to `HashMap`/`HashSet` values in the (stripped) file:
/// `let NAME: HashMap<…>`, `NAME: &HashMap<…>` params/fields and
/// `let NAME = HashMap::new()` forms.
fn tracked_map_names(code_lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in code_lines {
        for pat in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
            for (idx, _) in line.match_indices(pat) {
                let mut prefix = line[..idx].trim_end();
                let name = loop {
                    while prefix.ends_with([':', '=', '&']) {
                        prefix = prefix[..prefix.len() - 1].trim_end();
                    }
                    let name: String = prefix
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .collect();
                    // `&'a HashMap<…>`: `a` is a lifetime, not a binding —
                    // skip it and keep looking left for the real name.
                    let lead = prefix[..prefix.len() - name.len()].chars().next_back();
                    if lead == Some('\'') {
                        prefix = prefix[..prefix.len() - name.len() - 1].trim_end();
                        continue;
                    }
                    break name;
                };
                if !name.is_empty()
                    && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !matches!(name.as_str(), "let" | "mut" | "pub" | "fn" | "collections")
                    && !names.contains(&name)
                {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// SL003 at line `i`: iteration over a tracked map that feeds order-
/// sensitive work. Two shapes: a `for` loop directly over the map (the
/// body's arithmetic or tie-breaking inherits hash order), and a
/// `.values()`/`.keys()` stream folded into a float-style accumulation
/// within the next lines.
fn map_order_finding(code_lines: &[&str], i: usize, maps: &[String]) -> Option<String> {
    let line = code_lines[i];
    for name in maps {
        if line.contains("for ")
            && [
                format!("in &{name}"),
                format!("in {name}"),
                format!("in {name}.iter()"),
                format!("in {name}.values()"),
                format!("in {name}.keys()"),
            ]
            .iter()
            .any(|p| contains_bounded(line, p))
        {
            return Some(format!(
                "loop iterates `{name}` in hash order — body outcomes depend on it"
            ));
        }
        if contains_bounded(line, &format!("{name}.values()"))
            || contains_bounded(line, &format!("{name}.keys()"))
        {
            let window = &code_lines[i..code_lines.len().min(i + 3)];
            let sinks = [".sum()", ".sum::<", ".fold(", "+="];
            let has_sink = window.iter().any(|l| sinks.iter().any(|s| l.contains(s)));
            let sorted = window.iter().any(|l| l.contains(".sort"));
            if has_sink && !sorted {
                return Some(format!(
                    "`{name}` iterated in hash order into an accumulation — float sums \
                     are order-sensitive"
                ));
            }
        }
    }
    None
}

/// SL007 on one (stripped) line: a direct `==`/`!=` where either operand
/// is a floating-point literal — the classic accidental exact-equality
/// test. Token-level like every rule here: it looks at the literal next to
/// the operator, so typed non-literal comparisons (`a == b` with float
/// variables) are left to clippy, and integer comparisons never match.
fn float_eq_finding(line: &str) -> Option<String> {
    let b: Vec<char> = line.chars().collect();
    let ident = |c: char| c.is_alphanumeric() || matches!(c, '.' | '_');
    for idx in 0..b.len().saturating_sub(1) {
        let op = match (b[idx], b[idx + 1]) {
            ('=', '=') => "==",
            ('!', '=') => "!=",
            _ => continue,
        };
        // Reject `<=`, `>=`, `=>` and `==`'s own second half.
        let before = idx.checked_sub(1).map(|j| b[j]);
        let after = b.get(idx + 2).copied();
        if matches!(before, Some('<' | '>' | '=' | '!')) || matches!(after, Some('=' | '>')) {
            continue;
        }
        let left: String = b[..idx]
            .iter()
            .rev()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| ident(**c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let right: String = b[idx + 2..]
            .iter()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| ident(**c))
            .collect();
        for tok in [left, right] {
            if is_float_literal(&tok) {
                return Some(format!(
                    "direct float {op} against `{tok}` — exact equality is \
                     representation-fragile"
                ));
            }
        }
    }
    None
}

/// `0.0`, `1.25`, `3.`, `1_000.5`, `2f64`, `0.5f32` — but not `0`
/// (integer), `x.y` (field access) or method-call results (a trailing `)`
/// next to the operator yields an empty token).
fn is_float_literal(tok: &str) -> bool {
    let tok = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .map(|t| (t, true))
        .unwrap_or((tok, false));
    let (body, typed) = tok;
    if body.is_empty() || !body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    if !body
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_'))
    {
        return false;
    }
    typed || body.contains('.')
}

/// True when `line` contains `pat` with identifier boundaries on both
/// sides, so a tracked name `a` never matches inside `analysis`.
fn contains_bounded(line: &str, pat: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    line.match_indices(pat).any(|(idx, m)| {
        let before = line[..idx].chars().next_back();
        let after = line[idx + m.len()..].chars().next();
        before.is_none_or(|c| !ident(c)) && after.is_none_or(|c| !ident(c))
    })
}

/// SL006 at line `i`: an undocumented `pub` item in the raw text. Returns
/// the item kind when the lines above (skipping attributes) carry neither
/// `///` nor `#[doc`.
fn undocumented_pub_item(raw_lines: &[&str], i: usize) -> Option<&'static str> {
    let t = raw_lines[i].trim_start();
    let kind = [
        ("pub fn ", "fn"),
        ("pub struct ", "struct"),
        ("pub enum ", "enum"),
        ("pub trait ", "trait"),
        ("pub const ", "const"),
        ("pub static ", "static"),
        ("pub type ", "type"),
        ("pub mod ", "mod"),
    ]
    .iter()
    .find(|(p, _)| t.starts_with(p))
    .map(|&(_, k)| k)?;
    let mut j = i;
    while j > 0 {
        let above = raw_lines[j - 1].trim();
        if above.starts_with("#[") && !above.starts_with("#[doc") {
            j -= 1; // skip non-doc attributes
        } else {
            break;
        }
    }
    if j == 0 {
        return Some(kind);
    }
    let above = raw_lines[j - 1].trim();
    if above.starts_with("///") || above.starts_with("#[doc") || above.ends_with("*/") {
        None
    } else {
        Some(kind)
    }
}

/// Blanks comments and string/char literal contents, preserving the line
/// structure, so pattern matching never fires inside text.
pub(crate) fn strip_code(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and byte) string literals: [b] r #* " … " #*
        if c == 'r' || c == 'b' {
            let prev_ident = i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_');
            if !prev_ident {
                let mut j = i;
                if b[j] == 'b' && j + 1 < n && (b[j + 1] == 'r' || b[j + 1] == '"') {
                    j += 1;
                }
                if j < n && b[j] == 'r' {
                    let mut k = j + 1;
                    let mut hashes = 0;
                    while k < n && b[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && b[k] == '"' {
                        // Blank through the matching closing quote+hashes.
                        for &c in &b[i..=k] {
                            out.push(blank(c));
                        }
                        i = k + 1;
                        while i < n {
                            if b[i] == '"'
                                && b[i + 1..]
                                    .iter()
                                    .take(hashes)
                                    .filter(|&&h| h == '#')
                                    .count()
                                    == hashes
                            {
                                for &c in &b[i..(i + 1 + hashes).min(n)] {
                                    out.push(blank(c));
                                }
                                i += 1 + hashes;
                                break;
                            }
                            out.push(blank(b[i]));
                            i += 1;
                        }
                        continue;
                    }
                } else if j < n && b[j] == '"' && j > i {
                    // b"…" byte string: fall through to the string case at j.
                    out.push(' ');
                    i = j;
                    // handled by the '"' branch below on the next iteration
                    continue;
                }
            }
        }
        // Plain string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            if i < n {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && (i + 2 >= n || b[i + 2] != '\'');
            if lifetime {
                out.push('\'');
                i += 1;
                continue;
            }
            out.push(' ');
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' && i + 1 < n {
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            if i < n {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_comments_and_literals() {
        let src = "let x = \"Instant::now()\"; // Instant::now()\nlet y = 'a'; let l: &'static str = s;\n/* multi\nline */ let z = 1;\n";
        let s = strip_code(src);
        assert!(!s.contains("Instant"), "{s}");
        assert!(s.contains("let x ="));
        assert!(s.contains("let z = 1;"));
        assert!(s.contains("&'static str"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let src = "let p = r#\"thread_rng()\"#;\nlet q = r\"SystemTime::now()\";\nnext();\n";
        let s = strip_code(src);
        assert!(!s.contains("thread_rng"), "{s}");
        assert!(!s.contains("SystemTime"), "{s}");
        assert!(s.contains("next();"));
    }

    #[test]
    fn markers_suppress_by_key() {
        assert!(marker_allows(
            "x.unwrap(); // lint: allow(unwrap) — seeded above",
            "unwrap"
        ));
        assert!(!marker_allows(
            "x.unwrap(); // lint: allow(unwrap)",
            "map-order"
        ));
        assert!(!marker_allows("x.unwrap(); // allow(unwrap)", "unwrap"));
    }

    #[test]
    fn map_names_are_extracted() {
        let lines = [
            "let ladders: HashMap<String, Vec<(usize, f64)>> = network",
            "    kept: &HashMap<String, usize>,",
            "let mut flags = HashMap::new();",
            ") -> Result<HashMap<WorkloadKey, Schedule>, D::Error> {",
        ];
        let names = tracked_map_names(&lines);
        assert!(names.contains(&"ladders".to_string()));
        assert!(names.contains(&"kept".to_string()));
        assert!(names.contains(&"flags".to_string()));
        assert!(!names.contains(&"Result".to_string()));
    }

    #[test]
    fn lifetimes_are_not_map_names() {
        let lines = ["fn flag<'a>(flags: &'a HashMap<String, String>) {}"];
        let names = tracked_map_names(&lines);
        assert_eq!(names, vec!["flags".to_string()]);
    }

    #[test]
    fn sl003_needs_identifier_boundaries() {
        // A tracked short name must not match inside a longer identifier.
        let lines = [
            "let a: HashMap<String, f64> = x;",
            "for layer in &analysis {",
            "let s = data.values().sum::<f64>();",
        ];
        let names = tracked_map_names(&lines);
        assert!(map_order_finding(&lines, 1, &names).is_none());
        // `a` must also not match the tail of `data`.
        assert!(map_order_finding(&lines, 2, &names).is_none());
    }

    #[test]
    fn sl003_flags_loops_and_float_sums_only() {
        let dirty = [
            "let per_ms: HashMap<String, f64> = x;",
            "let total: f64 = per_ms.values().sum();",
            "for (label, ladder) in &per_ms {",
            "}",
            "for (label, kept) in per_ms {",
        ];
        assert!(map_order_finding(&dirty, 1, &tracked_map_names(&dirty)).is_some());
        assert!(map_order_finding(&dirty, 2, &tracked_map_names(&dirty)).is_some());
        // The bare `in NAME` form (iterating the map by reference or by
        // value without an explicit `&`) is flagged too.
        assert!(map_order_finding(&dirty, 4, &tracked_map_names(&dirty)).is_some());
        let clean = [
            "let per_ms: HashMap<String, f64> = x;",
            "let mut v: Vec<f64> = per_ms.values().copied().collect();",
            "v.sort_by(f64::total_cmp);",
            "let n = per_ms.len();",
        ];
        let names = tracked_map_names(&clean);
        assert!(map_order_finding(&clean, 1, &names).is_none());
        assert!(map_order_finding(&clean, 3, &names).is_none());
    }

    #[test]
    fn sl007_flags_float_literal_equality_only() {
        assert!(float_eq_finding("if budget == 0.0 {").is_some());
        assert!(float_eq_finding("if x != 1.5f32 {").is_some());
        assert!(float_eq_finding("while 2f64 == y {").is_some());
        assert!(float_eq_finding("if n == 0 {").is_none()); // integer
        assert!(float_eq_finding("if x <= 0.0 {").is_none()); // ordering op
        assert!(float_eq_finding("if x >= 1.0 {").is_none());
        assert!(float_eq_finding("let f = |x| x == point.y;").is_none()); // field
        assert!(float_eq_finding("Some(1.0) => {}").is_none()); // match arm
        assert!(float_eq_finding("if a.to_bits() == b.to_bits() {").is_none());
    }

    #[test]
    fn sl007_respects_allow_marker_and_test_cfg() {
        let src = "\
pub fn guard(x: f64) -> bool {
    x == 0.0 // lint: allow(float-eq) — exact sentinel value
}

pub fn broken(x: f64) -> bool {
    x == 0.5
}

#[cfg(test)]
mod tests {
    fn in_tests_exactness_is_fine(x: f64) -> bool {
        x == 0.25
    }
}
";
        let diags = scan_file("crates/models/src/x.rs", src, true);
        let sl007: Vec<_> = diags.iter().filter(|d| d.rule == rules::SL007).collect();
        assert_eq!(sl007.len(), 1, "{diags:?}");
        assert_eq!(sl007[0].location, "crates/models/src/x.rs:6");
    }

    #[test]
    fn sl006_detects_missing_docs_through_attributes() {
        let lines = [
            "/// Documented.",
            "#[derive(Debug)]",
            "pub struct Ok1;",
            "pub fn naked() {}",
            "pub use other::Thing;",
            "pub(crate) fn internal() {}",
        ];
        assert!(undocumented_pub_item(&lines, 2).is_none());
        assert!(undocumented_pub_item(&lines, 3).is_some());
        assert!(undocumented_pub_item(&lines, 4).is_none());
        assert!(undocumented_pub_item(&lines, 5).is_none());
    }

    #[test]
    fn scan_flags_seeded_violations_and_respects_test_cfg() {
        let src = "\
use std::time::Instant;

pub fn tick() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn risky(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_unwrap_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
";
        let diags = scan_file("crates/gpusim/src/x.rs", src, true);
        assert!(diags.iter().any(|d| d.rule == rules::SL001), "{diags:?}");
        assert!(
            diags
                .iter()
                .filter(|d| d.rule == rules::SL005)
                .all(|d| d.location == "crates/gpusim/src/x.rs:9"),
            "{diags:?}"
        );
        assert_eq!(diags.iter().filter(|d| d.rule == rules::SL005).count(), 1);
    }

    #[test]
    fn scan_skips_rules_out_of_scope() {
        // models/ is outside the determinism scope; unwrap still applies.
        let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
        let diags = scan_file("crates/models/src/x.rs", src, true);
        assert!(diags.iter().all(|d| d.rule != rules::SL001), "{diags:?}");
    }

    #[test]
    fn crate_root_without_forbid_is_flagged() {
        let diags = scan_file("crates/gpusim/src/lib.rs", "//! Docs.\n", true);
        assert!(diags.iter().any(|d| d.rule == rules::SL004));
        let ok = scan_file(
            "crates/gpusim/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n",
            true,
        );
        assert!(ok.iter().all(|d| d.rule != rules::SL004));
    }
}

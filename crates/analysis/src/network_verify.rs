//! Layer 3 — the whole-network dataflow verifier (rules `NV001`–`NV008`).
//!
//! A static pass over [`FullNetwork`] assemblies and pruning plans: no
//! `forward()` execution, only arithmetic over the declared geometry. The
//! paper's central hazard is that pruning a layer silently changes every
//! downstream layer's input channels (§II-B's paired input-side pruning);
//! this pass re-derives the propagated shape at every op independently of
//! the code that built the assembly, so a broken pruning transform cannot
//! re-derive itself into passing.
//!
//! Checks:
//! - `NV001` channel propagation (conv inputs, flattened FC inputs),
//! - `NV002` spatial propagation (declared extents, pool-window fit),
//! - `NV003` residual body/shortcut agreement,
//! - `NV004` prune-plan keep validity (`1..=C`, known labels),
//! - `NV005` paired input-side pruning applied to every consumer,
//! - `NV006` FLOPs re-accounting (breakdown and total re-derived),
//! - `NV007` classifier-head geometry vs. the label count,
//! - `NV008` peak per-op working set vs. the device GPU heap.

use std::collections::HashMap;

use pruneperf_backends::AclGemm;
use pruneperf_core::accuracy::AccuracyModel;
use pruneperf_core::{PerfAwarePruner, PruningPlan, UninstructedPruner};
use pruneperf_gpusim::Device;
use pruneperf_models::assembly::{alexnet_full, resnet50_full, vgg16_full, FullNetwork, LayerOp};
use pruneperf_models::{alexnet, mobilenet_v1, resnet50, vgg16, ConvLayerSpec, Network};
use pruneperf_profiler::{sweep, LayerProfiler};

use crate::diag::{Diagnostic, Report, Severity};
use crate::rules;

/// ImageNet label count — every stock classifier head emits this many
/// logits.
pub const LABEL_COUNT: usize = 1000;

/// Keep fractions for the pruned-variant grid the verifier sweeps.
pub const PRUNE_FRACTIONS: &[f64] = &[0.75, 0.5, 0.25];

fn err(rule: &'static str, loc: &str, message: String) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, loc, message)
}

/// The propagated activation shape between ops (square spatial extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShapeState {
    hw: usize,
    c: usize,
}

/// Output extent of a conv from its declared fields (the spec constructor
/// guarantees `hw + 2*pad >= kernel`, so this cannot underflow).
fn conv_out_hw(spec: &ConvLayerSpec) -> usize {
    (spec.h_in() + 2 * spec.pad() - spec.kernel()) / spec.stride() + 1
}

/// FLOPs of a conv re-derived from raw fields — deliberately *not* via
/// `spec.dims().flops()`, which is the code under audit.
fn conv_flops(spec: &ConvLayerSpec) -> u64 {
    let o = conv_out_hw(spec) as u64;
    2 * o
        * o
        * (spec.c_out() as u64)
        * (spec.kernel() as u64).pow(2)
        * (spec.c_in() / spec.groups()) as u64
}

/// Walks `ops` checking NV001/NV002/NV003, returning the propagated output
/// shape. `path` scopes locations (`""` at top level, `"#3.body."`-style
/// inside residual bodies).
fn walk_ops(
    net: &str,
    path: &str,
    ops: &[LayerOp],
    mut state: ShapeState,
    out: &mut Vec<Diagnostic>,
) -> ShapeState {
    for (i, op) in ops.iter().enumerate() {
        let loc = |desc: &str| format!("{net} / {path}#{i} {desc}");
        match op {
            LayerOp::Conv(spec) => {
                if spec.c_in() != state.c {
                    out.push(
                        err(
                            rules::NV001,
                            &loc(spec.label()),
                            format!(
                                "conv declares {} input channels but the producer emits {}",
                                spec.c_in(),
                                state.c
                            ),
                        )
                        .with_hint("paired input-side pruning must shrink every consumer (§II-B)"),
                    );
                }
                if spec.h_in() != state.hw || spec.w_in() != state.hw {
                    out.push(err(
                        rules::NV002,
                        &loc(spec.label()),
                        format!(
                            "conv declares {}x{} input but the propagated extent is {}",
                            spec.h_in(),
                            spec.w_in(),
                            state.hw
                        ),
                    ));
                }
                // Resync to the declared geometry so one mismatch does not
                // cascade into every downstream op.
                state = ShapeState {
                    hw: conv_out_hw(spec),
                    c: spec.c_out(),
                };
            }
            LayerOp::Relu => {}
            LayerOp::MaxPool { window, stride } => {
                if *stride == 0 || *window == 0 {
                    out.push(err(
                        rules::NV002,
                        &loc("maxpool"),
                        format!(
                            "maxpool has degenerate geometry (window {window}, stride {stride})"
                        ),
                    ));
                } else if *window > state.hw {
                    out.push(
                        err(
                            rules::NV002,
                            &loc("maxpool"),
                            format!(
                                "pool window {window} does not fit the {hw}x{hw} input",
                                hw = state.hw
                            ),
                        )
                        .with_hint("unpadded pooling requires window <= input extent"),
                    );
                } else {
                    state.hw = (state.hw - window) / stride + 1;
                }
            }
            LayerOp::GlobalAvgPool => state.hw = 1,
            LayerOp::FullyConnected {
                label,
                in_features,
                out_features,
            } => {
                let flat = state.hw * state.hw * state.c;
                if *in_features != flat {
                    out.push(
                        err(
                            rules::NV001,
                            &loc(label),
                            format!(
                                "FC declares {in_features} input features but the flattened \
                                 producer emits {flat} ({hw}x{hw}x{c})",
                                hw = state.hw,
                                c = state.c
                            ),
                        )
                        .with_hint("rescale in_features when the feeding channels are pruned"),
                    );
                }
                state = ShapeState {
                    hw: 1,
                    c: *out_features,
                };
            }
            LayerOp::Residual { body, projection } => {
                let body_out = walk_ops(net, &format!("{path}#{i}.body."), body, state, out);
                let shortcut_out = match projection {
                    Some(p) => {
                        if p.c_in() != state.c {
                            out.push(err(
                                rules::NV003,
                                &loc(p.label()),
                                format!(
                                    "projection declares {} input channels but the block \
                                     input has {}",
                                    p.c_in(),
                                    state.c
                                ),
                            ));
                        }
                        if p.h_in() != state.hw {
                            out.push(err(
                                rules::NV003,
                                &loc(p.label()),
                                format!(
                                    "projection declares {}x{} input but the block input \
                                     extent is {}",
                                    p.h_in(),
                                    p.w_in(),
                                    state.hw
                                ),
                            ));
                        }
                        ShapeState {
                            hw: conv_out_hw(p),
                            c: p.c_out(),
                        }
                    }
                    None => state,
                };
                if body_out != shortcut_out {
                    out.push(
                        err(
                            rules::NV003,
                            &loc("residual_add"),
                            format!(
                                "body emits {}x{}x{} but the shortcut emits {}x{}x{}",
                                body_out.hw,
                                body_out.hw,
                                body_out.c,
                                shortcut_out.hw,
                                shortcut_out.hw,
                                shortcut_out.c
                            ),
                        )
                        .with_hint(
                            "identity shortcuts pin the body output width; projections must \
                             follow the body",
                        ),
                    );
                }
                state = body_out;
            }
        }
    }
    state
}

/// Re-derives the FLOP breakdown of an assembly with independent formulas,
/// mirroring the documented accounting of `FullNetwork::flops_breakdown`.
fn recompute_breakdown(
    input_hw: usize,
    input_c: usize,
    ops: &[LayerOp],
) -> Vec<(String, u64, bool)> {
    let mut hw = input_hw;
    let mut c = input_c;
    let mut out = Vec::new();
    for op in ops {
        match op {
            LayerOp::Conv(spec) => {
                out.push((spec.label().to_string(), conv_flops(spec), true));
                hw = conv_out_hw(spec);
                c = spec.c_out();
            }
            LayerOp::Relu => out.push(("relu".into(), (hw * hw * c) as u64, false)),
            LayerOp::MaxPool { window, stride } => {
                // Degenerate geometry is NV002's finding; keep this total
                // function so it never underflows.
                let o = if *window <= hw && *stride > 0 {
                    (hw - window) / stride + 1
                } else {
                    hw
                };
                out.push((
                    format!("maxpool{window}"),
                    (o * o * c * window * window) as u64,
                    false,
                ));
                hw = o;
            }
            LayerOp::GlobalAvgPool => {
                out.push(("gap".into(), (hw * hw * c) as u64, false));
                hw = 1;
            }
            LayerOp::FullyConnected {
                label,
                in_features,
                out_features,
            } => {
                out.push((
                    label.clone(),
                    2 * (in_features * out_features) as u64,
                    false,
                ));
                hw = 1;
                c = *out_features;
            }
            LayerOp::Residual { body, projection } => {
                out.extend(recompute_breakdown(hw, c, body));
                let (mut bhw, mut bc) = (hw, c);
                for b in body {
                    if let LayerOp::Conv(s) = b {
                        bhw = conv_out_hw(s);
                        bc = s.c_out();
                    }
                }
                if let Some(p) = projection {
                    out.push((p.label().to_string(), conv_flops(p), true));
                }
                out.push(("residual_add".into(), (bhw * bhw * bc) as u64, false));
                hw = bhw;
                c = bc;
            }
        }
    }
    out
}

/// NV006: a reported FLOP accounting (breakdown rows and total) must equal
/// the one re-derived here with independent formulas. Taking the reported
/// side as an argument keeps the check falsifiable — seeded-violation
/// tests hand it a corrupted accounting.
pub fn audit_flops_accounting(
    net: &FullNetwork,
    reported: &[(String, u64, bool)],
    reported_total: u64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let expected = recompute_breakdown(net.input_hw(), net.input_c(), net.ops());
    let loc = format!("{} / flops", net.name());
    if reported.len() != expected.len() {
        out.push(err(
            rules::NV006,
            &loc,
            format!(
                "flops_breakdown has {} rows but the re-derived accounting has {}",
                reported.len(),
                expected.len()
            ),
        ));
        return out;
    }
    for ((rn, rf, rc), (en, ef, ec)) in reported.iter().zip(&expected) {
        if rn != en || rf != ef || rc != ec {
            out.push(
                err(
                    rules::NV006,
                    &format!("{} / flops :: {en}", net.name()),
                    format!(
                        "reported ({rn}, {rf} FLOPs, conv={rc}) differs from re-derived \
                         ({en}, {ef} FLOPs, conv={ec})"
                    ),
                )
                .with_hint("re-account FLOPs after pruning; stale totals hide pruned work"),
            );
        }
    }
    let total: u64 = expected.iter().map(|(_, f, _)| f).sum();
    if reported_total != total {
        out.push(err(
            rules::NV006,
            &loc,
            format!("total_flops reports {reported_total} but the breakdown sums to {total}"),
        ));
    }
    out
}

/// NV007: the network ends in a fully-connected head of `labels` outputs.
fn check_head(net: &FullNetwork, labels: usize, out: &mut Vec<Diagnostic>) {
    let loc = format!("{} / head", net.name());
    match net.ops().last() {
        Some(LayerOp::FullyConnected { out_features, .. }) => {
            if *out_features != labels {
                out.push(
                    err(
                        rules::NV007,
                        &loc,
                        format!("classifier emits {out_features} logits, expected {labels}"),
                    )
                    .with_hint("channel pruning must never touch the label dimension"),
                );
            }
        }
        other => out.push(err(
            rules::NV007,
            &loc,
            format!("network does not end in a fully-connected head (last op: {other:?})"),
        )),
    }
}

/// Verifies one assembly: shape propagation (NV001–NV003), FLOPs
/// re-accounting (NV006) and head geometry (NV007). The FLOPs check only
/// runs when the shape walk is clean — `flops_breakdown` is undefined over
/// geometrically unsound networks (an oversized pool window would
/// underflow its extent arithmetic).
pub fn verify_network(net: &FullNetwork, labels: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let state = ShapeState {
        hw: net.input_hw(),
        c: net.input_c(),
    };
    walk_ops(net.name(), "", net.ops(), state, &mut out);
    if out.is_empty() {
        out.extend(audit_flops_accounting(
            net,
            &net.flops_breakdown(),
            net.total_flops(),
        ));
    }
    check_head(net, labels, &mut out);
    out
}

/// Peak per-op working set of the assembly in bytes, with the op that
/// peaks: input + output activations, plus conv weights, plus any live
/// residual-shortcut buffer. FC weights are excluded — they stream through
/// the cache row by row and are never resident as a whole (this keeps
/// VGG-16's 100M-parameter head from dwarfing every activation budget).
pub fn peak_working_set(net: &FullNetwork) -> (u64, String) {
    fn bump(peak: &mut (u64, String), bytes: u64, label: &str) {
        if bytes > peak.0 {
            *peak = (bytes, label.to_string());
        }
    }
    fn walk(
        ops: &[LayerOp],
        mut hw: usize,
        mut c: usize,
        held: u64,
        peak: &mut (u64, String),
    ) -> (usize, usize) {
        let f32s = 4u64;
        for op in ops {
            match op {
                LayerOp::Conv(spec) => {
                    let o = conv_out_hw(spec);
                    let input = (spec.h_in() * spec.w_in() * spec.c_in()) as u64;
                    let output = (o * o * spec.c_out()) as u64;
                    let weights = (spec.kernel()
                        * spec.kernel()
                        * (spec.c_in() / spec.groups())
                        * spec.c_out()) as u64;
                    bump(peak, held + (input + output + weights) * f32s, spec.label());
                    hw = o;
                    c = spec.c_out();
                }
                LayerOp::Relu => bump(peak, held + 2 * (hw * hw * c) as u64 * f32s, "relu"),
                LayerOp::MaxPool { window, stride } => {
                    let o = if *window <= hw && *stride > 0 {
                        (hw - window) / stride + 1
                    } else {
                        hw
                    };
                    bump(
                        peak,
                        held + ((hw * hw + o * o) * c) as u64 * f32s,
                        "maxpool",
                    );
                    hw = o;
                }
                LayerOp::GlobalAvgPool => {
                    bump(peak, held + ((hw * hw + 1) * c) as u64 * f32s, "gap");
                    hw = 1;
                }
                LayerOp::FullyConnected {
                    label,
                    in_features,
                    out_features,
                } => {
                    bump(
                        peak,
                        held + (in_features + out_features) as u64 * f32s,
                        label,
                    );
                    hw = 1;
                    c = *out_features;
                }
                LayerOp::Residual { body, projection } => {
                    // The shortcut keeps the block input alive for the add.
                    let skip = (hw * hw * c) as u64 * f32s;
                    let (bhw, bc) = walk(body, hw, c, held + skip, peak);
                    if let Some(p) = projection {
                        let o = conv_out_hw(p);
                        let input = (p.h_in() * p.w_in() * p.c_in()) as u64;
                        let output = (o * o * p.c_out()) as u64;
                        let weights = (p.kernel() * p.kernel() * p.c_in() * p.c_out()) as u64;
                        bump(peak, held + (input + output + weights) * f32s, p.label());
                    }
                    // The add holds both summands and the result.
                    bump(
                        peak,
                        held + 3 * (bhw * bhw * bc) as u64 * f32s,
                        "residual_add",
                    );
                    hw = bhw;
                    c = bc;
                }
            }
        }
        (hw, c)
    }
    let mut peak = (0u64, String::from("(empty)"));
    walk(net.ops(), net.input_hw(), net.input_c(), 0, &mut peak);
    peak
}

/// NV008: the peak working set must fit the device's GPU heap.
pub fn verify_footprint(net: &FullNetwork, device: &Device) -> Vec<Diagnostic> {
    let (bytes, at) = peak_working_set(net);
    if bytes > device.gpu_heap_bytes() {
        vec![err(
            rules::NV008,
            &format!("{} @ {} / {at}", net.name(), device.name()),
            format!(
                "peak working set {bytes} B exceeds the {} B GPU heap",
                device.gpu_heap_bytes()
            ),
        )
        .with_hint("prune harder or split the op; §IV-A2 bounds resident buffers by the heap")]
    } else {
        Vec::new()
    }
}

/// NV004: every keep targets an existing layer and lies within `1..=C`.
pub fn audit_plan_keeps(
    producer: &str,
    network: &Network,
    kept: &HashMap<String, usize>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut labels: Vec<&String> = kept.keys().collect();
    labels.sort(); // canonical order: HashMap iteration is nondeterministic
    for label in labels {
        let keep = kept[label];
        let loc = format!("{producer} / {} :: {label}", network.name());
        match network.layer(label) {
            None => out.push(
                err(
                    rules::NV004,
                    &loc,
                    format!("plan prunes unknown layer '{label}'"),
                )
                .with_hint("keeps must target catalog layer labels"),
            ),
            Some(layer) => {
                if keep == 0 || keep > layer.c_out() {
                    out.push(
                        err(
                            rules::NV004,
                            &loc,
                            format!(
                                "keep {keep} outside 1..={} for layer '{label}'",
                                layer.c_out()
                            ),
                        )
                        .with_hint("prune_output_channels_to targets must stay within 1..=C"),
                    );
                }
            }
        }
    }
    out
}

/// NV005: a coupled (deployed) network must apply paired input-side
/// pruning — every consumer's input channels equal its producer's kept
/// output channels, depthwise layers follow their input, and unpruned
/// layers keep their catalog width.
pub fn audit_coupled_network(
    producer: &str,
    network: &Network,
    kept: &HashMap<String, usize>,
    coupled: &Network,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if coupled.len() != network.len() {
        out.push(err(
            rules::NV005,
            &format!("{producer} / {}", network.name()),
            format!(
                "coupled network has {} layers, catalog has {}",
                coupled.len(),
                network.len()
            ),
        ));
        return out;
    }
    let mut prev_out: Option<usize> = None;
    for (orig, layer) in network.layers().iter().zip(coupled.layers()) {
        let loc = format!("{producer} / {} :: {}", network.name(), orig.label());
        let expect_in = prev_out.unwrap_or_else(|| orig.c_in());
        if layer.c_in() != expect_in {
            out.push(
                err(
                    rules::NV005,
                    &loc,
                    format!(
                        "consumer keeps {} input channels but its producer was pruned to {}",
                        layer.c_in(),
                        expect_in
                    ),
                )
                .with_hint("apply the paired input-side prune downstream (§II-B)"),
            );
        }
        let expect_out = if orig.is_depthwise() {
            expect_in
        } else {
            kept.get(orig.label())
                .copied()
                .unwrap_or_else(|| orig.c_out())
        };
        if layer.c_out() != expect_out {
            out.push(err(
                rules::NV005,
                &loc,
                format!(
                    "layer emits {} channels but the plan keeps {expect_out}",
                    layer.c_out()
                ),
            ));
        }
        prev_out = Some(layer.c_out());
    }
    out
}

/// Audits one [`PruningPlan`] end to end: keep validity (NV004) and the
/// coupled deployment it implies (NV005).
pub fn audit_pruning_plan(plan: &PruningPlan, network: &Network) -> Vec<Diagnostic> {
    let producer = format!("{} @ {}", plan.policy(), plan.device());
    let mut out = audit_plan_keeps(&producer, network, plan.kept_channels());
    let coupled = network.sequential_with_kept(plan.kept_channels());
    out.extend(audit_coupled_network(
        &producer,
        network,
        plan.kept_channels(),
        &coupled,
    ));
    out
}

/// `(label, c_out)` for every conv in the assembly, in execution order.
fn conv_channels(net: &FullNetwork) -> Vec<(String, usize)> {
    fn collect_channels(ops: &[LayerOp], out: &mut Vec<(String, usize)>) {
        for op in ops {
            match op {
                LayerOp::Conv(s) => out.push((s.label().to_string(), s.c_out())),
                LayerOp::Residual { body, projection } => {
                    // lint: allow(recursion-bound) — residual bodies nest one level by construction (NV003)
                    collect_channels(body, out);
                    if let Some(p) = projection {
                        out.push((p.label().to_string(), p.c_out()));
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    collect_channels(net.ops(), &mut out);
    out
}

/// A uniform keep map over the assembly's convolutions.
fn fraction_keeps(net: &FullNetwork, fraction: f64) -> HashMap<String, usize> {
    conv_channels(net)
        .into_iter()
        .map(|(label, c)| (label, ((c as f64 * fraction).round() as usize).max(1)))
        .collect()
}

/// The stock full assemblies under audit.
pub fn stock_networks() -> Vec<FullNetwork> {
    vec![resnet50_full(), vgg16_full(), alexnet_full()]
}

/// The catalog networks whose pruning greedies are audited.
fn catalog_networks() -> Vec<Network> {
    vec![alexnet(), mobilenet_v1(), resnet50(), vgg16()]
}

/// Audits every plan the pruning greedies emit for one (device, network)
/// cell: both perf-aware objectives, the Pareto sweep and both
/// uninstructed baselines. Returns `(diagnostics, plans audited)`.
fn audit_pruner_cell(device: &Device, network: &Network) -> (Vec<Diagnostic>, usize) {
    let backend = AclGemm::new();
    let profiler = LayerProfiler::noiseless(device);
    let accuracy = AccuracyModel::for_network(network);
    let pruner = PerfAwarePruner::new(&profiler, &accuracy);
    let uninstructed = UninstructedPruner::new(&profiler, &accuracy);
    let mut plans = vec![
        pruner.prune_to_latency(&backend, network, 0.8),
        pruner.prune_to_energy(&backend, network, 0.85),
        uninstructed.prune_by_distance(&backend, network, 7),
        uninstructed.prune_to_fraction(&backend, network, 0.5),
    ];
    plans.extend(pruner.pareto_plans(&backend, network, &[1.0, 0.8]));
    let mut out = Vec::new();
    let audited = plans.len();
    for plan in &plans {
        out.extend(audit_pruning_plan(plan, network));
    }
    (out, audited)
}

/// Runs the full network-verification grid: the stock assemblies, their
/// footprints on all four paper devices, a pruned-variant sweep, and every
/// plan the pruning greedies emit — fanned out over `jobs` workers with a
/// deterministic, input-ordered reduction.
pub fn audit_network_grid(jobs: usize) -> Report {
    let devices = Device::all_paper_devices();
    // Cell kinds: 0 = stock network + pruned variants, 1 = footprint,
    // 2 = pruner plans. Encoded as plain indices so the closure rebuilds
    // its own (non-Sync) values per call.
    let stock = stock_networks().len();
    let catalogs = catalog_networks().len();
    let mut cells: Vec<(u8, usize, usize)> = Vec::new();
    for n in 0..stock {
        cells.push((0, n, 0));
    }
    for n in 0..stock {
        for d in 0..devices.len() {
            cells.push((1, n, d));
        }
    }
    for n in 0..catalogs {
        for d in 0..devices.len() {
            cells.push((2, n, d));
        }
    }
    // lint: allow(hot-root) — build-time verification grid, not a serving path
    let results = sweep::ordered_parallel_map(&cells, jobs, |&(kind, n, d)| match kind {
        0 => {
            let net = &stock_networks()[n];
            let mut diags = verify_network(net, LABEL_COUNT);
            let mut count = 1;
            for &f in PRUNE_FRACTIONS {
                let pruned = net.pruned_with_kept(&fraction_keeps(net, f));
                diags.extend(verify_network(&pruned, LABEL_COUNT));
                count += 1;
            }
            (diags, count)
        }
        1 => {
            let net = &stock_networks()[n];
            (verify_footprint(net, &devices[d]), 1)
        }
        _ => audit_pruner_cell(&devices[d], &catalog_networks()[n]),
    });
    let mut diags = Vec::new();
    let mut verified = 0;
    for (cell_diags, cell_count) in results {
        diags.extend(cell_diags);
        verified += cell_count;
    }
    let mut report = Report::new(diags);
    report.networks_verified = verified;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_networks_are_clean() {
        for net in stock_networks() {
            let diags = verify_network(&net, LABEL_COUNT);
            assert!(diags.is_empty(), "{}: {diags:?}", net.name());
            for d in Device::all_paper_devices() {
                assert!(verify_footprint(&net, &d).is_empty());
            }
        }
    }

    #[test]
    fn pruned_variants_are_clean() {
        for net in stock_networks() {
            for &f in PRUNE_FRACTIONS {
                let pruned = net.pruned_with_kept(&fraction_keeps(&net, f));
                let diags = verify_network(&pruned, LABEL_COUNT);
                assert!(diags.is_empty(), "{} @ {f}: {diags:?}", net.name());
            }
        }
    }

    #[test]
    fn pruning_reduces_reported_flops_consistently() {
        let net = vgg16_full();
        let pruned = net.pruned_with_kept(&fraction_keeps(&net, 0.5));
        assert!(pruned.total_flops() < net.total_flops() / 3);
        assert!(verify_network(&pruned, LABEL_COUNT).is_empty());
    }

    #[test]
    fn nv001_broken_channel_propagation_is_caught() {
        // A naive prune: shrink C0's outputs without touching C1's inputs.
        let net = FullNetwork::new(
            "NaivePrune",
            16,
            3,
            vec![
                LayerOp::Conv(ConvLayerSpec::new("NP.C0", 3, 1, 1, 3, 4, 16, 16)),
                LayerOp::Conv(ConvLayerSpec::new("NP.C1", 3, 1, 1, 8, 8, 16, 16)),
                LayerOp::GlobalAvgPool,
                LayerOp::FullyConnected {
                    label: "NP.FC".into(),
                    in_features: 8,
                    out_features: LABEL_COUNT,
                },
            ],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(diags.iter().any(|d| d.rule == rules::NV001), "{diags:?}");
    }

    #[test]
    fn nv001_stale_fc_inputs_are_caught() {
        let net = FullNetwork::new(
            "StaleFC",
            8,
            3,
            vec![
                LayerOp::Conv(ConvLayerSpec::new("SF.C0", 3, 1, 1, 3, 4, 8, 8)),
                LayerOp::GlobalAvgPool,
                LayerOp::FullyConnected {
                    label: "SF.FC".into(),
                    in_features: 8, // producer emits 4
                    out_features: LABEL_COUNT,
                },
            ],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV001 && d.message.contains("flattened")),
            "{diags:?}"
        );
    }

    #[test]
    fn nv002_spatial_mismatch_and_oversized_pool_are_caught() {
        let net = FullNetwork::new(
            "BadGeom",
            16,
            3,
            vec![
                // Declares a 32x32 input on a 16x16 activation.
                LayerOp::Conv(ConvLayerSpec::new("BG.C0", 3, 1, 1, 3, 4, 32, 32)),
            ],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(diags.iter().any(|d| d.rule == rules::NV002), "{diags:?}");

        let pool = FullNetwork::new(
            "BadPool",
            4,
            3,
            vec![LayerOp::MaxPool {
                window: 9,
                stride: 2,
            }],
        );
        let diags = verify_network(&pool, LABEL_COUNT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV002 && d.message.contains("window")),
            "{diags:?}"
        );
    }

    #[test]
    fn nv003_unbalanced_residual_is_caught() {
        // Identity shortcut but the body changes the channel count.
        let net = FullNetwork::new(
            "BadRes",
            8,
            4,
            vec![LayerOp::Residual {
                body: vec![LayerOp::Conv(ConvLayerSpec::new(
                    "BR.C0", 3, 1, 1, 4, 8, 8, 8,
                ))],
                projection: None,
            }],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(diags.iter().any(|d| d.rule == rules::NV003), "{diags:?}");

        // Projection consuming the wrong input width.
        let net = FullNetwork::new(
            "BadProj",
            8,
            4,
            vec![LayerOp::Residual {
                body: vec![LayerOp::Conv(ConvLayerSpec::new(
                    "BP.C0", 3, 1, 1, 4, 8, 8, 8,
                ))],
                projection: Some(ConvLayerSpec::new("BP.P", 1, 1, 0, 6, 8, 8, 8)),
            }],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV003 && d.message.contains("projection")),
            "{diags:?}"
        );
    }

    #[test]
    fn nv004_invalid_keeps_are_caught() {
        let network = alexnet();
        let first = network.layers()[0].label().to_string();
        let mut kept = HashMap::new();
        kept.insert(first.clone(), 0usize); // below 1
        kept.insert("AlexNet.L99".to_string(), 4usize); // unknown layer
        let diags = audit_plan_keeps("test", &network, &kept);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV004 && d.message.contains("outside")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV004 && d.message.contains("unknown")),
            "{diags:?}"
        );
        // Over-C keeps are rejected too.
        let c = network.layers()[0].c_out();
        let mut kept = HashMap::new();
        kept.insert(first, c + 1);
        let diags = audit_plan_keeps("test", &network, &kept);
        assert!(diags.iter().any(|d| d.rule == rules::NV004), "{diags:?}");
    }

    #[test]
    fn nv005_unpaired_prune_is_caught() {
        let network = Network::new(
            "Tiny",
            vec![
                ConvLayerSpec::new("T.L0", 3, 1, 1, 3, 8, 8, 8),
                ConvLayerSpec::new("T.L1", 1, 1, 0, 8, 16, 8, 8),
            ],
        );
        let mut kept = HashMap::new();
        kept.insert("T.L0".to_string(), 4usize);
        // A naive deployment that shrinks T.L0 but leaves T.L1's inputs.
        let naive = Network::new(
            "Tiny (naive)",
            vec![
                ConvLayerSpec::new("T.L0", 3, 1, 1, 3, 4, 8, 8),
                ConvLayerSpec::new("T.L1", 1, 1, 0, 8, 16, 8, 8),
            ],
        );
        let diags = audit_coupled_network("test", &network, &kept, &naive);
        assert!(diags.iter().any(|d| d.rule == rules::NV005), "{diags:?}");
        // The real coupled deployment is clean.
        let coupled = network.sequential_with_kept(&kept);
        assert!(audit_coupled_network("test", &network, &kept, &coupled).is_empty());
    }

    #[test]
    fn nv006_corrupted_flops_accounting_is_caught() {
        let net = alexnet_full();
        // The real accounting is clean.
        assert!(audit_flops_accounting(&net, &net.flops_breakdown(), net.total_flops()).is_empty());
        // A stale breakdown row (as left behind by a prune that forgot to
        // re-account) is caught.
        let mut stale = net.flops_breakdown();
        stale[0].1 *= 2;
        let diags = audit_flops_accounting(&net, &stale, net.total_flops());
        assert!(diags.iter().any(|d| d.rule == rules::NV006), "{diags:?}");
        // A stale total is caught even when the rows agree.
        let diags = audit_flops_accounting(&net, &net.flops_breakdown(), net.total_flops() - 1);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV006 && d.message.contains("total_flops")),
            "{diags:?}"
        );
        // A missing row is caught.
        let mut short = net.flops_breakdown();
        short.pop();
        let diags = audit_flops_accounting(&net, &short, net.total_flops());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::NV006 && d.message.contains("rows")),
            "{diags:?}"
        );
    }

    #[test]
    fn nv007_wrong_head_is_caught() {
        let net = FullNetwork::new(
            "BadHead",
            8,
            3,
            vec![
                LayerOp::Conv(ConvLayerSpec::new("BH.C0", 3, 1, 1, 3, 4, 8, 8)),
                LayerOp::GlobalAvgPool,
                LayerOp::FullyConnected {
                    label: "BH.FC".into(),
                    in_features: 4,
                    out_features: 10, // not the label count
                },
            ],
        );
        let diags = verify_network(&net, LABEL_COUNT);
        assert!(diags.iter().any(|d| d.rule == rules::NV007), "{diags:?}");

        // A network with no head at all.
        let headless = FullNetwork::new(
            "Headless",
            8,
            3,
            vec![LayerOp::Conv(ConvLayerSpec::new(
                "HL.C0", 3, 1, 1, 3, 4, 8, 8,
            ))],
        );
        let diags = verify_network(&headless, LABEL_COUNT);
        assert!(diags.iter().any(|d| d.rule == rules::NV007), "{diags:?}");
    }

    #[test]
    fn nv008_oversized_working_set_is_caught() {
        let tiny = Device::builder("Tiny IoT board").gpu_heap_mib(1).build();
        let net = vgg16_full(); // ~26 MB peak working set
        let diags = verify_footprint(&net, &tiny);
        assert!(diags.iter().any(|d| d.rule == rules::NV008), "{diags:?}");
        // The same network fits every paper device.
        for d in Device::all_paper_devices() {
            assert!(verify_footprint(&net, &d).is_empty(), "{}", d.name());
        }
    }

    #[test]
    fn greedy_plans_pass_the_plan_rules() {
        // One cheap cell exercising the real pruners end to end.
        let device = Device::mali_g72_hikey970();
        let network = alexnet();
        let (diags, audited) = audit_pruner_cell(&device, &network);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(audited >= 5, "expected all greedy producers, got {audited}");
    }

    #[test]
    fn peak_working_set_names_a_real_op() {
        let (bytes, at) = peak_working_set(&vgg16_full());
        assert!(bytes > 20 * 1024 * 1024, "{bytes} at {at}");
        assert!(at.contains("VGGFull"), "{at}");
    }
}

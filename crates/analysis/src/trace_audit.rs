//! Layer 4 — the schedule-trace auditor (rules `TA001`–`TA006`).
//!
//! A checker over [`ChainTrace`]s from the simulator's list scheduler. The
//! paper's dispatch-level findings (the two parallel staircases of Figs 3,
//! 14, 15; the job-overhead gaps of Fig 18) are only as trustworthy as the
//! schedules the tracer records, so every structural property a valid
//! schedule must have is re-checked here from the raw spans — disjointness,
//! workgroup conservation, totals, utilization and agreement with the
//! dispatch plan — independently of the engine that produced them.
//!
//! Spans of one dispatch all share the same start time (the scheduler
//! releases a kernel's workgroups together after its dispatch overhead),
//! and consecutive dispatches are separated by strictly positive overhead,
//! so dispatch groups are recovered by grouping consecutive spans with
//! bit-identical start times — no float equality involved.

use pruneperf_gpusim::{ChainTrace, Device, Engine, JobChain, TraceSpan};
use pruneperf_profiler::sweep;

use crate::diag::{Diagnostic, Report, Severity};
use crate::plan_audit::{audited_backends, grid_layers, GRID_CHANNELS};
use crate::rules;

fn err(rule: &'static str, loc: &str, message: String) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, loc, message)
}

/// Comparison slack for accumulated span arithmetic: scale-relative with an
/// absolute floor for near-zero totals.
fn eps_for(total_us: f64) -> f64 {
    total_us.abs() * 1e-9 + 1e-12
}

/// One recovered dispatch: the consecutive spans sharing a start time.
struct DispatchGroup<'a> {
    kernel: &'a str,
    start_us: f64,
    spans: &'a [TraceSpan],
}

/// Recovers dispatch groups from the span stream (see the module docs for
/// why bit-identical start times delimit dispatches).
fn dispatch_groups(spans: &[TraceSpan]) -> Vec<DispatchGroup<'_>> {
    let mut groups: Vec<DispatchGroup<'_>> = Vec::new();
    let mut begin = 0;
    for i in 1..=spans.len() {
        let boundary =
            i == spans.len() || spans[i].start_us.to_bits() != spans[begin].start_us.to_bits();
        if boundary {
            groups.push(DispatchGroup {
                kernel: &spans[begin].kernel,
                start_us: spans[begin].start_us,
                spans: &spans[begin..i],
            });
            begin = i;
        }
    }
    groups
}

/// TA006: every span is well-formed on its own — positive duration,
/// non-negative start, in-range core index, at least one workgroup.
fn check_spans(trace: &ChainTrace, loc: &str, out: &mut Vec<Diagnostic>) {
    for (i, s) in trace.spans().iter().enumerate() {
        let at = format!("{loc} :: span #{i} ({})", s.kernel);
        // Positive-duration check phrased so NaN endpoints also fail it.
        let well_formed = s.end_us > s.start_us && s.start_us >= 0.0;
        if !well_formed {
            out.push(
                err(
                    rules::TA006,
                    &at,
                    format!("degenerate span [{}, {}] µs", s.start_us, s.end_us),
                )
                .with_hint("even a zero-arith kernel pays workgroup launch cycles"),
            );
        }
        if s.workgroups == 0 {
            out.push(err(
                rules::TA006,
                &at,
                "span executes zero workgroups".to_string(),
            ));
        }
        if s.core >= trace.cores() {
            out.push(err(
                rules::TA006,
                &at,
                format!(
                    "span runs on core {} of a {}-core device",
                    s.core,
                    trace.cores()
                ),
            ));
        }
    }
}

/// TA001: per-core spans are disjoint with non-decreasing start times.
fn check_core_schedules(trace: &ChainTrace, loc: &str, out: &mut Vec<Diagnostic>) {
    let eps = eps_for(trace.total_us());
    for core in 0..trace.cores() {
        let mut prev: Option<&TraceSpan> = None;
        for s in trace.spans().iter().filter(|s| s.core == core) {
            if let Some(p) = prev {
                if s.start_us < p.start_us {
                    out.push(err(
                        rules::TA001,
                        &format!("{loc} :: core {core}"),
                        format!(
                            "span '{}' starts at {} µs before predecessor '{}' at {} µs",
                            s.kernel, s.start_us, p.kernel, p.start_us
                        ),
                    ));
                }
                if s.start_us < p.end_us - eps {
                    out.push(
                        err(
                            rules::TA001,
                            &format!("{loc} :: core {core}"),
                            format!(
                                "span '{}' [{}, {}] overlaps predecessor '{}' ending at {} µs",
                                s.kernel, s.start_us, s.end_us, p.kernel, p.end_us
                            ),
                        )
                        .with_hint("a core executes one workgroup batch at a time"),
                    );
                }
            }
            prev = Some(s);
        }
    }
}

/// TA002: within each dispatch, span workgroups sum to the kernel's
/// NDRange workgroup count (requires the chain to know the NDRange).
fn check_conservation(
    groups: &[DispatchGroup<'_>],
    chain: &JobChain,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    for (group, job) in groups.iter().zip(chain.jobs()) {
        let traced: usize = group.spans.iter().map(|s| s.workgroups).sum();
        let expected = job.kernel().workgroup_count();
        if traced != expected {
            out.push(
                err(
                    rules::TA002,
                    &format!("{loc} :: {}", group.kernel),
                    format!(
                        "trace executes {traced} workgroups but the kernel dispatches {expected}"
                    ),
                )
                .with_hint("the scheduler must place every NDRange workgroup exactly once"),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for s in group.spans {
            if !seen.insert(s.core) {
                out.push(err(
                    rules::TA002,
                    &format!("{loc} :: {}", group.kernel),
                    format!("core {} appears twice in one dispatch", s.core),
                ));
            }
        }
    }
}

/// TA003: `total_us` equals the last span's finish time (and the aggregate
/// `run_chain` total when the caller provides it).
fn check_total(
    trace: &ChainTrace,
    report_total_us: Option<f64>,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let eps = eps_for(trace.total_us());
    let max_end = trace
        .spans()
        .iter()
        .map(|s| s.end_us)
        .fold(0.0f64, f64::max);
    if (trace.total_us() - max_end).abs() > eps {
        out.push(
            err(
                rules::TA003,
                loc,
                format!(
                    "total_us is {} but the last span finishes at {} µs",
                    trace.total_us(),
                    max_end
                ),
            )
            .with_hint("the chain ends when its last core drains"),
        );
    }
    if let Some(report) = report_total_us {
        if (trace.total_us() - report).abs() > eps.max(eps_for(report)) {
            out.push(err(
                rules::TA003,
                loc,
                format!(
                    "trace total {} µs disagrees with the run_chain report {} µs",
                    trace.total_us(),
                    report
                ),
            ));
        }
    }
}

/// TA004: utilization lies in (0, 1] and matches busy/(cores × total).
fn check_utilization(trace: &ChainTrace, loc: &str, out: &mut Vec<Diagnostic>) {
    let u = trace.utilization();
    let in_range = u > 0.0 && u <= 1.0;
    if !in_range {
        out.push(
            err(rules::TA004, loc, format!("utilization {u} outside (0, 1]"))
                .with_hint("busy core-time can never exceed cores x makespan"),
        );
    }
    let busy: f64 = trace
        .spans()
        .iter()
        .map(|s| (s.end_us - s.start_us).max(0.0))
        .sum();
    let denom = trace.cores() as f64 * trace.total_us();
    if denom > 0.0 {
        let expected = busy / denom;
        if (u - expected).abs() > 1e-9 {
            out.push(err(
                rules::TA004,
                loc,
                format!("utilization reports {u} but the spans integrate to {expected}"),
            ));
        }
    }
}

/// TA005: the trace shows one dispatch per chain job, with matching kernel
/// names in order — a split ACL GEMM must show exactly its two kernels.
fn check_dispatch_count(
    groups: &[DispatchGroup<'_>],
    chain: &JobChain,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    if groups.len() != chain.len() {
        out.push(
            err(
                rules::TA005,
                loc,
                format!(
                    "trace shows {} dispatch(es) but the plan chains {} job(s)",
                    groups.len(),
                    chain.len()
                ),
            )
            .with_hint(
                "every job dispatches exactly once (Figs 3, 14, 15: the GEMM split is two kernels)",
            ),
        );
        return;
    }
    for (group, job) in groups.iter().zip(chain.jobs()) {
        if group.kernel != job.kernel().name() {
            out.push(err(
                rules::TA005,
                &format!("{loc} :: {}", group.kernel),
                format!(
                    "dispatch at {} µs traces kernel '{}' but the plan schedules '{}'",
                    group.start_us,
                    group.kernel,
                    job.kernel().name()
                ),
            ));
        }
    }
}

/// Audits one trace. `chain` enables the plan-agreement checks (TA002,
/// TA005); `report_total_us` enables the report-total cross-check in
/// TA003. Seeded-violation tests pass `None` and raw
/// [`ChainTrace::from_parts`] traces.
pub fn audit_trace(
    producer: &str,
    trace: &ChainTrace,
    chain: Option<&JobChain>,
    report_total_us: Option<f64>,
) -> Vec<Diagnostic> {
    let loc = format!("{producer} @ {}", trace.device());
    let mut out = Vec::new();
    if trace.spans().is_empty() {
        if let Some(chain) = chain {
            if !chain.is_empty() {
                out.push(err(
                    rules::TA005,
                    &loc,
                    format!("trace is empty but the plan chains {} job(s)", chain.len()),
                ));
            }
        }
        return out;
    }
    check_spans(trace, &loc, &mut out);
    check_core_schedules(trace, &loc, &mut out);
    check_total(trace, report_total_us, &loc, &mut out);
    check_utilization(trace, &loc, &mut out);
    let groups = dispatch_groups(trace.spans());
    if let Some(chain) = chain {
        check_dispatch_count(&groups, chain, &loc, &mut out);
        if groups.len() == chain.len() {
            check_conservation(&groups, chain, &loc, &mut out);
        }
    }
    out
}

/// Audits one (backend, device) cell: every layer of the grid across the
/// channel sweep, tracing each plan's chain and cross-checking against the
/// aggregate report. Returns `(diagnostics, traces audited)`.
fn audit_cell(backend_idx: usize, device: &Device) -> (Vec<Diagnostic>, usize) {
    let backend = &audited_backends()[backend_idx];
    let engine = Engine::new(device);
    let mut out = Vec::new();
    let mut audited = 0;
    for base in grid_layers() {
        for &c in GRID_CHANNELS {
            let layer = pruneperf_models::ConvLayerSpec::new(
                base.label(),
                base.kernel(),
                base.stride(),
                base.pad(),
                base.c_in(),
                c,
                base.h_in(),
                base.w_in(),
            );
            let plan = backend.plan(&layer, device);
            let trace = engine.trace_chain(plan.chain());
            let report = engine.run_chain(plan.chain());
            let producer = format!("{} / {} c_out={c}", backend.name(), layer.label());
            out.extend(audit_trace(
                &producer,
                &trace,
                Some(plan.chain()),
                Some(report.total_time_us()),
            ));
            audited += 1;
        }
    }
    (out, audited)
}

/// Runs the full trace audit: all five backends × the four paper devices ×
/// the layer grid and channel sweep, fanned out over `jobs` workers with a
/// deterministic, input-ordered reduction.
pub fn audit_trace_grid(jobs: usize) -> Report {
    let devices = Device::all_paper_devices();
    let backends = audited_backends().len();
    let cells: Vec<(usize, usize)> = (0..devices.len())
        .flat_map(|d| (0..backends).map(move |b| (d, b)))
        .collect();
    // lint: allow(hot-root) — build-time audit grid, not a serving path
    let results = sweep::ordered_parallel_map(&cells, jobs, |&(d, b)| audit_cell(b, &devices[d]));
    let mut diags = Vec::new();
    let mut audited = 0;
    for (cell_diags, cell_count) in results {
        diags.extend(cell_diags);
        audited += cell_count;
    }
    let mut report = Report::new(diags);
    report.traces_audited = audited;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclGemm, ConvBackend};
    use pruneperf_models::ConvLayerSpec;

    fn span(kernel: &str, core: usize, start: f64, end: f64, wgs: usize) -> TraceSpan {
        TraceSpan {
            kernel: kernel.to_string(),
            core,
            start_us: start,
            end_us: end,
            workgroups: wgs,
        }
    }

    fn real_trace() -> (ChainTrace, JobChain, f64) {
        let device = Device::mali_g72_hikey970();
        let layer = ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, 92, 28, 28);
        let plan = AclGemm::new().plan(&layer, &device);
        let engine = Engine::new(&device);
        let trace = engine.trace_chain(plan.chain());
        let total = engine.run_chain(plan.chain()).total_time_us();
        (trace, plan.chain().clone(), total)
    }

    #[test]
    fn real_traces_are_clean() {
        let (trace, chain, total) = real_trace();
        let diags = audit_trace("test", &trace, Some(&chain), Some(total));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn split_gemm_traces_exactly_two_dispatches() {
        // c_out = 92 sits in ACL GEMM's split regime: the plan carries two
        // gemm_mm kernels (the "two parallel staircases" of Figs 3, 14, 15)
        // and the trace must show exactly those two dispatches.
        let (trace, chain, _) = real_trace();
        assert_eq!(
            chain
                .jobs()
                .iter()
                .filter(|j| j.kernel().name() == "gemm_mm")
                .count(),
            2,
            "expected the split-GEMM regime"
        );
        let groups = dispatch_groups(trace.spans());
        assert_eq!(groups.len(), chain.len());
        assert_eq!(groups.iter().filter(|g| g.kernel == "gemm_mm").count(), 2);
    }

    /// ACL GEMM's remainder-kernel math, audited end-to-end: every
    /// `c_out % 8` residue class is planned, scheduled and re-checked
    /// against the full rule set — TA002 in particular proves the split's
    /// two dispatches conserve workgroups even when the padded column
    /// count is not a multiple of the macro-tile. (c_out = 101 used to
    /// ship a workgroup shape that did not tile its NDRange.)
    #[test]
    fn acl_gemm_residue_classes_audit_clean() {
        let device = Device::mali_g72_hikey970();
        let engine = Engine::new(&device);
        let backend = AclGemm::new();
        for c_out in 89..=104usize {
            let layer = ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, c_out, 28, 28);
            let plan = backend.plan(&layer, &device);
            let trace = engine.trace_chain(plan.chain());
            let total = engine.run_chain(plan.chain()).total_time_us();
            let producer = format!("residue c_out={c_out}");
            let diags = audit_trace(&producer, &trace, Some(plan.chain()), Some(total));
            assert!(diags.is_empty(), "c_out={c_out}: {diags:?}");
            // The split regime shows exactly two gemm_mm dispatches, the
            // single regime exactly one — visible in the trace itself.
            let expected = plan.kernels_named("gemm_mm").count();
            let groups = dispatch_groups(trace.spans());
            assert_eq!(
                groups.iter().filter(|g| g.kernel == "gemm_mm").count(),
                expected,
                "c_out={c_out}"
            );
        }
    }

    #[test]
    fn ta001_overlapping_spans_are_caught() {
        let trace = ChainTrace::from_parts(
            "synthetic",
            1,
            vec![
                span("a", 0, 0.0, 10.0, 4),
                span("b", 0, 5.0, 15.0, 4), // starts before 'a' drains
            ],
            15.0,
        );
        let diags = audit_trace("test", &trace, None, None);
        assert!(diags.iter().any(|d| d.rule == rules::TA001), "{diags:?}");

        // Out-of-order start times on one core.
        let trace = ChainTrace::from_parts(
            "synthetic",
            1,
            vec![span("a", 0, 10.0, 12.0, 1), span("b", 0, 0.0, 8.0, 1)],
            12.0,
        );
        let diags = audit_trace("test", &trace, None, None);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::TA001 && d.message.contains("before predecessor")),
            "{diags:?}"
        );
    }

    #[test]
    fn ta002_lost_workgroups_are_caught() {
        let (trace, chain, total) = real_trace();
        // Drop one workgroup from the first span.
        let mut spans = trace.spans().to_vec();
        spans[0].workgroups -= 1;
        let broken = ChainTrace::from_parts(trace.device(), trace.cores(), spans, trace.total_us());
        let diags = audit_trace("test", &broken, Some(&chain), Some(total));
        assert!(diags.iter().any(|d| d.rule == rules::TA002), "{diags:?}");
    }

    #[test]
    fn ta002_duplicate_core_in_dispatch_is_caught() {
        let chain = JobChain::from_kernels(vec![pruneperf_gpusim::KernelDesc::builder("k")
            .global([8, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10)
            .build()]);
        // Two spans for the same dispatch on the same core; workgroup sum
        // still matches, so only the duplicate-core check fires.
        let trace = ChainTrace::from_parts(
            "synthetic",
            2,
            vec![span("k", 0, 1.0, 2.0, 1), span("k", 0, 1.0, 2.0, 1)],
            2.0,
        );
        let diags = audit_trace("test", &trace, Some(&chain), None);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::TA002 && d.message.contains("twice")),
            "{diags:?}"
        );
    }

    #[test]
    fn ta003_wrong_total_is_caught() {
        let (trace, chain, total) = real_trace();
        let padded = ChainTrace::from_parts(
            trace.device(),
            trace.cores(),
            trace.spans().to_vec(),
            trace.total_us() * 1.5,
        );
        let diags = audit_trace("test", &padded, Some(&chain), Some(total));
        assert!(diags.iter().any(|d| d.rule == rules::TA003), "{diags:?}");
    }

    #[test]
    fn ta003_report_disagreement_is_caught() {
        let (trace, chain, total) = real_trace();
        let diags = audit_trace("test", &trace, Some(&chain), Some(total * 2.0));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::TA003 && d.message.contains("run_chain")),
            "{diags:?}"
        );
    }

    #[test]
    fn ta004_inflated_utilization_is_caught() {
        // Busy time exceeding cores x total drives utilization above 1.
        let trace = ChainTrace::from_parts(
            "synthetic",
            1,
            vec![span("a", 0, 0.0, 10.0, 4)],
            5.0, // total shorter than the span
        );
        let diags = audit_trace("test", &trace, None, None);
        assert!(diags.iter().any(|d| d.rule == rules::TA004), "{diags:?}");
    }

    #[test]
    fn ta005_missing_dispatch_is_caught() {
        let (trace, chain, total) = real_trace();
        // Drop the final dispatch's spans.
        let groups = dispatch_groups(trace.spans());
        let kept = trace.spans().len() - groups.last().map_or(0, |g| g.spans.len());
        let truncated = ChainTrace::from_parts(
            trace.device(),
            trace.cores(),
            trace.spans()[..kept].to_vec(),
            trace.total_us(),
        );
        let diags = audit_trace("test", &truncated, Some(&chain), Some(total));
        assert!(diags.iter().any(|d| d.rule == rules::TA005), "{diags:?}");
    }

    #[test]
    fn ta005_renamed_kernel_is_caught() {
        let (trace, chain, total) = real_trace();
        let mut spans = trace.spans().to_vec();
        let first_start = spans[0].start_us.to_bits();
        for s in &mut spans {
            if s.start_us.to_bits() == first_start {
                s.kernel = "impostor".to_string();
            }
        }
        let renamed =
            ChainTrace::from_parts(trace.device(), trace.cores(), spans, trace.total_us());
        let diags = audit_trace("test", &renamed, Some(&chain), Some(total));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == rules::TA005 && d.message.contains("impostor")),
            "{diags:?}"
        );
    }

    #[test]
    fn ta005_empty_trace_with_jobs_is_caught() {
        let (_, chain, _) = real_trace();
        let empty = ChainTrace::from_parts("synthetic", 2, Vec::new(), 0.0);
        let diags = audit_trace("test", &empty, Some(&chain), None);
        assert!(diags.iter().any(|d| d.rule == rules::TA005), "{diags:?}");
    }

    #[test]
    fn ta006_degenerate_spans_are_caught() {
        let trace = ChainTrace::from_parts(
            "synthetic",
            2,
            vec![
                span("a", 0, 5.0, 5.0, 1), // zero duration
                span("a", 1, 0.0, 4.0, 0), // zero workgroups
                span("a", 7, 0.0, 4.0, 1), // core out of range
            ],
            5.0,
        );
        let diags = audit_trace("test", &trace, None, None);
        let ta006: Vec<_> = diags.iter().filter(|d| d.rule == rules::TA006).collect();
        assert!(ta006.iter().any(|d| d.message.contains("degenerate")));
        assert!(ta006.iter().any(|d| d.message.contains("zero workgroups")));
        assert!(ta006.iter().any(|d| d.message.contains("core 7")));
    }

    #[test]
    fn empty_trace_with_empty_chain_is_clean() {
        let empty = ChainTrace::from_parts("synthetic", 2, Vec::new(), 0.0);
        assert!(audit_trace("test", &empty, Some(&JobChain::new()), None).is_empty());
        assert!(audit_trace("test", &empty, None, None).is_empty());
    }

    #[test]
    fn single_core_device_traces_pass() {
        let device = Device::jetson_nano();
        let layer = ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, 64, 28, 28);
        let plan = AclGemm::new().plan(&layer, &device);
        let engine = Engine::new(&device);
        let trace = engine.trace_chain(plan.chain());
        let total = engine.run_chain(plan.chain()).total_time_us();
        let diags = audit_trace("test", &trace, Some(plan.chain()), Some(total));
        assert!(diags.is_empty(), "{diags:?}");
    }
}

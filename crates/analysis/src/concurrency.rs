//! The concurrency-discipline rules (`CC001`–`CC007`).
//!
//! All seven rules read the [`crate::model`] function models and the
//! [`crate::callgraph`] name-resolved call graph; nothing here touches the
//! filesystem. The serving arc (ROADMAP item 1) keeps these locks held
//! under traffic for hours, so the rules encode the discipline the
//! short-lived CLI paths already follow by convention:
//!
//! - `CC001` — the workspace lock-acquisition graph (edges: "guard on A
//!   live while B is acquired, directly or through calls") has no
//!   multi-lock cycle. A cycle is a potential deadlock the moment two
//!   threads interleave.
//! - `CC002` — no guard held across a call into another lock-taking
//!   function (warning: the local form of the same hazard).
//! - `CC003` — no guard held across a parallel fan-out or unwind boundary
//!   (`ordered_parallel_map`, `contained_parallel_map`, `catch_unwind`,
//!   `spawn`, `scope`): workers block on the held lock, or the guard's
//!   panic state escapes the unwind containment.
//! - `CC004` — lock acquisitions recover from poisoning with the
//!   established `unwrap_or_else(PoisonError::into_inner)` idiom.
//! - `CC005` — `Arc<Mutex<_>>` clones handed to spawned threads carry a
//!   `// lock-order:` doc marker stating the acquisition order.
//! - `CC006` — no guard discarded with `let _ =` (it drops immediately:
//!   an empty critical section, almost always a missing `_guard`).
//! - `CC007` — no lock re-acquired while its own guard is live (with
//!   `std::sync::Mutex` this deadlocks the thread with certainty).
//!
//! Suppression markers (`// lint: allow(key) — why`, same line or the
//! line above): `lock-order` (CC001/CC007 edges), `guard-call` (CC002),
//! `guard-fanout` (CC003), `lock-unwrap` (CC004), `discard-guard`
//! (CC006). CC005's marker is the `// lock-order:` doc itself.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{lock_id_display, CallGraph, LockId};
use crate::diag::Diagnostic;
use crate::model::{FunctionModel, GuardBinding, LockSite};
use crate::rules;

/// Callee names that hand control to other threads or an unwind boundary
/// while the caller's stack frame (and any live guard) stays pinned.
const FANOUT_BOUNDARIES: &[&str] = &[
    "ordered_parallel_map",
    "ordered_parallel_map_with_stats",
    "contained_parallel_map",
    "contained_parallel_map_with_stats",
    "catch_unwind",
    "spawn",
    "scope",
];

/// Is the site at (`line`, `col`) inside the live range of guard `g`?
///
/// Same-line sites count only when they sit to the right of the
/// acquisition (the acquisition expression itself is not "under" its own
/// guard); later lines count through the guard's `scope_end`.
fn under_guard(g: &LockSite, line: usize, col: usize) -> bool {
    if matches!(g.binding, GuardBinding::Discarded) {
        return false; // dropped before anything else on the statement runs
    }
    (line == g.line && col > g.col) || (line > g.line && line <= g.scope_end)
}

/// One directed lock-order edge: a guard on `from` was live while `to`
/// was acquired, with an example site for the diagnostic.
#[derive(Debug, Clone)]
struct LockEdge {
    from: LockId,
    to: LockId,
    file: String,
    line: usize,
    via: Option<String>, // callee name when the inner acquisition is indirect
}

/// Runs all CC rules over the call graph's model.
pub fn check(graph: &CallGraph<'_>) -> Vec<Diagnostic> {
    let model = graph.model();
    let trans_locks = graph.transitive_locks();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();

    for (i, f) in model.functions.iter().enumerate() {
        check_local_rules(f, &mut diags);
        collect_guard_crossings(graph, &trans_locks, i, f, &mut diags, &mut edges);
    }
    diags.extend(cycle_diagnostics(&edges));
    diags
}

/// CC004, CC005, CC006: purely per-function checks.
fn check_local_rules(f: &FunctionModel, diags: &mut Vec<Diagnostic>) {
    for l in &f.locks {
        let loc = format!("{}:{}", f.file, l.line);
        if l.unwrapped && !l.poison_handled && !f.allows(l.line, "lock-unwrap") {
            diags.push(
                Diagnostic::new(
                    rules::CC004,
                    rules::rule_info(rules::CC004).map_or(crate::Severity::Error, |r| r.severity),
                    loc.clone(),
                    format!(
                        "`{}.{}()` is consumed by a bare unwrap/expect; a panic \
                         elsewhere poisons the lock and this site then panics too",
                        l.path,
                        l.kind.name()
                    ),
                )
                .with_hint(
                    "recover from poisoning: `.unwrap_or_else(PoisonError::into_inner)` \
                     (the workspace idiom), or mark `// lint: allow(lock-unwrap) — why`",
                ),
            );
        }
        if matches!(l.binding, GuardBinding::Discarded) && !f.allows(l.line, "discard-guard") {
            diags.push(
                Diagnostic::new(
                    rules::CC006,
                    rules::rule_info(rules::CC006).map_or(crate::Severity::Error, |r| r.severity),
                    loc,
                    format!(
                        "guard from `{}.{}()` is bound to `_` and drops immediately — \
                         the critical section is empty",
                        l.path,
                        l.kind.name()
                    ),
                )
                .with_hint(
                    "bind to `_guard` to hold the lock for the block, or mark \
                     `// lint: allow(discard-guard) — why` if the flush is intentional",
                ),
            );
        }
    }
    if !f.spawn_lines.is_empty() && !f.arc_mutex_clone_lines.is_empty() && !f.has_lock_order_doc {
        let line = f.arc_mutex_clone_lines[0];
        diags.push(
            Diagnostic::new(
                rules::CC005,
                rules::rule_info(rules::CC005).map_or(crate::Severity::Error, |r| r.severity),
                format!("{}:{}", f.file, line),
                format!(
                    "`{}` clones an Arc<Mutex<_>> into a spawned thread without a \
                     `// lock-order:` doc stating the acquisition order",
                    f.name
                ),
            )
            .with_hint(
                "add `// lock-order: <lock, then lock, …>` near the spawn so the \
                 cross-thread acquisition order is auditable",
            ),
        );
    }
}

/// CC002, CC003, CC007 plus lock-order edge collection (CC001 input):
/// everything that depends on what happens *while a guard is live*.
fn collect_guard_crossings(
    graph: &CallGraph<'_>,
    trans_locks: &[BTreeMap<LockId, (String, usize)>],
    i: usize,
    f: &FunctionModel,
    diags: &mut Vec<Diagnostic>,
    edges: &mut Vec<LockEdge>,
) {
    let model = graph.model();
    for g in &f.locks {
        let g_id: LockId = (f.file.clone(), g.path.clone());
        // Direct re-acquisitions and orderings inside the same function.
        for inner in &f.locks {
            if std::ptr::eq(g, inner) || !under_guard(g, inner.line, inner.col) {
                continue;
            }
            let inner_id: LockId = (f.file.clone(), inner.path.clone());
            if f.allows(inner.line, "lock-order") {
                continue;
            }
            if inner_id == g_id {
                diags.push(self_deadlock(f, g, inner.line, None));
            } else {
                edges.push(LockEdge {
                    from: g_id.clone(),
                    to: inner_id,
                    file: f.file.clone(),
                    line: inner.line,
                    via: None,
                });
            }
        }
        // Calls made while the guard is live.
        for call in &f.calls {
            if !under_guard(g, call.line, call.col) {
                continue;
            }
            if FANOUT_BOUNDARIES.contains(&call.name.as_str())
                && !f.allows(call.line, "guard-fanout")
            {
                diags.push(
                    Diagnostic::new(
                        rules::CC003,
                        rules::rule_info(rules::CC003)
                            .map_or(crate::Severity::Error, |r| r.severity),
                        format!("{}:{}", f.file, call.line),
                        format!(
                            "guard on `{}` (acquired at line {}) is held across \
                             `{}`, a parallel fan-out / unwind boundary",
                            g.path, g.line, call.name
                        ),
                    )
                    .with_hint(
                        "drop the guard (or copy what you need out of it) before \
                         fanning out; workers blocking on a held lock serialize the \
                         sweep or deadlock it",
                    ),
                );
            }
            // Same-line calls after the accessor are the acquisition/deref
            // chain (`.unwrap_or_else(…)`, a chained method on the guarded
            // data), and a call whose receiver is a live named guard also
            // targets the guarded data — neither can reach a workspace
            // lock, so neither feeds the interprocedural rules.
            if call.line == g.line {
                continue;
            }
            let on_guard_data = f.locks.iter().any(|l| {
                under_guard(l, call.line, call.col)
                    && matches!(
                        &l.binding,
                        GuardBinding::Named(n) if Some(n.as_str()) == call.recv.as_deref()
                    )
            });
            if on_guard_data {
                continue;
            }
            // Interprocedural: what might the callee lock?
            let mut callee_hits: BTreeMap<LockId, (String, usize, String)> = BTreeMap::new();
            for &(callee, _) in graph.callees(i) {
                if model.functions[callee].name != call.name {
                    continue;
                }
                for (id, site) in &trans_locks[callee] {
                    callee_hits.entry(id.clone()).or_insert((
                        site.0.clone(),
                        site.1,
                        model.functions[callee].name.clone(),
                    ));
                }
            }
            let mut warned_cc002 = false;
            for (id, (_, _, callee_name)) in &callee_hits {
                if f.allows(call.line, "lock-order") {
                    continue;
                }
                if *id == g_id {
                    diags.push(self_deadlock(f, g, call.line, Some(callee_name)));
                } else {
                    edges.push(LockEdge {
                        from: g_id.clone(),
                        to: id.clone(),
                        file: f.file.clone(),
                        line: call.line,
                        via: Some(callee_name.clone()),
                    });
                    if !warned_cc002 && !f.allows(call.line, "guard-call") {
                        warned_cc002 = true;
                        diags.push(
                            Diagnostic::new(
                                rules::CC002,
                                rules::rule_info(rules::CC002)
                                    .map_or(crate::Severity::Error, |r| r.severity),
                                format!("{}:{}", f.file, call.line),
                                format!(
                                    "guard on `{}` (acquired at line {}) is held across a \
                                     call to `{}`, which may acquire `{}`",
                                    g.path,
                                    g.line,
                                    call.name,
                                    lock_id_display(id)
                                ),
                            )
                            .with_hint(
                                "drop the guard before calling out, or mark \
                                 `// lint: allow(guard-call) — why` if the nesting \
                                 order is globally consistent",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// A CC007 diagnostic: the same lock acquired while its own guard lives.
fn self_deadlock(f: &FunctionModel, g: &LockSite, line: usize, via: Option<&str>) -> Diagnostic {
    let how = via.map_or_else(
        || "re-acquired directly".to_string(),
        |callee| format!("re-acquired through a call to `{callee}`"),
    );
    Diagnostic::new(
        rules::CC007,
        rules::rule_info(rules::CC007).map_or(crate::Severity::Error, |r| r.severity),
        format!("{}:{line}", f.file),
        format!(
            "lock `{}` is {how} while its own guard (line {}) is still live — \
             this self-deadlocks with std::sync::Mutex",
            g.path, g.line
        ),
    )
    .with_hint(
        "drop the guard first (`drop(guard)`), or restructure so the inner path \
         receives the guard instead of re-locking; mark `// lint: allow(lock-order)` \
         only if the receivers are provably distinct instances",
    )
}

/// CC001: strongly connected components with ≥ 2 nodes in the lock-order
/// edge set are reported as potential deadlocks, one diagnostic per
/// component.
fn cycle_diagnostics(edges: &[LockEdge]) -> Vec<Diagnostic> {
    // Dedupe edges between distinct ids, keeping the first example.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut example: BTreeMap<(String, String), (String, usize, Option<String>)> = BTreeMap::new();
    for e in edges {
        let from = lock_id_display(&e.from);
        let to = lock_id_display(&e.to);
        adj.entry(from.clone()).or_default().insert(to.clone());
        adj.entry(to.clone()).or_default();
        example
            .entry((from, to))
            .or_insert((e.file.clone(), e.line, e.via.clone()));
    }
    let mut diags = Vec::new();
    for comp in strongly_connected(&adj) {
        if comp.len() < 2 {
            continue;
        }
        let mut parts: Vec<String> = Vec::new();
        for from in &comp {
            for to in &comp {
                if let Some((file, line, via)) = example.get(&(from.clone(), to.clone())) {
                    let via_note = via
                        .as_ref()
                        .map(|v| format!(" via `{v}`"))
                        .unwrap_or_default();
                    parts.push(format!("`{from}` → `{to}` at {file}:{line}{via_note}"));
                }
            }
        }
        let first_site = comp
            .iter()
            .flat_map(|from| comp.iter().map(move |to| (from.clone(), to.clone())))
            .filter_map(|k| example.get(&k))
            .map(|(file, line, _)| format!("{file}:{line}"))
            .min()
            .unwrap_or_default();
        diags.push(
            Diagnostic::new(
                rules::CC001,
                rules::rule_info(rules::CC001).map_or(crate::Severity::Error, |r| r.severity),
                first_site,
                format!(
                    "lock-order cycle between {{{}}}: {}",
                    comp.join(", "),
                    parts.join("; ")
                ),
            )
            .with_hint(
                "pick one global acquisition order for these locks and enforce it at \
                 every site (document it with `// lock-order:`); a cycle deadlocks the \
                 moment two threads interleave",
            ),
        );
    }
    diags
}

/// Iterative Tarjan SCC over the string-keyed adjacency map, returning
/// each component as a sorted list of node names, components sorted by
/// their first node.
fn strongly_connected(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let nodes: Vec<&String> = adj.keys().collect();
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<String>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over its successors).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, pos)) = dfs.last() {
            if index[v] == usize::MAX {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = adj[nodes[v]]
                .iter()
                .filter_map(|s| index_of.get(s.as_str()).copied())
                .collect();
            if pos < succs.len() {
                if let Some(top) = dfs.last_mut() {
                    top.1 += 1;
                }
                let w = succs[pos];
                if index[w] == usize::MAX {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp: Vec<String> = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(nodes[w].clone());
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    comps.push(comp);
                }
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comps.sort();
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self, SourceModel};

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let functions = model::model_file("lib.rs", src);
        let m = SourceModel {
            functions,
            facts: Vec::new(),
            files: 1,
        };
        let g = CallGraph::build(&m);
        check(&g)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_lock_discipline_passes() {
        let src = "\
fn f(&self) {
    let mut table = self.shard(d).lock().unwrap_or_else(PoisonError::into_inner);
    table.insert(k, v);
    drop(table);
    self.publish();
}
fn publish(&self) { }
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn cc001_detects_lock_order_cycles() {
        let src = "\
fn ab(&self) {
    let a = self.a.lock().unwrap_or_else(PoisonError::into_inner);
    let b = self.b.lock().unwrap_or_else(PoisonError::into_inner);
    drop(b);
    drop(a);
}
fn ba(&self) {
    let b = self.b.lock().unwrap_or_else(PoisonError::into_inner);
    let a = self.a.lock().unwrap_or_else(PoisonError::into_inner);
    drop(a);
    drop(b);
}
";
        let diags = diags_for(src);
        assert!(rules_of(&diags).contains(&rules::CC001), "{diags:?}");
    }

    #[test]
    fn cc002_warns_on_call_under_guard_into_locker() {
        let src = "\
fn outer(&self) {
    let g = self.a.lock().unwrap_or_else(PoisonError::into_inner);
    self.locker();
    drop(g);
}
fn locker(&self) {
    let h = self.b.lock().unwrap_or_else(PoisonError::into_inner);
    drop(h);
}
";
        let diags = diags_for(src);
        assert!(rules_of(&diags).contains(&rules::CC002), "{diags:?}");
        // A one-way nesting is not a cycle.
        assert!(!rules_of(&diags).contains(&rules::CC001), "{diags:?}");
    }

    #[test]
    fn cc003_flags_guard_across_fanout() {
        let src = "\
fn f(&self, items: &[u32]) {
    let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    let out = ordered_parallel_map(items, 4, |x| x + 1);
    drop(g);
}
";
        let diags = diags_for(src);
        assert_eq!(rules_of(&diags), vec![rules::CC003], "{diags:?}");
    }

    #[test]
    fn cc004_flags_bare_lock_unwrap() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap(); drop(g); }\n";
        let diags = diags_for(src);
        assert!(rules_of(&diags).contains(&rules::CC004), "{diags:?}");
        let marked =
            "fn f(&self) { let g = self.m.lock().unwrap(); drop(g); } // lint: allow(lock-unwrap) — test\n";
        assert!(diags_for(marked).is_empty());
    }

    #[test]
    fn cc005_requires_lock_order_doc_on_cross_thread_clones() {
        let src = "\
fn f() {
    let shared: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
    let clone = shared.clone();
    std::thread::spawn(move || use_it(clone));
}
";
        let diags = diags_for(src);
        assert_eq!(rules_of(&diags), vec![rules::CC005], "{diags:?}");
        let documented = src.replace(
            "let clone = shared.clone();",
            "// lock-order: shared only, no nesting\n    let clone = shared.clone();",
        );
        assert!(diags_for(&documented).is_empty());
    }

    #[test]
    fn cc006_flags_discarded_guards() {
        let src = "fn f(&self) { let _ = self.m.lock(); }\n";
        let diags = diags_for(src);
        assert_eq!(rules_of(&diags), vec![rules::CC006], "{diags:?}");
    }

    #[test]
    fn cc007_flags_direct_and_indirect_self_deadlock() {
        let direct = "\
fn f(&self) {
    let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    let h = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    drop(h);
    drop(g);
}
";
        assert!(rules_of(&diags_for(direct)).contains(&rules::CC007));
        let indirect = "\
fn f(&self) {
    let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    self.helper();
    drop(g);
}
fn helper(&self) {
    let h = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    drop(h);
}
";
        assert!(rules_of(&diags_for(indirect)).contains(&rules::CC007));
    }

    #[test]
    fn methods_on_the_guard_itself_are_not_lock_taking_calls() {
        // `table.clear()` is HashMap::clear on the guarded data, even
        // though the workspace has a lock-taking `clear()` — the guard
        // receiver must shield it from name resolution.
        let src = "\
fn wipe(&self) {
    let mut table = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
    table.clear();
    drop(table);
}
fn clear(&self) {
    self.shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn guard_scope_ends_at_drop() {
        let src = "\
fn f(&self, items: &[u32]) {
    let g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    drop(g);
    let out = ordered_parallel_map(items, 4, |x| x + 1);
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn scc_finds_two_cycles() {
        let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut edge = |a: &str, b: &str| {
            adj.entry(a.into()).or_default().insert(b.into());
            adj.entry(b.into()).or_default();
        };
        edge("a", "b");
        edge("b", "a");
        edge("c", "d");
        edge("d", "c");
        edge("a", "c");
        let comps: Vec<Vec<String>> = strongly_connected(&adj)
            .into_iter()
            .filter(|c| c.len() > 1)
            .collect();
        assert_eq!(comps, vec![vec!["a", "b"], vec!["c", "d"]]);
    }
}

//! The rule catalog: every check either layer can emit, with a stable id.
//!
//! Ids are load-bearing — they appear in JSON output, CI logs, tests and
//! `DESIGN.md` — so they are append-only: never renumber, never reuse.
//!
//! To add a rule: pick the next free id in the right family (see
//! [`FAMILIES`]), add a [`RuleInfo`] row here, implement the check in
//! [`crate::plan_audit`] / [`crate::source_lint`] /
//! [`crate::network_verify`] / [`crate::trace_audit`] /
//! [`crate::concurrency`] / [`crate::panic_path`] /
//! [`crate::hotpath`] / [`crate::resource`] citing the id, and
//! add at least one test that seeds a violation.

use crate::diag::Severity;

/// Catalog row for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable id (`PA…` = plan audit, `SL…` = source lint,
    /// `NV…` = network dataflow verifier, `TA…` = schedule-trace auditor,
    /// `CC…` = concurrency discipline, `PN…` = panic-path reachability,
    /// `PF…` = hot-path performance, `RB…` = resource bounds).
    pub id: &'static str,
    /// Default severity of a violation.
    pub severity: Severity,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// ACL GEMM splits `gemm_mm` into main + own-submission remainder kernels
/// exactly when the vec4 column-group parity rule says so (Tables I–IV).
pub const PA001: &str = "PA001";
/// ACL Direct's workgroup equals the Table V divisibility heuristic and
/// edge lanes are predicated off (active accounting).
pub const PA002: &str = "PA002";
/// NDRange extents are positive and `local` divides the padded `global`;
/// exact-tiling kernels divide the raw `global`.
pub const PA003: &str = "PA003";
/// `executed_items >= active_items` and instruction totals match the
/// kernel's padded/active accounting mode.
pub const PA004: &str = "PA004";
/// Job chains are non-empty and every plan binds a positive memory
/// footprint (the §III-C1 interceptor observes one for every kernel).
pub const PA005: &str = "PA005";
/// Staircase step edges are monotone: covered output channels never
/// decrease as the channel count grows (within one algorithm choice).
pub const PA006: &str = "PA006";
/// cuDNN tiles output channels in 32-wide N-tiles with 32-thread blocks,
/// and Winograd is gated to 3×3 stride-1 layers with ≥ 256 input channels.
pub const PA007: &str = "PA007";
/// ACL auto picks GEMM iff the GEMM working set fits the GPU heap
/// (§IV-A2), and the emitted chain matches the choice.
pub const PA008: &str = "PA008";
/// No workgroup exceeds the device's resident-thread capacity.
pub const PA009: &str = "PA009";
/// TVM emits a single fused kernel; tuned schedules use the GEMM-style
/// 4×4 tiling, fallback schedules the direct-style shape with active
/// accounting.
pub const PA010: &str = "PA010";

/// No wall-clock reads (`Instant`/`SystemTime`) in simulator or profiler
/// paths — time must come from the deterministic engine.
pub const SL001: &str = "SL001";
/// No ad-hoc RNG (`thread_rng`, `from_entropy`) — randomness must be
/// seeded and explicit.
pub const SL002: &str = "SL002";
/// No `HashMap`/`HashSet` iteration feeding ordered output or float
/// accumulation — iteration order is run-to-run nondeterministic.
pub const SL003: &str = "SL003";
/// Every crate root carries `#![forbid(unsafe_code)]`.
pub const SL004: &str = "SL004";
/// No `unwrap()`/`expect()` in non-test library code outside the
/// allowlist; provably-infallible sites carry a `// lint: allow(unwrap)`
/// marker.
pub const SL005: &str = "SL005";
/// Public items in `gpusim` and `backends` carry doc comments.
pub const SL006: &str = "SL006";
/// No direct `==`/`!=` comparison against float literals outside
/// `// lint: allow(float-eq)` sites — exact float equality is a
/// determinism and portability hazard.
pub const SL007: &str = "SL007";

/// Conv output channels propagate: every convolution's input channels
/// equal the channel count produced by the preceding op.
pub const NV001: &str = "NV001";
/// Spatial geometry propagates: each op's declared input extent matches
/// the propagated extent, and pool windows fit their input.
pub const NV002: &str = "NV002";
/// Residual blocks stay shape-consistent: body output and shortcut output
/// agree in extent and channels, and projections consume the block input.
pub const NV003: &str = "NV003";
/// Pruning-plan keeps are valid: every target layer exists and keeps
/// within `1..=C` of its original output channels.
pub const NV004: &str = "NV004";
/// Paired input-side pruning is applied downstream: a coupled network
/// shrinks each consumer's input channels to the producer's kept count.
pub const NV005: &str = "NV005";
/// Reported `total_flops`/`flops_breakdown` equal independently
/// recomputed values for the (possibly pruned) assembly.
pub const NV006: &str = "NV006";
/// Classifier-head geometry: the final FC consumes the flattened feature
/// extent and emits exactly the label count.
pub const NV007: &str = "NV007";
/// Peak per-op working set (activations + conv weights) fits the
/// device's GPU heap.
pub const NV008: &str = "NV008";

/// The workspace lock-acquisition graph is free of multi-lock cycles
/// (no lock-order inversion → no potential deadlock).
pub const CC001: &str = "CC001";
/// No lock guard is held across a call into another lock-taking
/// function — drop the guard (or restructure) before calling out.
pub const CC002: &str = "CC002";
/// No lock guard is held across a parallel fan-out or unwind boundary
/// (`ordered_parallel_map`, `contained_parallel_map`, `catch_unwind`,
/// `spawn`, `scope`).
pub const CC003: &str = "CC003";
/// Lock acquisitions recover from poisoning via
/// `unwrap_or_else(PoisonError::into_inner)` — never a bare
/// `lock().unwrap()`.
pub const CC004: &str = "CC004";
/// `Arc<Mutex<_>>`/`Arc<RwLock<_>>` values cloned into spawned threads
/// carry a `// lock-order:` doc marker stating the acquisition order.
pub const CC005: &str = "CC005";
/// No lock guard is discarded with `let _ =` — the guard drops
/// immediately, so the critical section is empty.
pub const CC006: &str = "CC006";
/// No lock is re-acquired (directly or through calls) while its own
/// guard is still live — a guaranteed self-deadlock with `Mutex`.
pub const CC007: &str = "CC007";

/// No unmarked `unwrap()`/`expect()` transitively reachable from the
/// fallible API surface (`try_cost`, `try_measure`, `try_run`,
/// `latency_curve_partial`, `with_retry`).
pub const PN001: &str = "PN001";
/// No panicking macro (`panic!`, `assert!`, …) transitively reachable
/// from the fallible API surface.
pub const PN002: &str = "PN002";
/// No unmarked slice/array indexing or div-by-`len()` transitively
/// reachable from the fallible API surface.
pub const PN003: &str = "PN003";

/// No unmarked heap allocation (`Vec::new`, `vec!`, `Box::new`,
/// `collect`, …) inside a loop body on a hot path (reachable from the
/// serving/search roots).
pub const PF001: &str = "PF001";
/// No per-iteration string formatting (`format!`, `to_string`,
/// `String::from`) inside a hot loop body.
pub const PF002: &str = "PF002";
/// No `clone()` of a modeled (non-`Arc`) value inside a hot loop body.
pub const PF003: &str = "PF003";
/// No `push`/`insert` growth inside a hot loop into a local collection
/// bound without `with_capacity` and never `reserve`d.
pub const PF004: &str = "PF004";
/// No repeated `lock()`/`read()`/`write()` acquisition inside a hot loop
/// body — hoist the guard outside the loop.
pub const PF005: &str = "PF005";
/// No hot loop body calling an unmemoized engine entry point
/// (`run_chain`, `run_chain_with`, `simulate_chain`) — route through the
/// cache/memo layers instead.
pub const PF006: &str = "PF006";

/// No grow-only struct-field collection: a field receiving
/// `push`/`insert`/`extend` somewhere in the workspace must have a
/// reachable `remove`/`pop`/`clear`/`truncate`/eviction site too.
pub const RB001: &str = "RB001";
/// No unbounded channel construction (`channel()`, `unbounded()`) —
/// use a bounded/sync variant so backpressure exists.
pub const RB002: &str = "RB002";
/// Every cache-like struct (`*Cache`, `*Memo`) carries a capacity policy
/// (eviction method, shrink site or capacity-limit field) or a reviewed
/// `lint: allow(cache-bound)` justification.
pub const RB003: &str = "RB003";
/// No self-recursion without a depth/fuel-style bound on the fallible
/// API surface.
pub const RB004: &str = "RB004";

/// Per-core spans are disjoint with non-decreasing start times.
pub const TA001: &str = "TA001";
/// Workgroup conservation: span workgroups per dispatch sum to the
/// kernel's NDRange workgroup count.
pub const TA002: &str = "TA002";
/// `total_us` equals the max span finish time and the aggregate
/// `run_chain` report total.
pub const TA003: &str = "TA003";
/// Utilization lies in (0, 1] and matches busy/(cores × total).
pub const TA004: &str = "TA004";
/// Trace dispatch count and kernel names match the dispatch plan (a
/// two-kernel GEMM split shows exactly two kernels — Figs 3, 14, 15).
pub const TA005: &str = "TA005";
/// No empty or negative spans: positive duration, in-range core index,
/// at least one workgroup.
pub const TA006: &str = "TA006";

/// Every rule either layer can emit.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: PA001,
        severity: Severity::Error,
        summary: "ACL GEMM two-kernel split fires iff the column-group parity rule says so",
    },
    RuleInfo {
        id: PA002,
        severity: Severity::Error,
        summary: "ACL Direct workgroup matches the Table V divisibility heuristic",
    },
    RuleInfo {
        id: PA003,
        severity: Severity::Error,
        summary: "local NDRange dims divide the padded global dims",
    },
    RuleInfo {
        id: PA004,
        severity: Severity::Error,
        summary: "executed_items >= active_items with consistent padded accounting",
    },
    RuleInfo {
        id: PA005,
        severity: Severity::Error,
        summary: "job chains are non-empty with positive memory footprints",
    },
    RuleInfo {
        id: PA006,
        severity: Severity::Error,
        summary: "staircase step edges are monotone in the channel count",
    },
    RuleInfo {
        id: PA007,
        severity: Severity::Error,
        summary: "cuDNN 32-channel N-tiling and Winograd gating hold",
    },
    RuleInfo {
        id: PA008,
        severity: Severity::Error,
        summary: "ACL auto method choice follows the GPU-heap memory rule",
    },
    RuleInfo {
        id: PA009,
        severity: Severity::Error,
        summary: "workgroups fit the device's resident-thread capacity",
    },
    RuleInfo {
        id: PA010,
        severity: Severity::Error,
        summary: "TVM emits a single fused kernel matching its schedule kind",
    },
    RuleInfo {
        id: SL001,
        severity: Severity::Error,
        summary: "no wall-clock reads in simulator/profiler paths",
    },
    RuleInfo {
        id: SL002,
        severity: Severity::Error,
        summary: "no ad-hoc RNG outside seeded, explicit generators",
    },
    RuleInfo {
        id: SL003,
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration feeding ordered output or float sums",
    },
    RuleInfo {
        id: SL004,
        severity: Severity::Error,
        summary: "every crate root forbids unsafe code",
    },
    RuleInfo {
        id: SL005,
        severity: Severity::Warning,
        summary: "no unmarked unwrap()/expect() in non-test library code",
    },
    RuleInfo {
        id: SL006,
        severity: Severity::Warning,
        summary: "public items in gpusim/backends carry doc comments",
    },
    RuleInfo {
        id: SL007,
        severity: Severity::Error,
        summary: "no unmarked ==/!= comparisons against float literals",
    },
    RuleInfo {
        id: NV001,
        severity: Severity::Error,
        summary: "conv input channels equal the propagated producer channels",
    },
    RuleInfo {
        id: NV002,
        severity: Severity::Error,
        summary: "spatial extents propagate and pool windows fit their input",
    },
    RuleInfo {
        id: NV003,
        severity: Severity::Error,
        summary: "residual body and shortcut agree in extent and channels",
    },
    RuleInfo {
        id: NV004,
        severity: Severity::Error,
        summary: "pruning keeps target existing layers within 1..=C",
    },
    RuleInfo {
        id: NV005,
        severity: Severity::Error,
        summary: "paired input-side pruning is applied to every consumer",
    },
    RuleInfo {
        id: NV006,
        severity: Severity::Error,
        summary: "reported FLOPs equal independently recomputed values",
    },
    RuleInfo {
        id: NV007,
        severity: Severity::Error,
        summary: "classifier head matches flattened features and label count",
    },
    RuleInfo {
        id: NV008,
        severity: Severity::Error,
        summary: "peak per-op working set fits the device GPU heap",
    },
    RuleInfo {
        id: CC001,
        severity: Severity::Error,
        summary: "the workspace lock-acquisition graph has no multi-lock cycle",
    },
    RuleInfo {
        id: CC002,
        severity: Severity::Warning,
        summary: "no guard held across a call into another lock-taking function",
    },
    RuleInfo {
        id: CC003,
        severity: Severity::Error,
        summary: "no guard held across a parallel fan-out or unwind boundary",
    },
    RuleInfo {
        id: CC004,
        severity: Severity::Error,
        summary: "lock acquisitions recover from poisoning, never lock().unwrap()",
    },
    RuleInfo {
        id: CC005,
        severity: Severity::Warning,
        summary: "Arc<Mutex<_>> clones crossing spawn carry a lock-order: doc",
    },
    RuleInfo {
        id: CC006,
        severity: Severity::Error,
        summary: "no guard discarded with let _ = (empty critical section)",
    },
    RuleInfo {
        id: CC007,
        severity: Severity::Error,
        summary: "no lock re-acquired while its own guard is live",
    },
    RuleInfo {
        id: PN001,
        severity: Severity::Error,
        summary: "no unmarked unwrap()/expect() reachable from the fallible API",
    },
    RuleInfo {
        id: PN002,
        severity: Severity::Error,
        summary: "no panicking macro reachable from the fallible API",
    },
    RuleInfo {
        id: PN003,
        severity: Severity::Error,
        summary: "no unmarked indexing or div-by-len reachable from the fallible API",
    },
    RuleInfo {
        id: PF001,
        severity: Severity::Warning,
        summary: "no unmarked heap allocation inside a hot loop body",
    },
    RuleInfo {
        id: PF002,
        severity: Severity::Warning,
        summary: "no per-iteration string formatting inside a hot loop body",
    },
    RuleInfo {
        id: PF003,
        severity: Severity::Warning,
        summary: "no clone() of a modeled value inside a hot loop body",
    },
    RuleInfo {
        id: PF004,
        severity: Severity::Warning,
        summary: "no unreserved push growth into a local collection in a hot loop",
    },
    RuleInfo {
        id: PF005,
        severity: Severity::Warning,
        summary: "no repeated lock acquisition inside a hot loop body",
    },
    RuleInfo {
        id: PF006,
        severity: Severity::Error,
        summary: "no hot loop calling an unmemoized engine entry point",
    },
    RuleInfo {
        id: RB001,
        severity: Severity::Error,
        summary: "no grow-only struct-field collection without a shrink site",
    },
    RuleInfo {
        id: RB002,
        severity: Severity::Warning,
        summary: "no unbounded channel construction",
    },
    RuleInfo {
        id: RB003,
        severity: Severity::Warning,
        summary: "cache-like structs carry a capacity policy or justification",
    },
    RuleInfo {
        id: RB004,
        severity: Severity::Error,
        summary: "no unbounded self-recursion on the fallible API surface",
    },
    RuleInfo {
        id: TA001,
        severity: Severity::Error,
        summary: "per-core spans are disjoint with non-decreasing starts",
    },
    RuleInfo {
        id: TA002,
        severity: Severity::Error,
        summary: "span workgroups per dispatch sum to the NDRange count",
    },
    RuleInfo {
        id: TA003,
        severity: Severity::Error,
        summary: "total_us equals the max span finish and the report total",
    },
    RuleInfo {
        id: TA004,
        severity: Severity::Error,
        summary: "utilization lies in (0,1] and matches busy/(cores*total)",
    },
    RuleInfo {
        id: TA005,
        severity: Severity::Error,
        summary: "trace dispatches match the plan's kernel count and names",
    },
    RuleInfo {
        id: TA006,
        severity: Severity::Error,
        summary: "no empty/negative spans; core index and workgroups in range",
    },
];

/// The rule-id families this catalog may contain, keyed by prefix.
///
/// `FAMILIES` is the single source of truth for the compile-time-checked
/// uniqueness test below: a new family must be registered here before its
/// rules can land in [`CATALOG`].
pub const FAMILIES: &[(&str, &str)] = &[
    ("PA", "plan audit"),
    ("SL", "source lint"),
    ("NV", "network dataflow verifier"),
    ("TA", "schedule-trace auditor"),
    ("CC", "concurrency discipline"),
    ("PN", "panic-path reachability"),
    ("PF", "hot-path performance"),
    ("RB", "resource bounds"),
];

/// Looks up a rule's catalog row.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    CATALOG.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_well_formed() {
        for (i, r) in CATALOG.iter().enumerate() {
            assert!(
                FAMILIES.iter().any(|(p, _)| r.id.starts_with(p)),
                "{} matches no registered family prefix",
                r.id
            );
            assert_eq!(r.id.len(), 5, "{}", r.id);
            assert!(
                r.id[2..].chars().all(|c| c.is_ascii_digit()),
                "{} suffix must be numeric",
                r.id
            );
            for other in &CATALOG[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
    }

    #[test]
    fn every_family_has_rules_and_every_rule_a_family() {
        for (prefix, name) in FAMILIES {
            assert!(
                CATALOG.iter().any(|r| r.id.starts_with(prefix)),
                "family {prefix} ({name}) has no rules"
            );
        }
        // Ids within a family are dense from 001 so gaps flag a typo.
        for (prefix, _) in FAMILIES {
            let mut nums: Vec<u32> = CATALOG
                .iter()
                .filter(|r| r.id.starts_with(prefix))
                .map(|r| r.id[2..].parse().expect("numeric suffix"))
                .collect();
            nums.sort_unstable();
            for (i, n) in nums.iter().enumerate() {
                assert_eq!(*n as usize, i + 1, "{prefix} ids must be dense from 001");
            }
        }
    }

    #[test]
    fn lookup_finds_rules() {
        assert_eq!(rule_info(PA001).map(|r| r.severity), Some(Severity::Error));
        assert_eq!(
            rule_info(SL005).map(|r| r.severity),
            Some(Severity::Warning)
        );
        assert!(rule_info("ZZ999").is_none());
    }

    #[test]
    fn at_least_six_plan_rules() {
        // The acceptance floor for paper-derived plan invariants.
        assert!(CATALOG.iter().filter(|r| r.id.starts_with("PA")).count() >= 6);
    }
}

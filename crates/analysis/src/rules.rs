//! The rule catalog: every check either layer can emit, with a stable id.
//!
//! Ids are load-bearing — they appear in JSON output, CI logs, tests and
//! `DESIGN.md` — so they are append-only: never renumber, never reuse.
//!
//! To add a rule: pick the next free id in the right family, add a
//! [`RuleInfo`] row here, implement the check in
//! [`crate::plan_audit`] / [`crate::source_lint`] citing the id, and add at
//! least one test that seeds a violation.

use crate::diag::Severity;

/// Catalog row for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable id (`PA…` = plan audit, `SL…` = source lint).
    pub id: &'static str,
    /// Default severity of a violation.
    pub severity: Severity,
    /// One-line statement of the invariant.
    pub summary: &'static str,
}

/// ACL GEMM splits `gemm_mm` into main + own-submission remainder kernels
/// exactly when the vec4 column-group parity rule says so (Tables I–IV).
pub const PA001: &str = "PA001";
/// ACL Direct's workgroup equals the Table V divisibility heuristic and
/// edge lanes are predicated off (active accounting).
pub const PA002: &str = "PA002";
/// NDRange extents are positive and `local` divides the padded `global`;
/// exact-tiling kernels divide the raw `global`.
pub const PA003: &str = "PA003";
/// `executed_items >= active_items` and instruction totals match the
/// kernel's padded/active accounting mode.
pub const PA004: &str = "PA004";
/// Job chains are non-empty and every plan binds a positive memory
/// footprint (the §III-C1 interceptor observes one for every kernel).
pub const PA005: &str = "PA005";
/// Staircase step edges are monotone: covered output channels never
/// decrease as the channel count grows (within one algorithm choice).
pub const PA006: &str = "PA006";
/// cuDNN tiles output channels in 32-wide N-tiles with 32-thread blocks,
/// and Winograd is gated to 3×3 stride-1 layers with ≥ 256 input channels.
pub const PA007: &str = "PA007";
/// ACL auto picks GEMM iff the GEMM working set fits the GPU heap
/// (§IV-A2), and the emitted chain matches the choice.
pub const PA008: &str = "PA008";
/// No workgroup exceeds the device's resident-thread capacity.
pub const PA009: &str = "PA009";
/// TVM emits a single fused kernel; tuned schedules use the GEMM-style
/// 4×4 tiling, fallback schedules the direct-style shape with active
/// accounting.
pub const PA010: &str = "PA010";

/// No wall-clock reads (`Instant`/`SystemTime`) in simulator or profiler
/// paths — time must come from the deterministic engine.
pub const SL001: &str = "SL001";
/// No ad-hoc RNG (`thread_rng`, `from_entropy`) — randomness must be
/// seeded and explicit.
pub const SL002: &str = "SL002";
/// No `HashMap`/`HashSet` iteration feeding ordered output or float
/// accumulation — iteration order is run-to-run nondeterministic.
pub const SL003: &str = "SL003";
/// Every crate root carries `#![forbid(unsafe_code)]`.
pub const SL004: &str = "SL004";
/// No `unwrap()`/`expect()` in non-test library code outside the
/// allowlist; provably-infallible sites carry a `// lint: allow(unwrap)`
/// marker.
pub const SL005: &str = "SL005";
/// Public items in `gpusim` and `backends` carry doc comments.
pub const SL006: &str = "SL006";

/// Every rule either layer can emit.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: PA001,
        severity: Severity::Error,
        summary: "ACL GEMM two-kernel split fires iff the column-group parity rule says so",
    },
    RuleInfo {
        id: PA002,
        severity: Severity::Error,
        summary: "ACL Direct workgroup matches the Table V divisibility heuristic",
    },
    RuleInfo {
        id: PA003,
        severity: Severity::Error,
        summary: "local NDRange dims divide the padded global dims",
    },
    RuleInfo {
        id: PA004,
        severity: Severity::Error,
        summary: "executed_items >= active_items with consistent padded accounting",
    },
    RuleInfo {
        id: PA005,
        severity: Severity::Error,
        summary: "job chains are non-empty with positive memory footprints",
    },
    RuleInfo {
        id: PA006,
        severity: Severity::Error,
        summary: "staircase step edges are monotone in the channel count",
    },
    RuleInfo {
        id: PA007,
        severity: Severity::Error,
        summary: "cuDNN 32-channel N-tiling and Winograd gating hold",
    },
    RuleInfo {
        id: PA008,
        severity: Severity::Error,
        summary: "ACL auto method choice follows the GPU-heap memory rule",
    },
    RuleInfo {
        id: PA009,
        severity: Severity::Error,
        summary: "workgroups fit the device's resident-thread capacity",
    },
    RuleInfo {
        id: PA010,
        severity: Severity::Error,
        summary: "TVM emits a single fused kernel matching its schedule kind",
    },
    RuleInfo {
        id: SL001,
        severity: Severity::Error,
        summary: "no wall-clock reads in simulator/profiler paths",
    },
    RuleInfo {
        id: SL002,
        severity: Severity::Error,
        summary: "no ad-hoc RNG outside seeded, explicit generators",
    },
    RuleInfo {
        id: SL003,
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration feeding ordered output or float sums",
    },
    RuleInfo {
        id: SL004,
        severity: Severity::Error,
        summary: "every crate root forbids unsafe code",
    },
    RuleInfo {
        id: SL005,
        severity: Severity::Warning,
        summary: "no unmarked unwrap()/expect() in non-test library code",
    },
    RuleInfo {
        id: SL006,
        severity: Severity::Warning,
        summary: "public items in gpusim/backends carry doc comments",
    },
];

/// Looks up a rule's catalog row.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    CATALOG.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_well_formed() {
        for (i, r) in CATALOG.iter().enumerate() {
            assert!(r.id.starts_with("PA") || r.id.starts_with("SL"), "{}", r.id);
            assert_eq!(r.id.len(), 5, "{}", r.id);
            for other in &CATALOG[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
    }

    #[test]
    fn lookup_finds_rules() {
        assert_eq!(rule_info(PA001).map(|r| r.severity), Some(Severity::Error));
        assert_eq!(
            rule_info(SL005).map(|r| r.severity),
            Some(Severity::Warning)
        );
        assert!(rule_info("ZZ999").is_none());
    }

    #[test]
    fn at_least_six_plan_rules() {
        // The acceptance floor for paper-derived plan invariants.
        assert!(CATALOG.iter().filter(|r| r.id.starts_with("PA")).count() >= 6);
    }
}

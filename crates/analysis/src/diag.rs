//! The structured-diagnostics core shared by both analysis layers.
//!
//! Every check — a paper invariant over a [`pruneperf_backends::DispatchPlan`]
//! or a source lint over a file — reports through the same [`Diagnostic`]
//! shape: a stable rule id, a severity, a location, a message and an
//! optional fix hint. A [`Report`] collects them, sorts them into a single
//! canonical order (so parallel analysis is byte-identical to sequential)
//! and renders either a human listing or JSON.
//!
//! JSON is rendered by hand rather than through serde: the output is a
//! golden artifact compared byte-for-byte across worker counts and runs, so
//! the writer keeps full control of field order, float formatting and
//! escaping.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style/robustness finding; fails the build only under
    /// `--deny-warnings`.
    Warning,
    /// A violated invariant; always fails the build.
    Error,
}

impl Severity {
    /// Lowercase name used in both renderings.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from either analysis layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (`"PA001"`, `"SL005"`, … — see [`crate::rules`]).
    pub rule: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Where: `"path/to/file.rs:42"` for source lints, a
    /// `backend @ device / layer` triple for plan audits.
    pub location: String,
    /// What went wrong.
    pub message: String,
    /// How to fix it, when the rule knows.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a fix hint.
    pub fn new(
        rule: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            severity,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// The canonical ordering key: rule id, then location, then message —
    /// independent of discovery order, so any parallel schedule sorts to
    /// the same report.
    fn sort_key(&self) -> (&'static str, &str, &str) {
        (self.rule, &self.location, &self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, "\n    hint: {hint}")?;
        }
        Ok(())
    }
}

/// A full analysis run: the findings plus coverage counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
    /// Dispatch plans enumerated by the plan auditor.
    pub plans_audited: usize,
    /// Source files scanned by the lint pass.
    pub files_scanned: usize,
    /// Network assemblies and pruning plans checked by the dataflow
    /// verifier.
    pub networks_verified: usize,
    /// Chain traces checked by the schedule auditor.
    pub traces_audited: usize,
    /// Functions modeled by the concurrency/panic-path analyses.
    pub functions_modeled: usize,
    /// Functions on the hot serving/search path per the hot-path rules.
    pub hot_functions: usize,
}

impl Report {
    /// Builds a report, sorting the findings into canonical order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Report {
            diagnostics,
            plans_audited: 0,
            files_scanned: 0,
            networks_verified: 0,
            traces_audited: 0,
            functions_modeled: 0,
            hot_functions: 0,
        }
    }

    /// Merges another report into this one, keeping canonical order.
    pub fn merge(&mut self, other: Report) {
        // lint: allow(grow) — bounded by the fixed number of analysis layers
        self.diagnostics.extend(other.diagnostics);
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        self.plans_audited += other.plans_audited;
        self.files_scanned += other.files_scanned;
        self.networks_verified += other.networks_verified;
        self.traces_audited += other.traces_audited;
        self.functions_modeled += other.functions_modeled;
        self.hot_functions += other.hot_functions;
    }

    /// Finding counts per rule family, in [`crate::rules::FAMILIES`]
    /// order — every registered family appears, zero or not, so CI logs
    /// and JSON diffs line up run to run.
    pub fn family_counts(&self) -> Vec<(&'static str, usize)> {
        crate::rules::FAMILIES
            .iter()
            .map(|(prefix, _)| {
                let n = self
                    .diagnostics
                    .iter()
                    .filter(|d| d.rule.starts_with(prefix))
                    .count();
                (*prefix, n)
            })
            .collect()
    }

    /// The findings, in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The human listing: one block per diagnostic plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "lint: {} error(s), {} warning(s) over {} plan(s), {} file(s), {} network(s), {} trace(s) and {} function(s) ({} hot)\n",
            self.errors(),
            self.warnings(),
            self.plans_audited,
            self.files_scanned,
            self.networks_verified,
            self.traces_audited,
            self.functions_modeled,
            self.hot_functions
        ));
        out
    }

    /// The JSON rendering (stable field order, canonical diagnostic order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        let families = self
            .family_counts()
            .iter()
            .map(|(prefix, n)| format!("\"{}\": {n}", prefix.to_ascii_lowercase()))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "  \"summary\": {{\"errors\": {}, \"warnings\": {}, \"plans_audited\": {}, \"files_scanned\": {}, \"networks_verified\": {}, \"traces_audited\": {}, \"functions_modeled\": {}, \"hot_functions\": {}, \"families\": {{{families}}}}},\n",
            self.errors(),
            self.warnings(),
            self.plans_audited,
            self.files_scanned,
            self.networks_verified,
            self.traces_audited,
            self.functions_modeled,
            self.hot_functions
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_string(d.rule)));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_string(d.severity.name())
            ));
            out.push_str(&format!("\"location\": {}, ", json_string(&d.location)));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            if let Some(hint) = &d.hint {
                out.push_str(&format!(", \"hint\": {}", json_string(hint)));
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, loc: &str, msg: &str) -> Diagnostic {
        Diagnostic::new(rule, Severity::Error, loc, msg)
    }

    #[test]
    fn report_sorts_canonically() {
        let r1 = Report::new(vec![d("SL005", "b.rs:2", "x"), d("PA001", "a", "y")]);
        let r2 = Report::new(vec![d("PA001", "a", "y"), d("SL005", "b.rs:2", "x")]);
        assert_eq!(r1, r2);
        assert_eq!(r1.diagnostics()[0].rule, "PA001");
    }

    #[test]
    fn counts_by_severity() {
        let mut warn = d("SL006", "c.rs:1", "w");
        warn.severity = Severity::Warning;
        let r = Report::new(vec![d("PA001", "a", "y"), warn]);
        assert_eq!((r.errors(), r.warnings()), (1, 1));
        assert!(!r.is_clean());
        assert!(Report::new(vec![]).is_clean());
    }

    #[test]
    fn merge_keeps_order_and_counters() {
        let mut a = Report::new(vec![d("SL001", "z.rs:9", "late")]);
        a.plans_audited = 3;
        let mut b = Report::new(vec![d("PA002", "p", "early")]);
        b.files_scanned = 7;
        a.merge(b);
        assert_eq!(a.diagnostics()[0].rule, "PA002");
        assert_eq!((a.plans_audited, a.files_scanned), (3, 7));
    }

    #[test]
    fn human_rendering_includes_hint_and_summary() {
        let r = Report::new(vec![
            d("PA001", "ACL GEMM @ hikey970", "bad split").with_hint("check the parity rule")
        ]);
        let s = r.render_human();
        assert!(s.contains("error[PA001]"));
        assert!(s.contains("hint: check the parity rule"));
        assert!(s.contains("1 error(s), 0 warning(s)"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let r = Report::new(vec![d("PA001", "a\"b", "line1\nline2")]);
        let s = r.render_json();
        assert!(s.contains("\"version\": 1"), "{s}");
        assert!(s.contains("\"errors\": 1"), "{s}");
        assert!(s.contains(r#""location": "a\"b""#), "{s}");
        assert!(s.contains(r#""message": "line1\nline2""#), "{s}");
        // Balanced braces/brackets (a cheap well-formedness proxy).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let s = Report::new(vec![]).render_json();
        assert!(s.contains("\"diagnostics\": []"), "{s}");
    }

    #[test]
    fn family_counts_cover_every_family_in_order() {
        let mut warn = d("PF002", "h.rs:3", "fmt");
        warn.severity = Severity::Warning;
        let r = Report::new(vec![
            d("PA001", "a", "y"),
            d("RB001", "c.rs:7", "grow"),
            warn,
        ]);
        let counts = r.family_counts();
        let prefixes: Vec<&str> = counts.iter().map(|(p, _)| *p).collect();
        assert_eq!(
            prefixes,
            ["PA", "SL", "NV", "TA", "CC", "PN", "PF", "RB"],
            "{counts:?}"
        );
        let get = |p: &str| counts.iter().find(|(q, _)| *q == p).map(|(_, n)| *n);
        assert_eq!(get("PA"), Some(1));
        assert_eq!(get("PF"), Some(1));
        assert_eq!(get("RB"), Some(1));
        assert_eq!(get("SL"), Some(0));
        let json = r.render_json();
        assert!(
            json.contains(r#""families": {"pa": 1, "sl": 0, "nv": 0, "ta": 0, "cc": 0, "pn": 0, "pf": 1, "rb": 1}"#),
            "{json}"
        );
        assert!(json.contains(r#""hot_functions": 0"#), "{json}");
    }
}

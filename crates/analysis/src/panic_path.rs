//! The panic-path reachability rules (`PN001`–`PN003`).
//!
//! The PR-4 contract for the fallible API surface — `try_cost`,
//! `try_measure`, `try_run`, `latency_curve_partial`, the
//! fault-injection `with_retry`, and the serving side-channel writers
//! `try_write_file`/`try_respond` — is "errors, never panics". The source
//! lint's `SL005` enforces that per-line for `unwrap`; these rules
//! upgrade it to *interprocedural*: a panic source anywhere in the code
//! transitively reachable from a fallible entry point is a contract
//! violation, however many calls deep it hides.
//!
//! - `PN001` — unmarked `.unwrap()` / `.expect(…)` (marker:
//!   `lint: allow(unwrap)`, shared with `SL005` so one justification
//!   serves both).
//! - `PN002` — a panicking macro (`panic!`, `assert!`, `assert_eq!`,
//!   `assert_ne!`, `unreachable!`, `todo!`, `unimplemented!`; marker:
//!   `lint: allow(panic)`). `debug_assert*` is exempt — it compiles out
//!   of release builds, which is what the serving arc runs.
//! - `PN003` — implicit panics: slice/array indexing (marker:
//!   `lint: allow(index)`) and division/remainder with a
//!   `.len()`/`.count()` divisor (marker: `lint: allow(div)`).
//!
//! Each diagnostic carries the shortest root→site call chain so the
//! reader can see *why* the site is on the fallible path. Reachability is
//! over the [`crate::callgraph`] name-resolved graph, so it inherits that
//! graph's over-approximation (documented in `DESIGN.md` §12): a finding
//! here means "may be reachable", and the marker is the reviewed claim
//! that the site cannot actually fire.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::model::PanicKind;
use crate::rules;

/// Bare names of the fallible API surface — the reachability roots.
pub const FALLIBLE_ROOTS: &[&str] = &[
    "latency_curve_partial",
    "try_cost",
    "try_measure",
    "try_respond",
    "try_run",
    "try_write_file",
    "with_retry",
];

/// Runs the PN rules over the call graph's model.
pub fn check(graph: &CallGraph<'_>) -> Vec<Diagnostic> {
    let model = graph.model();
    let mut roots: Vec<usize> = Vec::new();
    for name in FALLIBLE_ROOTS {
        roots.extend_from_slice(graph.functions_named(name));
    }
    roots.sort_unstable();
    roots.dedup();
    let (reached, parent, root_of) = graph.reach_from(&roots);

    let mut diags: Vec<Diagnostic> = Vec::new();
    for (i, f) in model.functions.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        let root_name = root_of[i]
            .map(|r| model.functions[r].name.as_str())
            .unwrap_or("?");
        let chain = graph.chain_to(&parent, i, 6);
        for p in &f.panics {
            let (rule, marker) = match p.kind {
                PanicKind::Unwrap => (rules::PN001, "unwrap"),
                PanicKind::Macro => (rules::PN002, "panic"),
                PanicKind::Index => (rules::PN003, "index"),
                PanicKind::DivByLen => (rules::PN003, "div"),
            };
            let severity = rules::rule_info(rule).map_or(crate::Severity::Error, |r| r.severity);
            diags.push(
                Diagnostic::new(
                    rule,
                    severity,
                    format!("{}:{}", f.file, p.line),
                    format!(
                        "`{}` may panic on the fallible path: reachable from `{}` \
                         via {}",
                        p.token, root_name, chain
                    ),
                )
                .with_hint(format!(
                    "return an error instead, or mark the site \
                     `// lint: allow({marker}) — <why it cannot fire>`"
                )),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self, SourceModel};

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let functions = model::model_file("lib.rs", src);
        let m = SourceModel {
            functions,
            facts: Vec::new(),
            files: 1,
        };
        let g = CallGraph::build(&m);
        check(&g)
    }

    #[test]
    fn panic_sites_off_the_fallible_path_are_ignored() {
        let src = "\
fn helper(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
fn unrelated(v: &[u32]) -> u32 {
    helper(v)
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn pn001_reaches_through_calls_with_a_chain() {
        let src = "\
fn try_cost(v: &[u32]) -> Result<u32, ()> {
    Ok(mid(v))
}
fn mid(v: &[u32]) -> u32 {
    leaf(v)
}
fn leaf(v: &[u32]) -> u32 {
    v.first().copied().unwrap()
}
";
        let diags = diags_for(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::PN001);
        assert!(
            diags[0].message.contains("try_cost → mid → leaf"),
            "{diags:?}"
        );
    }

    #[test]
    fn pn002_flags_reachable_asserts() {
        let src = "\
fn try_run(n: usize) -> Result<usize, ()> {
    assert!(n > 0);
    Ok(n)
}
";
        let diags = diags_for(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::PN002);
    }

    #[test]
    fn pn003_flags_indexing_and_div_by_len() {
        let src = "\
fn try_measure(v: &[u32], n: usize) -> Result<u32, ()> {
    let a = v[n + 1];
    let b = n / v.len();
    Ok(a + b as u32)
}
";
        let diags = diags_for(src);
        let rules_found: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules_found, vec![rules::PN003, rules::PN003], "{diags:?}");
    }

    #[test]
    fn markers_suppress_reachable_sites() {
        let src = "\
fn try_cost(v: &[u32]) -> Result<u32, ()> {
    // lint: allow(unwrap) — verified non-empty by the caller contract
    Ok(v.first().copied().unwrap())
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }
}

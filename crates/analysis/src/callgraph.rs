//! A conservative whole-workspace call graph over the [`crate::model`]
//! function models.
//!
//! Resolution is by bare callee name: a call site `shard(…)` is deemed to
//! reach *every* workspace function named `shard`, whatever its type. That
//! over-approximates (unrelated same-named methods become edges) and never
//! under-approximates within first-party code — the right bias for every
//! consumer: the concurrency rules want every lock a callee *might* take,
//! the panic-path rules want every panic a fallible entry point *might*
//! reach, and the hot-path rules want every function a hot root *might*
//! drive per iteration. Calls into `std` or vendored dependencies resolve
//! to nothing and are ignored.

use std::collections::{BTreeMap, VecDeque};

use crate::model::{FunctionModel, SourceModel};

/// A lock's identity: the file it is acquired in plus its normalized
/// receiver path. Scoping identity by file keeps same-named fields in
/// different modules (genuinely different `Mutex` instances) distinct.
pub type LockId = (String, String);

/// Renders a lock identity for diagnostics (`file:path`).
pub fn lock_id_display(id: &LockId) -> String {
    format!("{}:{}", id.0, id.1)
}

/// The resolved graph: adjacency by function index into
/// [`SourceModel::functions`].
pub struct CallGraph<'m> {
    model: &'m SourceModel,
    /// For each function, the distinct callee indices it may reach
    /// directly, each with the first call line (sorted by callee index).
    edges: Vec<Vec<(usize, usize)>>,
    /// Function indices by bare name.
    by_name: BTreeMap<&'m str, Vec<usize>>,
}

impl<'m> CallGraph<'m> {
    /// Builds the graph by name resolution over the model.
    pub fn build(model: &'m SourceModel) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in model.functions.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let mut edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(model.functions.len());
        for f in &model.functions {
            // lint: allow(hot-alloc) — graph built once per check run; `build` collides with hot plan builders
            let mut out: BTreeMap<usize, usize> = BTreeMap::new();
            for call in &f.calls {
                if let Some(targets) = by_name.get(call.name.as_str()) {
                    for &t in targets {
                        out.entry(t).or_insert(call.line);
                    }
                }
            }
            // lint: allow(hot-alloc) — graph built once per check run; `build` collides with hot plan builders
            edges.push(out.into_iter().collect());
        }
        CallGraph {
            model,
            edges,
            by_name,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &SourceModel {
        self.model
    }

    /// Function indices carrying the given bare name.
    pub fn functions_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Direct callees of function `i`, with the first call line each.
    pub fn callees(&self, i: usize) -> &[(usize, usize)] {
        &self.edges[i]
    }

    /// For every function, the set of locks it may acquire *transitively*
    /// (its own sites plus everything reachable through calls), each with
    /// one example acquisition site (`file`, line) — the first found in
    /// canonical order.
    pub fn transitive_locks(&self) -> Vec<BTreeMap<LockId, (String, usize)>> {
        let n = self.model.functions.len();
        let mut acc: Vec<BTreeMap<LockId, (String, usize)>> = vec![BTreeMap::new(); n];
        for (i, f) in self.model.functions.iter().enumerate() {
            for l in &f.locks {
                let id = (f.file.clone(), l.path.clone());
                acc[i].entry(id).or_insert((f.file.clone(), l.line));
            }
        }
        // Fixpoint propagation callee → caller. The graph is small (a few
        // hundred functions), so the quadratic worst case is immaterial.
        loop {
            let mut changed = false;
            for i in 0..n {
                for (callee, _) in self.edges[i].clone() {
                    if callee == i {
                        continue;
                    }
                    let callee_locks = acc[callee].clone();
                    for (id, site) in callee_locks {
                        if let std::collections::btree_map::Entry::Vacant(slot) = acc[i].entry(id) {
                            slot.insert(site);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        acc
    }

    /// Breadth-first reachability from the given root functions, with
    /// parent pointers for shortest-chain reconstruction. Roots are
    /// visited in the given order, so ties resolve deterministically.
    ///
    /// Returns `(reached, parent, root_of)`: for each function, whether it
    /// is reachable, its BFS predecessor, and the root it was first
    /// reached from.
    pub fn reach_from(
        &self,
        roots: &[usize],
    ) -> (Vec<bool>, Vec<Option<usize>>, Vec<Option<usize>>) {
        let n = self.model.functions.len();
        let mut reached = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut root_of: Vec<Option<usize>> = vec![None; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if !reached[r] {
                reached[r] = true;
                root_of[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &(callee, _) in &self.edges[i] {
                if !reached[callee] {
                    reached[callee] = true;
                    parent[callee] = Some(i);
                    root_of[callee] = root_of[i];
                    queue.push_back(callee);
                }
            }
        }
        (reached, parent, root_of)
    }

    /// The shortest root→`i` call chain as `name → name → …`, capped at
    /// `max_hops` names (elision shown as `…`).
    pub fn chain_to(&self, parent: &[Option<usize>], i: usize, max_hops: usize) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = Some(i);
        while let Some(c) = cur {
            names.push(self.model.functions[c].name.as_str());
            cur = parent[c];
        }
        names.reverse();
        if names.len() > max_hops {
            let head = &names[..2];
            let tail = &names[names.len() - (max_hops - 3)..];
            format!("{} → … → {}", head.join(" → "), tail.join(" → "))
        } else {
            names.join(" → ")
        }
    }
}

/// A deterministic view of a function for messages: `file:line` location.
pub fn location(f: &FunctionModel) -> String {
    format!("{}:{}", f.file, f.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;

    fn model_of(src: &str) -> SourceModel {
        let functions = model::model_file("lib.rs", src);
        SourceModel {
            functions,
            facts: Vec::new(),
            files: 1,
        }
    }

    #[test]
    fn edges_resolve_by_bare_name() {
        let m = model_of("fn a() { b(); missing(); }\nfn b() { }\n");
        let g = CallGraph::build(&m);
        let a = g.functions_named("a")[0];
        let b = g.functions_named("b")[0];
        assert_eq!(g.callees(a), &[(b, 1)]);
        assert!(g.callees(b).is_empty());
    }

    #[test]
    fn transitive_locks_propagate_up_call_chains() {
        let m = model_of(
            "fn leaf(&self) { let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner); }\n\
             fn mid() { leaf(); }\n\
             fn top() { mid(); }\n",
        );
        let g = CallGraph::build(&m);
        let locks = g.transitive_locks();
        let top = g.functions_named("top")[0];
        let key = ("lib.rs".to_string(), "inner".to_string());
        assert!(locks[top].contains_key(&key), "{:?}", locks[top]);
        assert_eq!(lock_id_display(&key), "lib.rs:inner");
    }

    #[test]
    fn reachability_records_shortest_chains() {
        let m =
            model_of("fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() { }\nfn off() { }\n");
        let g = CallGraph::build(&m);
        let root = g.functions_named("root")[0];
        let leaf = g.functions_named("leaf")[0];
        let off = g.functions_named("off")[0];
        let (reached, parent, root_of) = g.reach_from(&[root]);
        assert!(reached[leaf] && !reached[off]);
        assert_eq!(root_of[leaf], Some(root));
        assert_eq!(g.chain_to(&parent, leaf, 6), "root → mid → leaf");
    }

    #[test]
    fn long_chains_elide_in_the_middle() {
        let m = model_of(
            "fn f1() { f2(); }\nfn f2() { f3(); }\nfn f3() { f4(); }\nfn f4() { f5(); }\n\
             fn f5() { f6(); }\nfn f6() { f7(); }\nfn f7() { }\n",
        );
        let g = CallGraph::build(&m);
        let f1 = g.functions_named("f1")[0];
        let f7 = g.functions_named("f7")[0];
        let (_, parent, _) = g.reach_from(&[f1]);
        let chain = g.chain_to(&parent, f7, 6);
        assert!(chain.contains("…"), "{chain}");
        assert!(chain.starts_with("f1 → f2"), "{chain}");
        assert!(chain.ends_with("f7"), "{chain}");
    }
}

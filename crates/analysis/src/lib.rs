//! Static analysis for the pruneperf workspace: structured diagnostics
//! with two layers on top.
//!
//! - **Plan audit** ([`plan_audit`]): enumerates [`pruneperf_backends`]
//!   dispatch plans across the paper's devices and a representative layer
//!   grid and checks the paper-derived structural invariants (rules
//!   `PA001`–`PA010`) — without running the simulation engine's timing.
//! - **Source lint** ([`source_lint`]): a dependency-free token scanner
//!   over the repository's own sources enforcing the determinism and
//!   robustness conventions the reproduction relies on (rules
//!   `SL001`–`SL006`).
//!
//! Both layers report through the shared [`Diagnostic`]/[`Report`] core in
//! [`diag`], which renders human or JSON output in a canonical order so
//! parallel runs are byte-identical. The rule catalog with stable ids
//! lives in [`rules`]. The `pruneperf lint` CLI subcommand and the CI
//! `lint` job drive [`run_full`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod plan_audit;
pub mod rules;
pub mod source_lint;

pub use diag::{Diagnostic, Report, Severity};
pub use plan_audit::{audit_paper_grid, audit_plan};
pub use rules::{rule_info, RuleInfo, CATALOG};
pub use source_lint::lint_sources;

use std::io;
use std::path::Path;

/// Runs both layers — the plan audit over the paper grid and the source
/// lint over `root` — and merges them into one report.
///
/// # Errors
///
/// Returns any I/O error from reading the source tree.
pub fn run_full(root: &Path, jobs: usize) -> io::Result<Report> {
    let mut report = audit_paper_grid(jobs);
    report.merge(source_lint::lint_sources(root, jobs)?);
    Ok(report)
}

//! Static analysis for the pruneperf workspace: structured diagnostics
//! with four layers on top.
//!
//! - **Plan audit** ([`plan_audit`]): enumerates [`pruneperf_backends`]
//!   dispatch plans across the paper's devices and a representative layer
//!   grid and checks the paper-derived structural invariants (rules
//!   `PA001`–`PA010`) — without running the simulation engine's timing.
//! - **Source lint** ([`source_lint`]): a dependency-free token scanner
//!   over the repository's own sources enforcing the determinism and
//!   robustness conventions the reproduction relies on (rules
//!   `SL001`–`SL007`).
//! - **Network dataflow verifier** ([`network_verify`]): a static pass
//!   over [`pruneperf_models`] full-network assemblies and the pruning
//!   plans the [`pruneperf_core`] greedies emit — channel/spatial
//!   propagation, paired input-side pruning, FLOPs re-accounting, head
//!   geometry and device-memory fit (rules `NV001`–`NV008`).
//! - **Schedule-trace auditor** ([`trace_audit`]): structural checks over
//!   the simulator's [`pruneperf_gpusim::ChainTrace`] schedules —
//!   disjointness, workgroup conservation, totals, utilization and
//!   dispatch-plan agreement (rules `TA001`–`TA006`).
//! - **Concurrency discipline** ([`concurrency`]): a whole-workspace
//!   lock-acquisition analysis over the [`model`] per-function source
//!   models and the [`callgraph`] name-resolved call graph — lock-order
//!   cycles, guards held across lock-taking calls or parallel fan-out
//!   boundaries, poison recovery, cross-thread sharing docs (rules
//!   `CC001`–`CC007`).
//! - **Panic-path reachability** ([`panic_path`]): interprocedural
//!   reachability from the fallible API surface (`try_cost`,
//!   `try_measure`, `try_run`, `latency_curve_partial`, `with_retry`) to
//!   every panic source — unwrap/expect, panicking macros, indexing and
//!   div-by-len (rules `PN001`–`PN003`).
//! - **Hot-path performance** ([`hotpath`]): hotness propagated from the
//!   serving/search roots (`cost`, `try_cost`, `run_chain_with`, the
//!   fan-out closures, …) through the call graph, flagging per-iteration
//!   allocation, formatting, cloning, unreserved growth, lock churn and
//!   unmemoized engine calls inside hot loops (rules `PF001`–`PF006`).
//! - **Resource bounds** ([`resource`]): grow-only struct fields,
//!   unbounded channels, cache structs without a capacity policy, and
//!   unbounded recursion on the fallible surface (rules `RB001`–`RB004`).
//!
//! All layers report through the shared [`Diagnostic`]/[`Report`] core in
//! [`diag`], which renders human or JSON output in a canonical order so
//! parallel runs are byte-identical. The rule catalog with stable ids
//! lives in [`rules`]. The `pruneperf lint` CLI subcommand and the CI
//! `lint` job drive [`run_full`]; `pruneperf audit` and the CI `audit`
//! job drive [`run_audit`]; `pruneperf check` and the CI `check` job
//! drive [`run_check`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod concurrency;
pub mod diag;
pub mod hotpath;
pub mod model;
pub mod network_verify;
pub mod panic_path;
pub mod plan_audit;
pub mod resource;
pub mod rules;
pub mod source_lint;
pub mod trace_audit;

pub use diag::{Diagnostic, Report, Severity};
pub use network_verify::{audit_network_grid, audit_pruning_plan, verify_network};
pub use plan_audit::{audit_paper_grid, audit_plan};
pub use rules::{rule_info, RuleInfo, CATALOG};
pub use source_lint::lint_sources;
pub use trace_audit::{audit_trace, audit_trace_grid};

use std::io;
use std::path::Path;

/// Runs the lint layers — the plan audit over the paper grid and the
/// source lint over `root` — and merges them into one report.
///
/// # Errors
///
/// Returns any I/O error from reading the source tree.
pub fn run_full(root: &Path, jobs: usize) -> io::Result<Report> {
    let mut report = audit_paper_grid(jobs);
    report.merge(source_lint::lint_sources(root, jobs)?);
    Ok(report)
}

/// Runs the dynamic-artifact layers — the network dataflow verifier over
/// the stock assemblies, pruned variants and greedy pruning plans, and the
/// schedule-trace auditor over every traced dispatch plan — and merges
/// them into one report.
pub fn run_audit(jobs: usize) -> Report {
    let mut report = audit_network_grid(jobs);
    report.merge(audit_trace_grid(jobs));
    report
}

/// Runs the concurrency-discipline, panic-path, hot-path performance and
/// resource-bound analyses over the source tree at `root` and merges them
/// into one report.
///
/// Per-file model building fans out over `jobs` workers with
/// input-ordered reduction; the graph analyses are sequential over the
/// merged model, so the report is byte-identical at any worker count.
///
/// # Errors
///
/// Returns any I/O error from reading the source tree.
pub fn run_check(root: &Path, jobs: usize) -> io::Result<Report> {
    let source_model = model::build_model(root, jobs)?;
    let graph = callgraph::CallGraph::build(&source_model);
    let mut diags = concurrency::check(&graph);
    diags.extend(panic_path::check(&graph));
    let (pf_diags, hot_functions) = hotpath::check(&graph);
    diags.extend(pf_diags);
    diags.extend(resource::check(&graph));
    let mut report = Report::new(diags);
    report.files_scanned = source_model.files;
    report.functions_modeled = source_model.functions.len();
    report.hot_functions = hot_functions;
    Ok(report)
}

//! Layer 1 — the static plan auditor.
//!
//! Enumerates [`DispatchPlan`]s from the five backend models across the
//! paper's four devices and a representative layer grid, and checks the
//! paper-derived structural invariants (rules `PA001`–`PA010`, see
//! [`crate::rules`]) *without running the simulation engine*: every rule is
//! re-derived here from the paper's tables and figures, independently of
//! the backend code that emitted the plan, so a regression in a planner
//! cannot silently re-derive itself into passing.

use pruneperf_backends::{AclAuto, AclDirect, AclGemm, ConvBackend, Cudnn, DispatchPlan, Tvm};
use pruneperf_gpusim::{Device, KernelDesc};
use pruneperf_models::ConvLayerSpec;
use pruneperf_profiler::sweep;

use crate::diag::{Diagnostic, Report, Severity};
use crate::rules;

/// Channel counts swept per base layer: the paper's interesting points
/// (Tables I–IV: 92/93/96/97; Figs 14/15: 76/78; cuDNN 32-steps; TVM
/// tuned/untuned boundaries) plus parity probes and power-of-two anchors.
pub const GRID_CHANNELS: &[usize] = &[
    1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 24, 31, 32, 48, 64, 76, 78, 92, 93, 96, 97, 128, 160, 255,
    256, 384, 511, 512,
];

/// The representative layer shapes of the grid (channel count is swept).
///
/// One family per convolution regime the paper profiles: the ResNet-50 L16
/// 3×3 workhorse, the L45-style 1×1, the L14-style strided 1×1 projection,
/// and an AlexNet-style 5×5.
pub fn grid_layers() -> Vec<ConvLayerSpec> {
    vec![
        ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, 128, 28, 28),
        ConvLayerSpec::new("grid.k1s1", 1, 1, 0, 512, 512, 7, 7),
        ConvLayerSpec::new("grid.k1s2", 1, 2, 0, 256, 256, 28, 28),
        ConvLayerSpec::new("grid.k5s1", 5, 1, 2, 64, 64, 13, 13),
        // Deep 3×3 stride-1 with c_in >= 256: inside cuDNN's Winograd gate.
        ConvLayerSpec::new("grid.k3s1deep", 3, 1, 1, 256, 256, 14, 14),
    ]
}

/// The five backend models the auditor covers, freshly constructed.
pub fn audited_backends() -> Vec<Box<dyn ConvBackend>> {
    vec![
        Box::new(AclGemm::new()),
        Box::new(AclDirect::new()),
        Box::new(AclAuto::new()),
        Box::new(Cudnn::new()),
        Box::new(Tvm::new()),
    ]
}

/// Audit location string: `producer @ device / layer c_out=N`.
fn loc(producer: &str, device: &Device, layer: &ConvLayerSpec) -> String {
    format!(
        "{} @ {} / {} c_out={}",
        producer,
        device.name(),
        layer.label(),
        layer.c_out()
    )
}

fn err(rule: &'static str, loc: &str, message: String) -> Diagnostic {
    Diagnostic::new(rule, Severity::Error, loc, message)
}

/// Audits one plan against every applicable invariant.
///
/// `producer` is the name of the backend that emitted the plan — for
/// [`AclAuto`] this differs from `plan.backend()`, which records the
/// delegated method.
pub fn audit_plan(
    producer: &str,
    plan: &DispatchPlan,
    layer: &ConvLayerSpec,
    device: &Device,
) -> Vec<Diagnostic> {
    let loc = loc(producer, device, layer);
    let mut out = Vec::new();

    // PA005: a plan must dispatch something.
    if plan.chain().is_empty() {
        out.push(
            err(rules::PA005, &loc, "empty job chain".to_string())
                .with_hint("every convolution lowers to at least one kernel"),
        );
        return out;
    }

    let split_gemm = plan.kernels_named("gemm_mm").count() > 1;
    for job in plan.chain().jobs() {
        audit_kernel_geometry(job.kernel(), split_gemm, device, &loc, &mut out);
    }

    match producer {
        "ACL GEMM" => check_acl_gemm(plan, layer, &loc, &mut out),
        "ACL Direct" => check_acl_direct(plan, layer, &loc, &mut out),
        "ACL (auto method)" => {
            check_acl_auto(plan, layer, device, &loc, &mut out);
            if plan.kernels_named("gemm_mm").next().is_some() {
                check_acl_gemm(plan, layer, &loc, &mut out);
            } else {
                check_acl_direct(plan, layer, &loc, &mut out);
            }
        }
        "cuDNN" => check_cudnn(plan, layer, &loc, &mut out),
        "TVM" => check_tvm(plan, layer, &loc, &mut out),
        _ => {}
    }
    out
}

/// PA003/PA004/PA005/PA009: per-kernel geometry, accounting, footprint and
/// device-capacity checks common to every backend.
fn audit_kernel_geometry(
    k: &KernelDesc,
    split_gemm: bool,
    device: &Device,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let g = k.global();
    let l = k.local();
    // PA003 (a): positive extents. Zero dims can only arrive through
    // deserialized plans — the builder rejects them — but the geometry
    // methods divide by local dims, so bail before touching them.
    if g.contains(&0) || l.contains(&0) {
        out.push(
            err(
                rules::PA003,
                loc,
                format!(
                    "kernel {}: zero NDRange extent (global {g:?} local {l:?})",
                    k.name()
                ),
            )
            .with_hint("NDRange and workgroup extents must be >= 1"),
        );
        return;
    }
    // PA003 (b): local divides the ceil-padded global in every dim.
    for i in 0..3 {
        let padded = g[i].div_ceil(l[i]) * l[i];
        if !padded.is_multiple_of(l[i]) {
            out.push(err(
                rules::PA003,
                loc,
                format!(
                    "kernel {}: local dim {i} ({}) does not divide padded global ({padded})",
                    k.name(),
                    l[i]
                ),
            ));
        }
    }
    // PA003 (c): exact-tiling kernels cover their tiled dim with no ragged
    // edge — the split heuristic (Tables I–IV) exists precisely so gemm_mm
    // never dispatches a partial column tile, and cuDNN's thread blocks
    // are exactly one 32-thread column strip.
    let exact_dim = match k.name() {
        "gemm_mm" if split_gemm => Some(1),
        "implicit_gemm_conv" | "implicit_precomp_gemm_conv" => Some(0),
        _ => None,
    };
    if let Some(i) = exact_dim {
        if !g[i].is_multiple_of(l[i]) {
            out.push(
                err(
                    rules::PA003,
                    loc,
                    format!(
                        "kernel {}: local dim {i} ({}) does not divide global ({}) exactly",
                        k.name(),
                        l[i],
                        g[i]
                    ),
                )
                .with_hint("split gemm_mm and cuDNN tiles must cover whole tiles"),
            );
        }
    }
    // PA004: padding accounting. executed >= active by construction for
    // positive dims; re-checked as a data invariant, then the per-name
    // accounting mode (padded GEMM columns do real work — Tables II/III —
    // while direct-style kernels predicate edge lanes off, Table V).
    if k.executed_items() < k.active_items() {
        out.push(err(
            rules::PA004,
            loc,
            format!(
                "kernel {}: executed items {} < active items {}",
                k.name(),
                k.executed_items(),
                k.active_items()
            ),
        ));
    }
    let expected_padded =
        if k.name().starts_with("direct_convolution") || k.name() == "fused_conv2d_fallback" {
            Some(false)
        } else if matches!(
            k.name(),
            "gemm_mm" | "implicit_gemm_conv" | "implicit_precomp_gemm_conv" | "fused_conv2d_gemm"
        ) {
            Some(true)
        } else {
            None
        };
    if let Some(expected) = expected_padded {
        if k.padded_accounting() != expected {
            out.push(
                err(
                    rules::PA004,
                    loc,
                    format!(
                        "kernel {}: padded_accounting is {} but the paper's instruction \
                         accounting requires {}",
                        k.name(),
                        k.padded_accounting(),
                        expected
                    ),
                )
                .with_hint(
                    "padded GEMM columns retire instructions; predicated direct lanes do not",
                ),
            );
        }
    }
    // PA005: the §III-C1 interceptor observes a memory footprint for every
    // kernel it hooks; a zero footprint means the model forgot its buffers.
    if k.footprint_bytes() == 0 {
        out.push(
            err(
                rules::PA005,
                loc,
                format!("kernel {}: zero memory footprint", k.name()),
            )
            .with_hint("set footprint_bytes to the buffers the dispatch binds"),
        );
    }
    // PA009: a workgroup larger than the device's resident-thread capacity
    // cannot be scheduled at all.
    if k.workgroup_size() > device.max_resident_threads() {
        out.push(err(
            rules::PA009,
            loc,
            format!(
                "kernel {}: workgroup of {} threads exceeds device capacity {}",
                k.name(),
                k.workgroup_size(),
                device.max_resident_threads()
            ),
        ));
    }
}

/// PA001: the ACL GEMM split parity rule, re-derived from Tables I–IV.
fn check_acl_gemm(
    plan: &DispatchPlan,
    layer: &ConvLayerSpec,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let c_out = layer.c_out();
    let c4 = c_out.div_ceil(4) * 4;
    let main = (c_out / 16) * 16;
    let expect_split = !c4.is_multiple_of(8) && main > 0;

    // Chain shape: im2col (unless 1×1 stride-1) then reshape, then gemm(s).
    let needs_im2col = layer.kernel() > 1 || layer.stride() > 1;
    let has_im2col = plan
        .chain()
        .jobs()
        .iter()
        .any(|j| j.kernel().name().starts_with("im2col"));
    if needs_im2col != has_im2col {
        out.push(err(
            rules::PA001,
            loc,
            format!(
                "im2col stage {} but layer geometry (k={} s={}) says it {}",
                if has_im2col { "present" } else { "missing" },
                layer.kernel(),
                layer.stride(),
                if needs_im2col {
                    "is required"
                } else {
                    "must be skipped"
                }
            ),
        ));
    }
    if plan.kernels_named("reshape_to_columns").count() != 1 {
        out.push(err(
            rules::PA001,
            loc,
            "GEMM chain must contain exactly one reshape_to_columns".into(),
        ));
    }

    let gemms: Vec<_> = plan
        .chain()
        .jobs()
        .iter()
        .filter(|j| j.kernel().name() == "gemm_mm")
        .collect();
    let hint = "c4 = round_up(c_out, 4): split iff c4 % 8 != 0 and c_out >= 16 (Tables I-IV)";
    if expect_split {
        if gemms.len() != 2 {
            out.push(
                err(
                    rules::PA001,
                    loc,
                    format!(
                        "parity rule demands a main+remainder split but plan has {} gemm_mm kernel(s)",
                        gemms.len()
                    ),
                )
                .with_hint(hint),
            );
            return;
        }
        let main_cols = gemms[0].kernel().global()[1] * 4;
        let rem_cols = gemms[1].kernel().global()[1] * 4;
        if main_cols != main || !main_cols.is_multiple_of(16) {
            out.push(
                err(
                    rules::PA001,
                    loc,
                    format!("main gemm_mm covers {main_cols} columns, expected {main}"),
                )
                .with_hint(hint),
            );
        }
        if rem_cols + main_cols != c4 || ![4, 8, 12].contains(&rem_cols) {
            out.push(
                err(
                    rules::PA001,
                    loc,
                    format!(
                        "remainder gemm_mm covers {rem_cols} columns, expected {} in {{4, 8, 12}}",
                        c4 - main
                    ),
                )
                .with_hint(hint),
            );
        }
        if !gemms[1].needs_own_submission() {
            out.push(
                err(
                    rules::PA001,
                    loc,
                    "remainder gemm_mm must be separately submitted (the Fig 18 job cost)".into(),
                )
                .with_hint("the slow staircase exists because the remainder pays its own job"),
            );
        }
        if gemms[0].needs_own_submission() {
            out.push(err(
                rules::PA001,
                loc,
                "main gemm_mm must ride the shared submission".into(),
            ));
        }
    } else {
        if gemms.len() != 1 {
            out.push(
                err(
                    rules::PA001,
                    loc,
                    format!(
                        "parity rule demands a single gemm_mm but plan has {}",
                        gemms.len()
                    ),
                )
                .with_hint(hint),
            );
            return;
        }
        let cols = gemms[0].kernel().global()[1] * 4;
        if cols != c4 {
            out.push(err(
                rules::PA001,
                loc,
                format!("single gemm_mm covers {cols} columns, expected padded {c4}"),
            ));
        }
        if plan.chain().jobs().iter().any(|j| j.needs_own_submission()) {
            out.push(err(
                rules::PA001,
                loc,
                "non-split plan must not contain separately submitted jobs".into(),
            ));
        }
    }
}

/// The Table V workgroup heuristic, re-derived.
fn table5_workgroup(c_out: usize) -> [usize; 3] {
    if c_out.is_multiple_of(4) {
        [4, 1, 1]
    } else if c_out.is_multiple_of(2) {
        [2, 1, 8]
    } else {
        [1, 1, 8]
    }
}

/// PA002: ACL Direct plans are a single kernel shaped by Table V.
fn check_acl_direct(
    plan: &DispatchPlan,
    layer: &ConvLayerSpec,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let direct: Vec<_> = plan
        .chain()
        .jobs()
        .iter()
        .filter(|j| j.kernel().name().starts_with("direct_convolution"))
        .collect();
    if direct.len() != 1 || plan.chain().len() != 1 {
        out.push(err(
            rules::PA002,
            loc,
            format!(
                "direct convolution must be a single kernel; chain has {} job(s)",
                plan.chain().len()
            ),
        ));
        return;
    }
    let k = direct[0].kernel();
    let expected = table5_workgroup(layer.c_out());
    if k.local() != expected {
        out.push(
            err(
                rules::PA002,
                loc,
                format!(
                    "workgroup {:?} differs from the Table V heuristic {:?}",
                    k.local(),
                    expected
                ),
            )
            .with_hint("c_out % 4 == 0 -> [4,1,1]; % 2 == 0 -> [2,1,8]; odd -> [1,1,8]"),
        );
    }
    let (out_h, out_w) = layer.out_hw();
    if k.global() != [out_w, out_h, layer.c_out()] {
        out.push(err(
            rules::PA002,
            loc,
            format!(
                "global {:?} is not one work-item per output element {:?}",
                k.global(),
                [out_w, out_h, layer.c_out()]
            ),
        ));
    }
}

/// PA008: ACL auto's method choice follows the §IV-A2 memory rule,
/// re-derived from the layer geometry.
fn check_acl_auto(
    plan: &DispatchPlan,
    layer: &ConvLayerSpec,
    device: &Device,
    loc: &str,
    out: &mut Vec<Diagnostic>,
) {
    let (out_h, out_w) = layer.out_hw();
    let m = (out_h * out_w) as u64;
    let k = layer.taps() as u64;
    let c4 = (layer.c_out().div_ceil(4) * 4) as u64;
    let input = (layer.h_in() * layer.w_in() * layer.c_in()) as u64;
    let gemm_bytes = (input + m * k + k * c4 + m * c4) * 4;
    let fits = gemm_bytes <= device.gpu_heap_bytes();
    let chose_gemm = plan.kernels_named("gemm_mm").next().is_some();
    if fits != chose_gemm {
        out.push(
            err(
                rules::PA008,
                loc,
                format!(
                    "GEMM working set {gemm_bytes} B vs heap {} B demands {}, plan chose {}",
                    device.gpu_heap_bytes(),
                    if fits { "GEMM" } else { "direct" },
                    if chose_gemm { "GEMM" } else { "direct" }
                ),
            )
            .with_hint("§IV-A2: GEMM only when input+patches+weights+output fit the heap"),
        );
    }
}

/// PA007: cuDNN's 32-wide N-tiling and Winograd gating.
fn check_cudnn(plan: &DispatchPlan, layer: &ConvLayerSpec, loc: &str, out: &mut Vec<Diagnostic>) {
    let (out_h, out_w) = layer.out_hw();
    match plan.algorithm() {
        "winograd" => {
            if !(layer.kernel() == 3 && layer.stride() == 1 && layer.c_in() >= 256) {
                out.push(
                    err(
                        rules::PA007,
                        loc,
                        format!(
                            "winograd selected for k={} s={} c_in={} outside its v7 gate",
                            layer.kernel(),
                            layer.stride(),
                            layer.c_in()
                        ),
                    )
                    .with_hint("winograd applies to 3x3 stride-1 layers with >= 256 inputs"),
                );
            }
            if plan.kernels_named("winograd_batched_gemm").count() != 1 {
                out.push(err(
                    rules::PA007,
                    loc,
                    "winograd chain must contain one batched GEMM".into(),
                ));
            } else if let Some(k) = plan.kernels_named("winograd_batched_gemm").next() {
                let expected = layer.c_out().div_ceil(32) * 8;
                if k.global()[1] != expected {
                    out.push(err(
                        rules::PA007,
                        loc,
                        format!(
                            "winograd GEMM tiles {} column quads, expected {expected} \
                             (32-channel N-tiles)",
                            k.global()[1]
                        ),
                    ));
                }
            }
        }
        "implicit_gemm" | "implicit_precomp_gemm" => {
            let conv: Vec<_> = plan
                .chain()
                .jobs()
                .iter()
                .filter(|j| j.kernel().name().ends_with("_gemm_conv"))
                .collect();
            if conv.len() != 1 {
                out.push(err(
                    rules::PA007,
                    loc,
                    format!(
                        "expected one implicit-GEMM conv kernel, found {}",
                        conv.len()
                    ),
                ));
                return;
            }
            let k = conv[0].kernel();
            let m_tiles = (out_h * out_w).div_ceil(32);
            let n_tiles = layer.c_out().div_ceil(32);
            if k.global() != [32, m_tiles, n_tiles] || k.local() != [32, 1, 1] {
                out.push(
                    err(
                        rules::PA007,
                        loc,
                        format!(
                            "tiling global {:?} local {:?} differs from 32x32 tiles \
                             [32, {m_tiles}, {n_tiles}] / [32, 1, 1]",
                            k.global(),
                            k.local()
                        ),
                    )
                    .with_hint("the 32-channel staircase comes from this exact tiling"),
                );
            }
            let has_precomp = plan.kernels_named("precomp_indices").next().is_some();
            if has_precomp != (plan.algorithm() == "implicit_precomp_gemm") {
                out.push(err(
                    rules::PA007,
                    loc,
                    "precomp_indices stage must be present iff the precomp algorithm is chosen"
                        .into(),
                ));
            }
        }
        other => {
            out.push(err(
                rules::PA007,
                loc,
                format!("unknown cuDNN algorithm '{other}'"),
            ));
        }
    }
}

/// PA010: TVM's single fused kernel matches its schedule kind.
fn check_tvm(plan: &DispatchPlan, layer: &ConvLayerSpec, loc: &str, out: &mut Vec<Diagnostic>) {
    if plan.chain().len() != 1 {
        out.push(err(
            rules::PA010,
            loc,
            format!(
                "TVM compiles one fused kernel; chain has {} job(s)",
                plan.chain().len()
            ),
        ));
        return;
    }
    let job = &plan.chain().jobs()[0];
    let k = job.kernel();
    if job.needs_own_submission() {
        out.push(err(
            rules::PA010,
            loc,
            "the fused kernel must not demand its own submission".into(),
        ));
    }
    let (out_h, out_w) = layer.out_hw();
    let c4 = layer.c_out().div_ceil(4) * 4;
    match plan.algorithm() {
        "tuned_gemm" | "partially_tuned_gemm" => {
            if k.name() != "fused_conv2d_gemm" || k.local() != [4, 4, 1] || k.global()[1] != c4 / 4
            {
                out.push(
                    err(
                        rules::PA010,
                        loc,
                        format!(
                            "tuned schedule must tile 4x4 over {} column quads; got {} {:?}/{:?}",
                            c4 / 4,
                            k.name(),
                            k.global(),
                            k.local()
                        ),
                    )
                    .with_hint("logged sizes use the GEMM-style schedule"),
                );
            }
        }
        "fallback_direct" => {
            if k.name() != "fused_conv2d_fallback"
                || k.local() != [1, 1, 8]
                || k.global() != [out_w, out_h, layer.c_out()]
            {
                out.push(
                    err(
                        rules::PA010,
                        loc,
                        format!(
                            "fallback schedule must be direct-style one-item-per-output; got {} \
                             {:?}/{:?}",
                            k.name(),
                            k.global(),
                            k.local()
                        ),
                    )
                    .with_hint("unlogged sizes fall back to the default schedule (Fig 20)"),
                );
            }
        }
        other => {
            out.push(err(
                rules::PA010,
                loc,
                format!("unknown TVM schedule kind '{other}'"),
            ));
        }
    }
}

/// Output channels a plan's compute kernels cover after padding, for the
/// PA006 monotonicity check. `None` when the plan has no recognizable
/// compute kernel.
pub fn covered_channels(plan: &DispatchPlan) -> Option<u64> {
    let mut covered = 0u64;
    let mut found = false;
    for job in plan.chain().jobs() {
        let k = job.kernel();
        let c = match k.name() {
            "gemm_mm" | "fused_conv2d_gemm" | "winograd_batched_gemm" => (k.global()[1] * 4) as u64,
            "implicit_gemm_conv" | "implicit_precomp_gemm_conv" => (k.global()[2] * 32) as u64,
            name if name.starts_with("direct_convolution") => k.global()[2] as u64,
            "fused_conv2d_fallback" => k.global()[2] as u64,
            _ => continue,
        };
        covered += c;
        found = true;
    }
    found.then_some(covered)
}

/// One point of a channel staircase for [`audit_staircase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaircasePoint {
    /// Output channel count of the planned layer.
    pub c_out: usize,
    /// `plan.algorithm()` at this count.
    pub algorithm: String,
    /// [`covered_channels`] of the plan, when recognizable.
    pub covered: Option<u64>,
}

/// PA006: along an ascending channel sweep, the padded output-channel
/// coverage never decreases within one algorithm choice, and always covers
/// the real channels — step edges only ever move up.
pub fn audit_staircase(
    producer: &str,
    device: &Device,
    layer_label: &str,
    points: &[StaircasePoint],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in points {
        let loc = format!(
            "{} @ {} / {} c_out={}",
            producer,
            device.name(),
            layer_label,
            p.c_out
        );
        if let Some(covered) = p.covered {
            if covered < p.c_out as u64 {
                out.push(err(
                    rules::PA006,
                    &loc,
                    format!(
                        "plan covers {covered} output channels, fewer than the layer's {}",
                        p.c_out
                    ),
                ));
            }
        }
    }
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.algorithm != b.algorithm {
            continue; // algorithm switches may legitimately re-tile
        }
        if let (Some(ca), Some(cb)) = (a.covered, b.covered) {
            if cb < ca {
                let loc = format!(
                    "{} @ {} / {} c_out={}",
                    producer,
                    device.name(),
                    layer_label,
                    b.c_out
                );
                out.push(
                    err(
                        rules::PA006,
                        &loc,
                        format!(
                            "coverage steps down from {ca} ({} ch) to {cb} ({} ch)",
                            a.c_out, b.c_out
                        ),
                    )
                    .with_hint("staircase step edges must be monotone in the channel count"),
                );
            }
        }
    }
    out
}

/// Audits one (backend, device, base layer) cell of the grid across the
/// channel sweep, including the staircase rule.
fn audit_cell(
    backend: &dyn ConvBackend,
    device: &Device,
    base: &ConvLayerSpec,
) -> (Vec<Diagnostic>, usize) {
    let mut diags = Vec::new();
    let mut points = Vec::new();
    let mut audited = 0;
    for &c in GRID_CHANNELS {
        let layer = ConvLayerSpec::new(
            base.label(),
            base.kernel(),
            base.stride(),
            base.pad(),
            base.c_in(),
            c,
            base.h_in(),
            base.w_in(),
        );
        let plan = backend.plan(&layer, device);
        diags.extend(audit_plan(backend.name(), &plan, &layer, device));
        points.push(StaircasePoint {
            c_out: c,
            algorithm: plan.algorithm().to_string(),
            covered: covered_channels(&plan),
        });
        audited += 1;
    }
    diags.extend(audit_staircase(
        backend.name(),
        device,
        base.label(),
        &points,
    ));
    (diags, audited)
}

/// Runs the full audit: all five backends × the four paper devices × the
/// layer grid, fanned out over `jobs` workers with deterministic,
/// input-ordered reduction.
pub fn audit_paper_grid(jobs: usize) -> Report {
    let devices = Device::all_paper_devices();
    let layers = grid_layers();
    let backends = audited_backends().len();
    // Plain-index work items so the closure can rebuild its own (non-Sync)
    // backend value per call.
    let n_layers = layers.len();
    let cells: Vec<(usize, usize, usize)> = (0..devices.len())
        .flat_map(|d| (0..backends).flat_map(move |b| (0..n_layers).map(move |l| (d, b, l))))
        .collect();
    // lint: allow(hot-root) — build-time audit grid, not a serving path
    let results = sweep::ordered_parallel_map(&cells, jobs, |&(d, b, l)| {
        let backend = &audited_backends()[b];
        audit_cell(backend.as_ref(), &devices[d], &layers[l])
    });
    let mut diags = Vec::new();
    let mut audited = 0;
    for (cell_diags, cell_count) in results {
        diags.extend(cell_diags);
        audited += cell_count;
    }
    let mut report = Report::new(diags);
    report.plans_audited = audited;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hikey() -> Device {
        Device::mali_g72_hikey970()
    }

    fn l16(c: usize) -> ConvLayerSpec {
        ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, c, 28, 28)
    }

    #[test]
    fn clean_backends_pass_every_rule() {
        let report = audit_paper_grid(2);
        assert!(
            report.is_clean(),
            "expected a clean audit:\n{}",
            report.render_human()
        );
        // 5 backends x 4 devices x 5 layers x the channel sweep.
        assert_eq!(report.plans_audited, 5 * 4 * 5 * GRID_CHANNELS.len());
    }

    #[test]
    fn pa001_split_parity_violations_are_caught() {
        let d = hikey();
        // A 92-channel plan (split regime) stripped of its remainder.
        let layer = l16(92);
        let real = AclGemm::new().plan(&layer, &d);
        let mut jobs: Vec<_> = real.chain().jobs().to_vec();
        jobs.pop();
        let mut chain = pruneperf_gpusim::JobChain::new();
        for j in jobs {
            chain.push(j);
        }
        let corrupt = DispatchPlan::new("ACL GEMM", "gemm", chain);
        let diags = audit_plan("ACL GEMM", &corrupt, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA001), "{diags:?}");

        // A 96-channel plan (single regime) with a bolted-on split.
        let layer96 = l16(96);
        let single = AclGemm::new().plan(&layer96, &d);
        let mut chain = pruneperf_gpusim::JobChain::new();
        for j in single.chain().jobs() {
            chain.push(j.clone());
        }
        chain.push(pruneperf_gpusim::Job::with_own_submission(
            KernelDesc::builder("gemm_mm")
                .global([196, 1, 1])
                .local([4, 1, 1])
                .arith_per_item(1)
                .footprint_bytes(64)
                .build(),
        ));
        let corrupt = DispatchPlan::new("ACL GEMM", "gemm", chain);
        let diags = audit_plan("ACL GEMM", &corrupt, &layer96, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA001), "{diags:?}");
    }

    #[test]
    fn pa002_wrong_workgroup_is_caught() {
        let d = hikey();
        let layer = l16(91); // odd -> Table V says [1,1,8]
        let (out_h, out_w) = layer.out_hw();
        let k = KernelDesc::builder("direct_convolution3x3_nhwc")
            .global([out_w, out_h, layer.c_out()])
            .local([4, 1, 1]) // contradicts Table V for an odd channel count
            .arith_per_item(1)
            .footprint_bytes(64)
            .padded_accounting(false)
            .build();
        let plan = DispatchPlan::new(
            "ACL Direct",
            "direct",
            pruneperf_gpusim::JobChain::from_kernels(vec![k]),
        );
        let diags = audit_plan("ACL Direct", &plan, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA002), "{diags:?}");
    }

    #[test]
    fn pa003_ragged_split_tile_is_caught() {
        let d = hikey();
        let layer = l16(92);
        // Two gemm_mm kernels (split regime) whose main kernel has a local
        // y-extent that does not divide its global y-extent.
        let bad_main = KernelDesc::builder("gemm_mm")
            .global([196, 5, 1])
            .local([4, 4, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .build();
        let rem = KernelDesc::builder("gemm_mm")
            .global([196, 3, 1])
            .local([4, 3, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .build();
        let mut chain = pruneperf_gpusim::JobChain::new();
        chain.push(pruneperf_gpusim::Job::new(bad_main));
        chain.push(pruneperf_gpusim::Job::with_own_submission(rem));
        let plan = DispatchPlan::new("ACL GEMM", "gemm", chain);
        let diags = audit_plan("ACL GEMM", &plan, &layer, &d);
        assert!(
            diags
                .iter()
                .any(|x| x.rule == rules::PA003 && x.message.contains("exactly")),
            "{diags:?}"
        );
    }

    #[test]
    fn pa004_wrong_accounting_is_caught() {
        let d = hikey();
        let layer = l16(64);
        // A direct kernel charging padded lanes contradicts Table V.
        let k = KernelDesc::builder("direct_convolution3x3_nhwc")
            .global([28, 28, 64])
            .local([4, 1, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .padded_accounting(true)
            .build();
        let plan = DispatchPlan::new(
            "ACL Direct",
            "direct",
            pruneperf_gpusim::JobChain::from_kernels(vec![k]),
        );
        let diags = audit_plan("ACL Direct", &plan, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA004), "{diags:?}");
    }

    #[test]
    fn pa005_zero_footprint_and_empty_chain_are_caught() {
        let d = hikey();
        let layer = l16(64);
        let empty = DispatchPlan::new("ACL GEMM", "gemm", pruneperf_gpusim::JobChain::new());
        let diags = audit_plan("ACL GEMM", &empty, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA005), "{diags:?}");

        let k = KernelDesc::builder("direct_convolution3x3_nhwc")
            .global([28, 28, 64])
            .local([4, 1, 1])
            .arith_per_item(1)
            .padded_accounting(false)
            .build(); // footprint defaults to zero
        let plan = DispatchPlan::new(
            "ACL Direct",
            "direct",
            pruneperf_gpusim::JobChain::from_kernels(vec![k]),
        );
        let diags = audit_plan("ACL Direct", &plan, &layer, &d);
        assert!(
            diags
                .iter()
                .any(|x| x.rule == rules::PA005 && x.message.contains("footprint")),
            "{diags:?}"
        );
    }

    #[test]
    fn pa006_coverage_step_down_is_caught() {
        let d = hikey();
        let points = vec![
            StaircasePoint {
                c_out: 92,
                algorithm: "gemm".into(),
                covered: Some(96),
            },
            StaircasePoint {
                c_out: 93,
                algorithm: "gemm".into(),
                covered: Some(92), // steps DOWN while channels grew
            },
        ];
        let diags = audit_staircase("ACL GEMM", &d, "grid.k3s1", &points);
        assert!(diags.iter().any(|x| x.rule == rules::PA006), "{diags:?}");
        // And under-coverage of the real channels is its own violation.
        assert!(
            diags
                .iter()
                .any(|x| x.rule == rules::PA006 && x.message.contains("fewer")),
            "{diags:?}"
        );
    }

    #[test]
    fn pa007_cudnn_tile_violations_are_caught() {
        let d = Device::jetson_tx2();
        let layer = l16(128);
        // n_tiles should be ceil(128/32) = 4; claim 3.
        let k = KernelDesc::builder("implicit_gemm_conv")
            .global([32, 25, 3])
            .local([32, 1, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .build();
        let plan = DispatchPlan::new(
            "cuDNN",
            "implicit_gemm",
            pruneperf_gpusim::JobChain::from_kernels(vec![k]),
        );
        let diags = audit_plan("cuDNN", &plan, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA007), "{diags:?}");

        // Winograd outside its gate (1x1 layer).
        let l1x1 = ConvLayerSpec::new("grid.k1s1", 1, 1, 0, 512, 64, 7, 7);
        let wrong_gate = DispatchPlan::new(
            "cuDNN",
            "winograd",
            pruneperf_gpusim::JobChain::from_kernels(vec![KernelDesc::builder(
                "winograd_batched_gemm",
            )
            .global([4, 16, 16])
            .local([32, 1, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .build()]),
        );
        let diags = audit_plan("cuDNN", &wrong_gate, &l1x1, &d);
        assert!(
            diags
                .iter()
                .any(|x| x.rule == rules::PA007 && x.message.contains("gate")),
            "{diags:?}"
        );
    }

    #[test]
    fn pa008_memory_rule_violations_are_caught() {
        // A tiny heap forces direct; a plan that still chose GEMM violates
        // the §IV-A2 rule.
        let tiny = Device::builder("Tiny IoT board").gpu_heap_mib(1).build();
        let layer = ConvLayerSpec::new("grid.k3s1", 3, 1, 1, 128, 128, 56, 56);
        let gemm_plan = AclGemm::new().plan(&layer, &tiny);
        let diags = audit_plan("ACL (auto method)", &gemm_plan, &layer, &tiny);
        assert!(diags.iter().any(|x| x.rule == rules::PA008), "{diags:?}");
        // The genuine auto plan on the same device passes the memory rule.
        let auto_plan = AclAuto::new().plan(&layer, &tiny);
        let diags = audit_plan("ACL (auto method)", &auto_plan, &layer, &tiny);
        assert!(diags.iter().all(|x| x.rule != rules::PA008), "{diags:?}");
    }

    #[test]
    fn pa009_oversized_workgroup_is_caught() {
        let d = Device::mali_t628_odroidxu4(); // 256 resident threads
        let layer = l16(64);
        let k = KernelDesc::builder("direct_convolution3x3_nhwc")
            .global([512, 28, 64])
            .local([512, 1, 1])
            .arith_per_item(1)
            .footprint_bytes(64)
            .padded_accounting(false)
            .build();
        let plan = DispatchPlan::new(
            "ACL Direct",
            "direct",
            pruneperf_gpusim::JobChain::from_kernels(vec![k]),
        );
        let diags = audit_plan("ACL Direct", &plan, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA009), "{diags:?}");
    }

    #[test]
    fn pa010_tvm_shape_violations_are_caught() {
        let d = hikey();
        let layer = ConvLayerSpec::new("grid.k1s1", 1, 1, 0, 512, 512, 7, 7);
        let real = Tvm::new().plan(&layer, &d);
        // Duplicate the fused kernel: no longer a single-kernel plan.
        let k = real.chain().jobs()[0].kernel().clone();
        let plan = DispatchPlan::new(
            "TVM",
            real.algorithm(),
            pruneperf_gpusim::JobChain::from_kernels(vec![k.clone(), k]),
        );
        let diags = audit_plan("TVM", &plan, &layer, &d);
        assert!(diags.iter().any(|x| x.rule == rules::PA010), "{diags:?}");
    }

    #[test]
    fn covered_channels_tracks_the_padding() {
        let d = hikey();
        let plan92 = AclGemm::new().plan(&l16(92), &d);
        assert_eq!(covered_channels(&plan92), Some(92)); // 80 + 12
        let plan93 = AclGemm::new().plan(&l16(93), &d);
        assert_eq!(covered_channels(&plan93), Some(96)); // single padded
        let cudnn = Cudnn::new().plan(&l16(97), &Device::jetson_tx2());
        assert_eq!(covered_channels(&cudnn), Some(128)); // 4 N-tiles
    }
}

//! The resource-bound rules (`RB001`–`RB004`).
//!
//! The search arc (ROADMAP item 4) keeps millions of candidate plans in
//! flight through long-lived state — the `LatencyCache`, the `KernelMemo`,
//! job queues, trace buffers. A collection that only ever grows is a slow
//! memory leak at serving scale, and the paper's §IV caching argument only
//! holds while the cache fits the device. These rules make boundedness a
//! reviewed property:
//!
//! - `RB001` — a grow-only struct field: a `self.`-prefixed collection
//!   receiving `push`/`insert`/`extend` with no shrink site
//!   (`remove`/`pop`/`clear`/`truncate`/`drain`/…) anywhere in the same
//!   file (marker: `lint: allow(grow)`, one marked grow site justifies
//!   the field).
//! - `RB002` — unbounded channel construction (`channel()`,
//!   `unbounded()`): without a capacity there is no backpressure
//!   (marker: `lint: allow(unbounded-channel)`).
//! - `RB003` — a cache-like struct (`*Cache`, `*Memo`) in a file with no
//!   capacity policy: no shrink site, no eviction-named function and no
//!   capacity-limit vocabulary (`max_entries`, `max_capacity`,
//!   `capacity_limit`, `evict`). The `lint: allow(cache-bound)` marker on
//!   the struct declaration is the reviewed justification.
//! - `RB004` — self-recursion on the fallible API surface with no
//!   depth/fuel-style bound in scope: unbounded recursion turns a deep
//!   input into a stack overflow, which no `Result` can catch (marker:
//!   `lint: allow(recursion-bound)`).
//!
//! Field identity is scoped per file, like lock identity in
//! [`crate::callgraph`]: same-named fields in different modules are
//! genuinely different collections. Shrink evidence is likewise per-file —
//! an over-approximation pair documented in `DESIGN.md` §13.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::model::MutKind;
use crate::panic_path::FALLIBLE_ROOTS;
use crate::rules;

/// Call names that construct an unbounded channel (`RB002`).
const UNBOUNDED_CHANNEL_CALLS: &[&str] = &["channel", "unbounded"];

/// Function names that count as eviction evidence for `RB003` even
/// without a modeled shrink mutation (the body may shrink through a
/// helper the token scan cannot see).
const EVICTION_FN_NAMES: &[&str] = &[
    "clear",
    "evict",
    "trim",
    "shrink",
    "invalidate",
    "reset",
    "prune",
];

/// Runs the RB rules over the call graph's model.
pub fn check(graph: &CallGraph<'_>) -> Vec<Diagnostic> {
    let model = graph.model();
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Per-file shrink evidence and per-(file, field) grow sites.
    let mut shrunk_fields: BTreeMap<(&str, &str), ()> = BTreeMap::new();
    // (file, field) -> (first site, any allow(grow) marker on a site).
    let mut grow_sites: BTreeMap<(&str, &str), (usize, bool)> = BTreeMap::new();
    for f in &model.functions {
        for m in &f.mutations {
            let field = m.path.split('.').next().unwrap_or(&m.path);
            match m.kind {
                MutKind::Shrink => {
                    shrunk_fields.insert((f.file.as_str(), field), ());
                }
                MutKind::Grow if m.self_prefixed => {
                    let slot = grow_sites
                        .entry((f.file.as_str(), field))
                        .or_insert((m.line, false));
                    slot.0 = slot.0.min(m.line);
                    slot.1 |= f.allows(m.line, "grow");
                }
                _ => {}
            }
        }
    }
    for (&(file, field), &(line, justified)) in &grow_sites {
        if justified || shrunk_fields.contains_key(&(file, field)) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                rules::RB001,
                severity(rules::RB001),
                format!("{file}:{line}"),
                format!(
                    "field `{field}` only ever grows: it receives pushes/inserts \
                     but has no shrink site in `{file}`"
                ),
            )
            .with_hint(
                "add an eviction/clear path, or mark one grow site \
                 `// lint: allow(grow) — <why the size is bounded>`",
            ),
        );
    }

    for f in &model.functions {
        for c in &f.calls {
            if !UNBOUNDED_CHANNEL_CALLS.contains(&c.name.as_str())
                || f.allows(c.line, "unbounded-channel")
            {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    rules::RB002,
                    severity(rules::RB002),
                    format!("{}:{}", f.file, c.line),
                    format!(
                        "`{}(…)` constructs an unbounded channel — producers never \
                         block, so a slow consumer grows the queue without limit",
                        c.name
                    ),
                )
                .with_hint(
                    "use a bounded variant (`sync_channel`, `bounded`) sized to the \
                     admission policy, or mark \
                     `// lint: allow(unbounded-channel) — <why it is bounded>`",
                ),
            );
        }
    }

    for facts in &model.facts {
        if facts.cache_structs.is_empty() {
            continue;
        }
        let fns_in_file = || model.functions.iter().filter(move |f| f.file == facts.file);
        let has_shrink =
            fns_in_file().any(|f| f.mutations.iter().any(|m| m.kind == MutKind::Shrink));
        let has_eviction_fn = fns_in_file().any(|f| {
            EVICTION_FN_NAMES
                .iter()
                .any(|n| f.name == *n || f.name.contains("evict"))
        });
        if facts.has_capacity_tokens || has_shrink || has_eviction_fn {
            continue;
        }
        for (line, name) in &facts.cache_structs {
            diags.push(
                Diagnostic::new(
                    rules::RB003,
                    severity(rules::RB003),
                    format!("{}:{}", facts.file, line),
                    format!(
                        "cache-like struct `{name}` has no capacity policy: no \
                         eviction method, shrink site or capacity limit in its file"
                    ),
                )
                .with_hint(
                    "add bounded eviction (max_entries + evict/clear), or mark the \
                     declaration `// lint: allow(cache-bound) — <why it is bounded>`",
                ),
            );
        }
    }

    let mut roots: Vec<usize> = Vec::new();
    for name in FALLIBLE_ROOTS {
        roots.extend_from_slice(graph.functions_named(name));
    }
    roots.sort_unstable();
    roots.dedup();
    let (reached, parent, root_of) = graph.reach_from(&roots);
    for (i, f) in model.functions.iter().enumerate() {
        if !reached[i] || f.has_depth_bound_token {
            continue;
        }
        // Direct self-recursion only: a bare `name(…)` or `self.name(…)`
        // call. A qualified `Vec::new()` inside `fn new`, or `x.len()`
        // inside `fn len`, resolves to the same bare name without being
        // recursion (mutual recursion is a documented miss — §13).
        let Some(site) = f
            .calls
            .iter()
            .find(|c| c.name == f.name && (c.bare || c.recv.as_deref() == Some("self")))
        else {
            continue;
        };
        if f.allows(site.line, "recursion-bound") {
            continue;
        }
        let root_name = root_of[i]
            .map(|r| model.functions[r].name.as_str())
            .unwrap_or("?");
        let chain = graph.chain_to(&parent, i, 6);
        diags.push(
            Diagnostic::new(
                rules::RB004,
                severity(rules::RB004),
                format!("{}:{}", f.file, site.line),
                format!(
                    "`{}` recurses with no depth bound on the fallible path: \
                     reachable from `{root_name}` via {chain}",
                    f.name
                ),
            )
            .with_hint(
                "thread an explicit depth/fuel parameter and fail when it runs out, \
                 or mark `// lint: allow(recursion-bound) — <why depth is bounded>`",
            ),
        );
    }

    diags
}

/// Catalog severity for a rule id.
fn severity(rule: &str) -> crate::Severity {
    rules::rule_info(rule).map_or(crate::Severity::Error, |r| r.severity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self, SourceModel};

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let functions = model::model_file("lib.rs", src);
        let facts = vec![model::file_facts("lib.rs", src)];
        let m = SourceModel {
            functions,
            facts,
            files: 1,
        };
        let g = CallGraph::build(&m);
        check(&g)
    }

    #[test]
    fn rb001_flags_grow_only_fields_and_accepts_shrinks() {
        let bad = "\
impl Log {
    fn record(&mut self, x: u32) {
        self.entries.push(x);
    }
}
";
        let diags = diags_for(bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::RB001);
        assert!(diags[0].message.contains("entries"), "{diags:?}");

        let balanced = "\
impl Log {
    fn record(&mut self, x: u32) {
        self.entries.push(x);
    }
    fn flush(&mut self) {
        self.entries.clear();
    }
}
";
        assert!(diags_for(balanced).is_empty(), "{:?}", diags_for(balanced));
    }

    #[test]
    fn rb001_marker_justifies_the_field() {
        let src = "\
impl Log {
    fn record(&mut self, x: u32) {
        // lint: allow(grow) — bounded by the fixed stage count
        self.entries.push(x);
    }
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn rb002_flags_unbounded_channels() {
        let src = "\
fn wire() -> (Sender<u32>, Receiver<u32>) {
    mpsc::channel()
}
";
        let diags = diags_for(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::RB002);

        let marked = "\
fn wire() -> (Sender<u32>, Receiver<u32>) {
    // lint: allow(unbounded-channel) — at most one message per run
    mpsc::channel()
}
";
        assert!(diags_for(marked).is_empty(), "{:?}", diags_for(marked));
    }

    #[test]
    fn rb003_flags_policy_free_caches_and_accepts_evidence() {
        let bad = "\
pub struct PlanCache {
    rows: Vec<Row>,
}
impl PlanCache {
    fn put(&mut self, r: Row) {
        // lint: allow(grow) — seeded: the rule under test is RB003
        self.rows.push(r);
    }
}
";
        let diags = diags_for(bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::RB003);

        let capped = "\
pub struct PlanCache {
    rows: Vec<Row>,
    max_entries: usize,
}
";
        assert!(diags_for(capped).is_empty(), "{:?}", diags_for(capped));

        let evicting = "\
pub struct PlanCache {
    rows: Vec<Row>,
}
impl PlanCache {
    fn evict_oldest(&mut self) {
        self.rows.pop();
    }
}
";
        assert!(diags_for(evicting).is_empty(), "{:?}", diags_for(evicting));
    }

    #[test]
    fn rb004_flags_unbounded_fallible_recursion() {
        let bad = "\
fn try_cost(v: &[u32]) -> Result<u32, ()> {
    descend(v)
}
fn descend(v: &[u32]) -> Result<u32, ()> {
    if v.is_empty() {
        return Ok(0);
    }
    descend(&v[1..])
}
";
        let diags = diags_for(bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, rules::RB004);
        assert!(diags[0].message.contains("try_cost → descend"), "{diags:?}");

        let bounded = "\
fn try_cost(v: &[u32]) -> Result<u32, ()> {
    descend(v, 8)
}
fn descend(v: &[u32], fuel: u32) -> Result<u32, ()> {
    if v.is_empty() || fuel == 0 {
        return Ok(0);
    }
    descend(&v[1..], fuel - 1)
}
";
        assert!(diags_for(bounded).is_empty(), "{:?}", diags_for(bounded));
    }

    #[test]
    fn cold_recursion_is_ignored() {
        let src = "\
fn walk(v: &[u32]) -> u32 {
    if v.is_empty() {
        0
    } else {
        walk(&v[1..])
    }
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }
}

//! The hot-path performance rules (`PF001`–`PF006`).
//!
//! The paper's search loop (§V) and the serving arc evaluate millions of
//! candidate plans through `cost`/`try_cost` and the sweep fan-out; PR 6
//! made that path allocation-free (`ChainScratch`, `KernelMemo`) and
//! these rules keep it that way. *Hotness* propagates interprocedurally:
//! a function is hot if it is named in [`HOT_ROOTS`], calls a parallel
//! fan-out primitive (its closure body runs once per work item), or is
//! transitively called by either. Inside a hot function, the per-function
//! loop-context tracker ([`crate::model::FunctionModel::loop_depth`])
//! decides whether a site executes per iteration.
//!
//! - `PF001` — heap allocation (`Vec::new`, `vec![…]`, `Box::new`,
//!   `collect`, `with_capacity`, …) inside a hot loop body (marker:
//!   `lint: allow(hot-alloc)`).
//! - `PF002` — per-iteration string formatting (`format!`, `to_string`,
//!   `String::from`) inside a hot loop body (marker:
//!   `lint: allow(hot-format)`).
//! - `PF003` — `clone()` of a modeled (non-`Arc`-handle) value inside a
//!   hot loop body (marker: `lint: allow(hot-clone)`).
//! - `PF004` — `push`/`insert` growth inside a hot loop into a local
//!   collection bound without `with_capacity` and never `reserve`d
//!   (marker: `lint: allow(reserve)`).
//! - `PF005` — a lock acquisition inside a hot loop body: the guard is
//!   re-taken every iteration when it could usually be hoisted (marker:
//!   `lint: allow(hot-lock)`).
//! - `PF006` — a hot loop calling an unmemoized engine entry point
//!   (`run_chain`, `run_chain_with`, `simulate_chain`) instead of going
//!   through the `LatencyCache`/`KernelMemo` layers (marker:
//!   `lint: allow(hot-engine)`).
//!
//! Every diagnostic carries the shortest hot-root→site call chain, like
//! the PN rules, so the reader can see *why* the function is hot. The
//! `lint: allow(hot-root)` marker on a fan-out call site exempts that
//! site from seeding hotness — for build-time analyzer drivers that fan
//! out over files, not serving traffic. Reachability shares the
//! [`crate::callgraph`] over-approximation documented in `DESIGN.md`
//! §12–§13.

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::model::{AllocKind, FunctionModel, MutKind};
use crate::rules;

/// Bare names of the serving/search hot roots.
pub const HOT_ROOTS: &[&str] = &[
    "cost",
    "try_cost",
    "kernel_cost",
    "cost_batch",
    "run_chain",
    "run_chain_with",
    "measure_batch",
];

/// Parallel fan-out primitives: a function calling one of these runs its
/// closure body once per work item, so the caller is hot unless the call
/// site carries `lint: allow(hot-root)`.
pub const FANOUT_CALLS: &[&str] = &["ordered_parallel_map", "contained_parallel_map"];

/// Engine entry points a hot loop must not call directly (`PF006`) — the
/// memoized layers (`LatencyCache`, `KernelMemo`) exist so repeated
/// costing assembles instead of re-simulating.
pub const ENGINE_ENTRY_POINTS: &[&str] = &["run_chain", "run_chain_with", "simulate_chain"];

/// Runs the PF rules over the call graph's model.
///
/// Returns the diagnostics plus the number of hot functions (for the
/// report's `hot_functions` coverage counter).
pub fn check(graph: &CallGraph<'_>) -> (Vec<Diagnostic>, usize) {
    let model = graph.model();
    let mut roots: Vec<usize> = Vec::new();
    for name in HOT_ROOTS {
        roots.extend_from_slice(graph.functions_named(name));
    }
    for (i, f) in model.functions.iter().enumerate() {
        let seeds_hotness = f
            .calls
            .iter()
            .any(|c| FANOUT_CALLS.contains(&c.name.as_str()) && !f.allows(c.line, "hot-root"));
        if seeds_hotness {
            roots.push(i);
        }
    }
    roots.sort_unstable();
    roots.dedup();
    let (reached, parent, root_of) = graph.reach_from(&roots);
    let hot_functions = reached.iter().filter(|r| **r).count();

    let mut diags: Vec<Diagnostic> = Vec::new();
    for (i, f) in model.functions.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        let root_name = root_of[i]
            .map(|r| model.functions[r].name.as_str())
            .unwrap_or("?");
        let chain = graph.chain_to(&parent, i, 6);
        let via = format!("hot from `{root_name}` via {chain}");

        for a in &f.allocs {
            if f.loop_depth(a.line) == 0 {
                continue;
            }
            let (rule, marker, what) = match a.kind {
                AllocKind::Alloc => (rules::PF001, "hot-alloc", "allocates"),
                AllocKind::Format => (rules::PF002, "hot-format", "formats a string"),
                AllocKind::Clone => (rules::PF003, "hot-clone", "clones"),
            };
            if f.allows(a.line, marker) {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    rule,
                    severity(rule),
                    format!("{}:{}", f.file, a.line),
                    format!("`{}` {what} every iteration of a hot loop; {via}", a.token),
                )
                .with_hint(format!(
                    "hoist it out of the loop (reusable scratch, pre-sized buffer) \
                     or mark `// lint: allow({marker}) — <why it is cheap here>`"
                )),
            );
        }

        diags.extend(check_pf004(f, &via));

        for l in &f.locks {
            if f.loop_depth(l.line) == 0 || f.allows(l.line, "hot-lock") {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    rules::PF005,
                    severity(rules::PF005),
                    format!("{}:{}", f.file, l.line),
                    format!(
                        "`{}` is re-acquired every iteration of a hot loop; {via}",
                        l.path
                    ),
                )
                .with_hint(
                    "hoist the guard above the loop, or mark \
                     `// lint: allow(hot-lock) — <why per-iteration locking is required>`",
                ),
            );
        }

        for c in &f.calls {
            if !ENGINE_ENTRY_POINTS.contains(&c.name.as_str())
                || f.loop_depth(c.line) == 0
                || f.allows(c.line, "hot-engine")
            {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    rules::PF006,
                    severity(rules::PF006),
                    format!("{}:{}", f.file, c.line),
                    format!(
                        "hot loop calls unmemoized engine entry point `{}`; {via}",
                        c.name
                    ),
                )
                .with_hint(
                    "route repeated costing through the LatencyCache/KernelMemo \
                     layers, or mark `// lint: allow(hot-engine) — <why>`",
                ),
            );
        }
    }
    (diags, hot_functions)
}

/// `PF004`: growth inside a hot loop into a local collection bound without
/// `with_capacity` and never `reserve`d anywhere in the function.
fn check_pf004(f: &FunctionModel, via: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in &f.mutations {
        if m.kind != MutKind::Grow
            || m.self_prefixed
            || f.loop_depth(m.line) == 0
            || f.allows(m.line, "reserve")
        {
            continue;
        }
        // Only flag growth into a binding whose initializer we saw: that
        // is the case where the caller demonstrably *could* pre-size.
        let Some(bind) = f
            .coll_bindings
            .iter()
            .rfind(|b| b.name == m.path && b.line <= m.line)
        else {
            continue;
        };
        if bind.with_capacity {
            continue;
        }
        let reserved = f
            .mutations
            .iter()
            .any(|r| r.kind == MutKind::Reserve && r.path == m.path);
        if reserved {
            continue;
        }
        diags.push(
            Diagnostic::new(
                rules::PF004,
                severity(rules::PF004),
                format!("{}:{}", f.file, m.line),
                format!(
                    "`{}.{}(…)` grows an unreserved local collection inside a hot loop; {via}",
                    m.path, m.method
                ),
            )
            .with_hint(format!(
                "bind `{}` with `with_capacity(…)` or `reserve` before the loop, \
                 or mark `// lint: allow(reserve) — <why the bound is unknowable>`",
                m.path
            )),
        );
    }
    diags
}

/// Catalog severity for a rule id (errors if the catalog is missing it,
/// which the rules tests make impossible).
fn severity(rule: &str) -> crate::Severity {
    rules::rule_info(rule).map_or(crate::Severity::Error, |r| r.severity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{self, SourceModel};

    fn diags_for(src: &str) -> Vec<Diagnostic> {
        let functions = model::model_file("lib.rs", src);
        let m = SourceModel {
            functions,
            facts: Vec::new(),
            files: 1,
        };
        let g = CallGraph::build(&m);
        check(&g).0
    }

    #[test]
    fn cold_functions_are_ignored() {
        let src = "\
fn build_report(rows: &[u32]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        out.push(format!(\"{r}\"));
    }
    out
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn pf001_pf002_flag_hot_loop_allocs_with_chains() {
        let src = "\
fn cost(rows: &[u32]) -> u32 {
    helper(rows)
}
fn helper(rows: &[u32]) -> u32 {
    let mut total = 0;
    for r in rows {
        let scratch = Vec::with_capacity(4);
        let label = format!(\"{r}\");
        total += label.len() as u32 + scratch.capacity() as u32;
    }
    total
}
";
        let diags = diags_for(src);
        let rules_found: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules_found.contains(&rules::PF001), "{diags:?}");
        assert!(rules_found.contains(&rules::PF002), "{diags:?}");
        assert!(
            diags.iter().all(|d| d.message.contains("cost → helper")),
            "{diags:?}"
        );
    }

    #[test]
    fn allocations_outside_loops_stay_clean_on_hot_paths() {
        let src = "\
fn cost(rows: &[u32]) -> u32 {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(*r);
    }
    out.len() as u32
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn pf003_flags_clone_but_not_arc_handles() {
        let src = "\
fn cost(plans: &[Plan], shared: Arc<Mutex<u32>>) -> usize {
    let mut n = 0;
    for p in plans {
        let copy = p.clone();
        let handle = shared.clone();
        n += use_both(copy, handle);
    }
    n
}
";
        let diags = diags_for(src);
        let pf3: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == rules::PF003).collect();
        assert_eq!(pf3.len(), 1, "{diags:?}");
        assert!(pf3[0].message.contains("p.clone()"), "{pf3:?}");
    }

    #[test]
    fn pf004_flags_unreserved_growth_and_respects_capacity() {
        let bad = "\
fn cost(rows: &[u32]) -> usize {
    let mut out = Vec::new();
    for r in rows {
        out.push(*r);
    }
    out.len()
}
";
        let diags = diags_for(bad);
        assert!(diags.iter().any(|d| d.rule == rules::PF004), "{diags:?}");

        let reserved = "\
fn cost(rows: &[u32]) -> usize {
    let mut out = Vec::new();
    out.reserve(rows.len());
    for r in rows {
        out.push(*r);
    }
    out.len()
}
";
        let diags = diags_for(reserved);
        assert!(!diags.iter().any(|d| d.rule == rules::PF004), "{diags:?}");
    }

    #[test]
    fn pf005_flags_lock_in_hot_loop() {
        let src = "\
fn cost(&self, rows: &[u32]) -> u32 {
    let mut total = 0;
    for r in rows {
        let g = self.stats.lock().unwrap_or_else(PoisonError::into_inner);
        total += *g + r;
    }
    total
}
";
        let diags = diags_for(src);
        assert!(diags.iter().any(|d| d.rule == rules::PF005), "{diags:?}");
    }

    #[test]
    fn pf006_flags_engine_calls_in_hot_loops() {
        let src = "\
fn measure_batch(chains: &[Chain]) -> Vec<u64> {
    let mut out = Vec::with_capacity(chains.len());
    for c in chains {
        out.push(run_chain(c));
    }
    out
}
fn run_chain(c: &Chain) -> u64 {
    c.len() as u64
}
";
        let diags = diags_for(src);
        assert!(diags.iter().any(|d| d.rule == rules::PF006), "{diags:?}");
    }

    #[test]
    fn fanout_callers_are_hot_unless_marked() {
        let hot = "\
fn drive(items: &[u32]) -> Vec<u32> {
    ordered_parallel_map(items, 4, |x| step(*x))
}
fn step(x: u32) -> u32 {
    let mut v = Vec::new();
    for i in 0..x {
        v.push(i);
    }
    v.len() as u32
}
";
        assert!(
            diags_for(hot).iter().any(|d| d.rule == rules::PF004),
            "{:?}",
            diags_for(hot)
        );

        let marked = "\
fn drive(items: &[u32]) -> Vec<u32> {
    // lint: allow(hot-root) — build-time driver, not a serving path
    ordered_parallel_map(items, 4, |x| step(*x))
}
fn step(x: u32) -> u32 {
    let mut v = Vec::new();
    for i in 0..x {
        v.push(i);
    }
    v.len() as u32
}
";
        assert!(diags_for(marked).is_empty(), "{:?}", diags_for(marked));
    }

    #[test]
    fn markers_suppress_hot_findings() {
        let src = "\
fn cost(rows: &[u32]) -> u32 {
    let mut total = 0;
    for r in rows {
        // lint: allow(hot-format) — seeded justification
        let label = format!(\"{r}\");
        total += label.len() as u32;
    }
    total
}
";
        assert!(diags_for(src).is_empty(), "{:?}", diags_for(src));
    }

    #[test]
    fn hot_function_count_is_reported() {
        let src = "\
fn cost(v: &[u32]) -> u32 {
    helper(v)
}
fn helper(v: &[u32]) -> u32 {
    v.len() as u32
}
fn cold() {}
";
        let functions = model::model_file("lib.rs", src);
        let m = SourceModel {
            functions,
            facts: Vec::new(),
            files: 1,
        };
        let g = CallGraph::build(&m);
        assert_eq!(check(&g).1, 2);
    }
}

//! The lightweight per-function source model shared by the concurrency
//! (`CC…`) and panic-path (`PN…`) analyses.
//!
//! Like the source lint, the parser here is deliberately token-level: no
//! full Rust grammar, just comment/string stripping (so patterns never
//! fire inside text), brace tracking (so every line belongs to exactly one
//! innermost function) and pattern extraction tuned to this codebase's
//! conventions. What it recovers per function:
//!
//! - **lock sites** — `lock()` / `read()` / `write()` acquisitions (the
//!   reader/writer forms only in files that mention `RwLock`), each with a
//!   normalized *lock path* (the receiver expression, `self.`-stripped,
//!   argument lists collapsed to `()` and index expressions to `[_]`),
//!   the guard binding kind and a conservative guard scope;
//! - **call sites** — identifiers applied to an argument list, resolved
//!   later by bare name against every workspace function (a documented
//!   over-approximation);
//! - **panic sites** — `unwrap`/`expect`, the panicking macro family,
//!   slice/array indexing and division by a `.len()`/`.count()` divisor;
//! - **spawn sites and `Arc<Mutex<_>>` clones** — the raw material for
//!   the cross-thread sharing rule;
//! - **loop spans** — `for`/`while`/`loop` body extents recovered by the
//!   same brace tracking, so the hot-path rules (`PF…`) know which sites
//!   execute per iteration;
//! - **allocation/formatting sites** — heap constructors, `collect`,
//!   `format!`/`to_string` and `clone()` calls, for the hot-loop rules;
//! - **collection mutations** — grow (`push`/`insert`/`extend`…) and
//!   shrink (`pop`/`remove`/`clear`…) calls with normalized receiver
//!   paths, feeding the resource-bound rules (`RB…`).
//!
//! Known over-approximations are documented in `DESIGN.md` §12–§13: calls
//! resolve by bare name (all same-named functions are deemed callees),
//! lock identity is `(file, path)` so a lock reached through a local
//! alias becomes a distinct node, and guard scopes extend to the end of
//! the binding's block even when the guard is moved or dropped early by
//! means other than a literal `drop(guard)`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use pruneperf_profiler::sweep;

/// How a lock guard is bound at its acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardBinding {
    /// `let name = …` (including `let mut name`): the guard lives until
    /// the end of the enclosing block or an explicit `drop(name)`.
    Named(String),
    /// `let _ = …`: the guard drops immediately — an empty critical
    /// section, almost always a bug (`CC006`).
    Discarded,
    /// No `let`: a temporary, live to the end of its statement.
    Temporary,
}

/// Which accessor acquired the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock`.
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl LockKind {
    /// The accessor name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Lock => "lock",
            LockKind::Read => "read",
            LockKind::Write => "write",
        }
    }
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Normalized receiver path (`shards[_]`, `shard()`, `attempts`).
    pub path: String,
    /// Accessor used.
    pub kind: LockKind,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Column (0-based char index) of the accessor's `.`.
    pub col: usize,
    /// How the resulting guard is bound.
    pub binding: GuardBinding,
    /// Last 1-based line on which the guard may still be live.
    pub scope_end: usize,
    /// The guard is consumed by a bare `.unwrap()` / `.expect(…)`.
    pub unwrapped: bool,
    /// The acquisition uses the poison-recovery idiom
    /// (`unwrap_or_else(PoisonError::into_inner)`) or otherwise handles
    /// the `Err` case.
    pub poison_handled: bool,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Bare callee name (`shard`, `cost`, `ordered_parallel_map`).
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// Column (0-based char index) of the callee identifier.
    pub col: usize,
    /// For a method call `recv.name(…)` with a simple identifier
    /// receiver: that identifier. Lets the concurrency rules recognize
    /// calls on a lock guard itself (methods on the *guarded data*, e.g.
    /// `table.clear()` on a `MutexGuard<HashMap<…>>`), which can never
    /// reach a workspace lock.
    pub recv: Option<String>,
    /// The call is written as a bare `name(…)` — not `recv.name(…)` and
    /// not a `Path::name(…)` qualified call. Only a bare call (or a
    /// `self.name(…)` method call) can be direct self-recursion; a
    /// `Vec::new()` inside `fn new` cannot (`RB004`).
    pub bare: bool,
}

/// What kind of panic a panic site can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` / `.expect(…)` (suppressed by `lint: allow(unwrap)`).
    Unwrap,
    /// `panic!` / `assert!` / `assert_eq!` / `assert_ne!` /
    /// `unreachable!` / `todo!` / `unimplemented!` (suppressed by
    /// `lint: allow(panic)`). `debug_assert*` is exempt: it vanishes in
    /// release builds, which is what the serving arc runs.
    Macro,
    /// Slice/array indexing `expr[…]` (suppressed by
    /// `lint: allow(index)`).
    Index,
    /// Division or remainder with a `.len()` / `.count()` divisor
    /// (suppressed by `lint: allow(div)`).
    DivByLen,
}

/// One potential panic source inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What kind of panic this site can raise.
    pub kind: PanicKind,
    /// 1-based line of the site.
    pub line: usize,
    /// The offending token, for the diagnostic message.
    pub token: String,
}

/// One `for`/`while`/`loop` body inside a function, with a conservative
/// extent: the span runs from the loop keyword's line to the last line of
/// the body, inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSpan {
    /// 1-based line of the loop keyword (the header line).
    pub start_line: usize,
    /// 1-based last line of the loop body, inclusive.
    pub end_line: usize,
}

/// What an allocation-ish site does per execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// A heap-allocating constructor or collector (`Vec::new`, `vec![…]`,
    /// `Box::new`, `with_capacity`, `.collect()`, `.to_vec()`,
    /// `.to_owned()`, …).
    Alloc,
    /// String formatting (`format!`, `.to_string()`, `String::from`).
    Format,
    /// `.clone()` on a receiver that is not a tracked `Arc` handle.
    Clone,
}

/// One allocation/formatting/clone site inside a function body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// What the site does per execution.
    pub kind: AllocKind,
    /// 1-based line of the site.
    pub line: usize,
    /// The matched token, for the diagnostic message.
    pub token: String,
}

/// Whether a collection mutation grows, shrinks or pre-sizes its receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutKind {
    /// `push`, `insert`, `extend`, … — the receiver gets bigger.
    Grow,
    /// `pop`, `remove`, `clear`, `truncate`, … — the receiver can shrink.
    Shrink,
    /// `reserve`/`reserve_exact` — capacity evidence for the hot-path
    /// push-without-reserve rule.
    Reserve,
}

/// One collection mutation (`recv.push(…)`, `recv.clear()`, …).
#[derive(Debug, Clone)]
pub struct MutSite {
    /// Normalized receiver path (lock-path rules: `self.`-stripped,
    /// `(…)` → `()`, `[i]` → `[_]`).
    pub path: String,
    /// The receiver was written with a `self.` prefix — a struct field,
    /// i.e. state that outlives the call.
    pub self_prefixed: bool,
    /// Grow, shrink or reserve.
    pub kind: MutKind,
    /// The method name (`push`, `insert`, `clear`, …).
    pub method: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// A local binding initialized from a growable-collection constructor
/// (`let mut out = Vec::new();`, `let s = String::with_capacity(n);`).
#[derive(Debug, Clone)]
pub struct CollBinding {
    /// The bound name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: usize,
    /// The initializer pre-sizes the collection (`with_capacity`).
    pub with_capacity: bool,
}

/// The per-function model the analyses consume.
#[derive(Debug, Clone)]
pub struct FunctionModel {
    /// Workspace-relative `/`-separated file path.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based last line of the body.
    pub end_line: usize,
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
    /// Every lock acquisition, in source order.
    pub locks: Vec<LockSite>,
    /// Every potential panic source, in source order.
    pub panics: Vec<PanicSite>,
    /// Lines containing a `spawn(` call.
    pub spawn_lines: Vec<usize>,
    /// Lines cloning a tracked `Arc<Mutex<_>>` / `Arc<RwLock<_>>` value.
    pub arc_mutex_clone_lines: Vec<usize>,
    /// The raw body carries a `// lock-order:` doc marker.
    pub has_lock_order_doc: bool,
    /// Every `for`/`while`/`loop` body span, in source order.
    pub loops: Vec<LoopSpan>,
    /// Every allocation/formatting/clone site, in source order.
    pub allocs: Vec<AllocSite>,
    /// Every collection grow/shrink/reserve call, in source order.
    pub mutations: Vec<MutSite>,
    /// Local bindings initialized from collection constructors.
    pub coll_bindings: Vec<CollBinding>,
    /// The body mentions a depth/fuel/budget-style identifier — weak
    /// evidence that a recursion is bounded (`RB004`).
    pub has_depth_bound_token: bool,
    /// `(line, key)` pairs for `// lint: allow(key)` markers inside the
    /// body, for the concurrency-rule keys (see [`CC_MARKER_KEYS`]).
    pub allow_marks: Vec<(usize, String)>,
}

/// The suppression-marker keys the concurrency rules honor. The
/// panic-path keys (`unwrap`, `panic`, `index`, `div`) are honored at
/// extraction time instead and never reach the model.
pub const CC_MARKER_KEYS: &[&str] = &[
    "lock-order",
    "guard-call",
    "guard-fanout",
    "lock-unwrap",
    "discard-guard",
];

/// The suppression-marker keys the hot-path performance rules honor,
/// plus `hot-root`, which exempts a fan-out call site from seeding
/// hotness (build-time analyzer paths, not serving paths).
pub const PF_MARKER_KEYS: &[&str] = &[
    "hot-alloc",
    "hot-format",
    "hot-clone",
    "reserve",
    "hot-lock",
    "hot-engine",
    "hot-root",
];

/// The suppression-marker keys the resource-bound rules honor.
/// `cache-bound` is honored at extraction time (a marked cache struct
/// never reaches the model); the rest travel with the model.
pub const RB_MARKER_KEYS: &[&str] = &["grow", "unbounded-channel", "recursion-bound"];

impl FunctionModel {
    /// A `lint: allow(key)` marker on `line` or the line above?
    pub fn allows(&self, line: usize, key: &str) -> bool {
        self.allow_marks
            .iter()
            .any(|(l, k)| k == key && (*l == line || *l + 1 == line))
    }

    /// How many of this function's loop bodies contain the 1-based line.
    ///
    /// The header line itself is excluded: a `for` header's iterator
    /// expression evaluates once, so sites there do not execute per
    /// iteration. (A `while` condition does re-evaluate, but counting it
    /// would claim loop context for sites that may not have it — the
    /// tracker only ever under-approximates nesting, never invents it.)
    pub fn loop_depth(&self, line: usize) -> usize {
        self.loops
            .iter()
            .filter(|l| l.start_line < line && line <= l.end_line)
            .count()
    }
}

/// Per-file facts that live outside any function body.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Workspace-relative `/`-separated file path.
    pub file: String,
    /// `(line, name)` for every declared struct whose name contains
    /// `Cache` or `Memo` and carries no `lint: allow(cache-bound)`
    /// marker — the candidates for the capacity-policy rule (`RB003`).
    pub cache_structs: Vec<(usize, String)>,
    /// The file mentions an explicit capacity policy
    /// (`max_entries`, `max_capacity`, `capacity_limit`, `evict`).
    pub has_capacity_tokens: bool,
}

/// The whole-workspace model: every first-party function, in file-then-
/// line order.
#[derive(Debug, Clone, Default)]
pub struct SourceModel {
    /// Every modeled function.
    pub functions: Vec<FunctionModel>,
    /// Per-file facts, in file order.
    pub facts: Vec<FileFacts>,
    /// Files scanned.
    pub files: usize,
}

/// Builds the model for every first-party source file under `root`.
///
/// Layout detection mirrors [`crate::source_lint::lint_sources`]: a
/// *workspace* root (contains `crates/`) scans `src/**/*.rs` plus
/// `crates/*/src/**/*.rs`; any other directory is a *fixture* tree and
/// every `.rs` file under it is modeled. Test regions (everything from a
/// column-0 `#[cfg(test)]` down) are excluded.
///
/// Per-file parsing fans out over `jobs` workers with input-ordered
/// reduction, so the model — and every report derived from it — is
/// byte-identical at any worker count.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn build_model(root: &Path, jobs: usize) -> io::Result<SourceModel> {
    let inputs = read_sources(root)?;
    // lint: allow(hot-root) — build-time analyzer path, not a serving path
    let per_file = sweep::ordered_parallel_map(&inputs, jobs, |(rel, content)| {
        (model_file(rel, content), file_facts(rel, content))
    });
    let mut functions: Vec<FunctionModel> = Vec::new();
    let mut facts: Vec<FileFacts> = Vec::with_capacity(inputs.len());
    for (fns, fact) in per_file {
        functions.extend(fns);
        facts.push(fact);
    }
    functions.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    facts.sort_by(|a, b| a.file.cmp(&b.file));
    Ok(SourceModel {
        functions,
        facts,
        files: inputs.len(),
    })
}

/// Reads every first-party `.rs` file under `root` (workspace or fixture
/// layout), sorted by relative path.
pub(crate) fn read_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let workspace = root.join("crates").is_dir();
    let mut files: Vec<PathBuf> = Vec::new();
    if workspace {
        collect_rs(&root.join("src"), &mut files)?;
        let mut crate_dirs: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(root.join("crates"))? {
            let p = entry?.path();
            if p.is_dir() {
                crate_dirs.push(p);
            }
        }
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    } else {
        collect_rs(root, &mut files)?;
    }
    let mut inputs: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, fs::read_to_string(path)?));
    }
    inputs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(inputs)
}

/// Recursively collects `.rs` files (sorted per directory; missing
/// directories are fine).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

use crate::source_lint::marker_allows;

/// A marker on line `i` (0-based) or the line directly above suppresses
/// the finding.
fn allowed(raw_lines: &[&str], i: usize, key: &str) -> bool {
    marker_allows(raw_lines.get(i).copied().unwrap_or(""), key)
        || (i > 0 && marker_allows(raw_lines[i - 1], key))
}

/// One function's span recovered by the brace scanner.
struct FnSpan {
    name: String,
    start_line: usize, // 1-based
    end_line: usize,   // 1-based, inclusive
}

/// Recovers every function span in the stripped text via brace tracking.
///
/// A `fn` keyword arms a pending declaration; the body opens at the first
/// `{` reached with the declaration's parentheses balanced (a `;` first
/// means a trait method without a body). Bodies nest; every span closes
/// when its opening depth is restored.
fn function_spans(stripped: &str) -> Vec<FnSpan> {
    let b: Vec<char> = stripped.chars().collect();
    let n = b.len();
    let mut spans: Vec<FnSpan> = Vec::new();
    let mut open: Vec<(String, usize, usize)> = Vec::new(); // name, start_line, open_depth
    let mut pending: Option<(String, usize, i32)> = None; // name, line, paren depth
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut i = 0usize;
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ident(c) {
            let start = i;
            while i < n && ident(b[i]) {
                i += 1;
            }
            let word: String = b[start..i].iter().collect();
            let prev = start.checked_sub(1).map(|j| b[j]);
            let word_bounded = prev.is_none_or(|p| !ident(p));
            if word == "fn" && word_bounded && pending.is_none() {
                // Capture the following identifier as the function name.
                let mut j = i;
                while j < n && b[j].is_whitespace() {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                let name_start = j;
                while j < n && ident(b[j]) {
                    j += 1;
                }
                if j > name_start {
                    let name: String = b[name_start..j].iter().collect();
                    pending = Some((name, line, 0));
                }
                i = j;
            }
            continue;
        }
        match c {
            '(' => {
                if let Some((_, _, d)) = pending.as_mut() {
                    *d += 1;
                }
            }
            ')' => {
                if let Some((_, _, d)) = pending.as_mut() {
                    *d -= 1;
                }
            }
            ';' if pending.as_ref().is_some_and(|(_, _, d)| *d == 0) => {
                pending = None; // bodyless trait method
            }
            '{' => {
                if let Some((name, fn_line, d)) = pending.take() {
                    if d == 0 {
                        open.push((name, fn_line, depth));
                    } else {
                        pending = Some((name, fn_line, d));
                    }
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if open.last().is_some_and(|(_, _, od)| *od == depth) {
                    // lint: allow(unwrap) — guarded by the line above
                    let (name, start_line, _) = open.pop().unwrap();
                    spans.push(FnSpan {
                        name,
                        start_line,
                        end_line: line,
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
    spans.sort_by_key(|s| (s.start_line, std::cmp::Reverse(s.end_line)));
    spans
}

/// Brace depth at the start of each (stripped) line, 0-based index.
fn line_start_depths(stripped: &str) -> Vec<usize> {
    let mut depths = Vec::new();
    let mut depth = 0usize;
    for l in stripped.lines() {
        depths.push(depth);
        for c in l.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
    }
    depths
}

/// The innermost function span owning each 1-based line, as an index into
/// `spans` (sorted by start line, outer-before-inner on ties).
fn innermost_owner(spans: &[FnSpan], line: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, s) in spans.iter().enumerate() {
        if s.start_line <= line && line <= s.end_line {
            let better = match best {
                None => true,
                Some(b) => spans[b].start_line <= s.start_line,
            };
            if better {
                best = Some(i);
            }
        }
    }
    best
}

/// Names bound to `Arc<Mutex<…>>` / `Arc<RwLock<…>>` values in the file:
/// `name: Arc<Mutex<…>>` fields/params and `let name = Arc::new(Mutex…`
/// bindings.
fn arc_mutex_names(code_lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for line in code_lines {
        for pat in [
            "Arc<Mutex<",
            "Arc<RwLock<",
            "Arc::new(Mutex::new",
            "Arc::new(RwLock::new",
        ] {
            for (idx, _) in line.match_indices(pat) {
                let prefix = line[..idx].trim_end();
                let prefix = prefix.trim_end_matches([':', '=']).trim_end();
                let name: String = prefix
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !name.is_empty()
                    && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !matches!(name.as_str(), "let" | "mut" | "pub")
                    && !names.contains(&name)
                {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Builds the per-function models for one file.
///
/// Public so integration tests (the loop-context property tests) can
/// model synthesized sources without touching the filesystem.
pub fn model_file(rel: &str, raw: &str) -> Vec<FunctionModel> {
    let stripped = crate::source_lint::strip_code(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();
    // Everything from a column-0 `#[cfg(test)]` onward is test code.
    let test_start = raw_lines
        .iter()
        .position(|l| l.trim_end() == "#[cfg(test)]" && !l.starts_with(char::is_whitespace))
        .unwrap_or(raw_lines.len());
    let spans: Vec<FnSpan> = function_spans(&stripped)
        .into_iter()
        .filter(|s| s.start_line <= test_start)
        .collect();
    let depths = line_start_depths(&stripped);
    let has_rwlock = stripped.contains("RwLock");
    let arc_names = arc_mutex_names(&code_lines);
    let arc_clone_pats: Vec<(String, String)> = arc_names
        .iter()
        .map(|name| (format!("{name}.clone()"), format!("Arc::clone(&{name})")))
        .collect();

    let mut models: Vec<FunctionModel> = spans
        .iter()
        .map(|s| FunctionModel {
            file: rel.to_string(),
            name: s.name.clone(),
            line: s.start_line,
            end_line: s.end_line.min(test_start),
            calls: Vec::new(),
            locks: Vec::new(),
            panics: Vec::new(),
            spawn_lines: Vec::new(),
            arc_mutex_clone_lines: Vec::new(),
            has_lock_order_doc: false,
            loops: Vec::new(),
            allocs: Vec::new(),
            mutations: Vec::new(),
            coll_bindings: Vec::new(),
            has_depth_bound_token: false,
            allow_marks: Vec::new(),
        })
        .collect();

    // Loop bodies attribute to their innermost owning function, so
    // `loop_depth` never counts a loop from an enclosing function around
    // a nested `fn` (the nested body does not run per iteration).
    for l in loop_spans(&stripped) {
        if l.start_line > test_start {
            continue;
        }
        if let Some(owner) = innermost_owner(&spans, l.start_line) {
            models[owner].loops.push(l);
        }
    }

    for (i, line) in code_lines.iter().enumerate().take(test_start) {
        let lineno = i + 1;
        // Attribute each line to its innermost owner only, so an inner
        // fn's sites are not double-counted against the outer fn.
        let Some(owner) = innermost_owner(&spans, lineno) else {
            continue;
        };
        let m = &mut models[owner];
        if raw_lines[i].contains("// lock-order:") {
            m.has_lock_order_doc = true;
        }
        for key in CC_MARKER_KEYS
            .iter()
            .chain(PF_MARKER_KEYS)
            .chain(RB_MARKER_KEYS)
        {
            if marker_allows(raw_lines[i], key) {
                m.allow_marks.push((lineno, (*key).to_string()));
            }
        }
        extract_calls(line, lineno, &mut m.calls);
        extract_locks(
            &code_lines,
            &depths,
            i,
            has_rwlock,
            spans[owner].end_line,
            &mut m.locks,
        );
        extract_panics(&raw_lines, line, i, &mut m.panics);
        extract_allocs(line, lineno, &arc_names, &mut m.allocs);
        extract_mutations(line, lineno, &mut m.mutations);
        extract_coll_binding(line, lineno, &mut m.coll_bindings);
        if !m.has_depth_bound_token && has_depth_bound_token(line) {
            m.has_depth_bound_token = true;
        }
        for (col, _) in line.match_indices("spawn") {
            let before = line[..col].chars().next_back();
            let after = line[col + "spawn".len()..].trim_start().chars().next();
            let bounded = before.is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
            if bounded && after == Some('(') {
                m.spawn_lines.push(lineno);
            }
        }
        for (clone_pat, arc_clone_pat) in &arc_clone_pats {
            if line.contains(clone_pat) || line.contains(arc_clone_pat) {
                m.arc_mutex_clone_lines.push(lineno);
            }
        }
    }
    models
}

/// Extracts the per-file facts that live outside function bodies.
pub(crate) fn file_facts(rel: &str, raw: &str) -> FileFacts {
    let stripped = crate::source_lint::strip_code(raw);
    let raw_lines: Vec<&str> = raw.lines().collect();
    let test_start = raw_lines
        .iter()
        .position(|l| l.trim_end() == "#[cfg(test)]" && !l.starts_with(char::is_whitespace))
        .unwrap_or(raw_lines.len());
    let mut facts = FileFacts {
        file: rel.to_string(),
        ..FileFacts::default()
    };
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    for (i, line) in stripped.lines().enumerate().take(test_start) {
        for tok in ["max_entries", "max_capacity", "capacity_limit", "evict"] {
            for (idx, _) in line.match_indices(tok) {
                let before = if idx == 0 {
                    None
                } else {
                    line[..idx].chars().next_back()
                };
                let after = line[idx + tok.len()..].chars().next();
                if before.is_none_or(|c| !ident(c)) && after.is_none_or(|c| !ident(c)) {
                    facts.has_capacity_tokens = true;
                }
            }
        }
        for (idx, _) in line.match_indices("struct ") {
            let before = line[..idx].chars().next_back();
            if before.is_some_and(ident) {
                continue;
            }
            let name: String = line[idx + "struct ".len()..]
                .chars()
                .take_while(|c| ident(*c))
                .collect();
            if (name.contains("Cache") || name.contains("Memo"))
                && !allowed(&raw_lines, i, "cache-bound")
            {
                facts.cache_structs.push((i + 1, name));
            }
        }
    }
    facts
}

/// Rust keywords and declaration heads that look like calls but are not.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "move", "in", "as",
    "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "crate", "super", "Self", "self",
];

/// Extracts `name(…)` call sites from one stripped line.
fn extract_calls(line: &str, lineno: usize, out: &mut Vec<CallSite>) {
    let b: Vec<char> = line.chars().collect();
    let n = b.len();
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut i = 0usize;
    while i < n {
        if !(b[i].is_alphabetic() || b[i] == '_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && ident(b[i]) {
            i += 1;
        }
        let word: String = b[start..i].iter().collect();
        let prev = start.checked_sub(1).map(|j| b[j]);
        if prev.is_some_and(ident) {
            continue;
        }
        // Skip whitespace between the name and a candidate `(`.
        let mut j = i;
        while j < n && b[j] == ' ' {
            j += 1;
        }
        let next = b.get(j).copied();
        if next == Some('!') {
            continue; // macro — handled by panic extraction
        }
        if next != Some('(') {
            continue;
        }
        // `fn name(` is the declaration, not a call.
        let before = line[..start].trim_end();
        if before.ends_with("fn") {
            continue;
        }
        if NON_CALL_WORDS.contains(&word.as_str()) {
            continue;
        }
        // `recv.name(` with a simple identifier receiver.
        let recv = if prev == Some('.') && start >= 2 {
            let mut s = start - 1;
            while s > 0 && ident(b[s - 1]) {
                s -= 1;
            }
            let r: String = b[s..start - 1].iter().collect();
            let r_prev = s.checked_sub(1).map(|j| b[j]);
            if r.is_empty() || r_prev == Some('.') {
                None
            } else {
                Some(r)
            }
        } else {
            None
        };
        out.push(CallSite {
            name: word,
            line: lineno,
            col: start,
            recv,
            bare: prev != Some('.') && prev != Some(':'),
        });
    }
}

/// Extracts lock acquisitions from (stripped) line `i`, resolving guard
/// bindings and scopes against the whole file.
fn extract_locks(
    code_lines: &[&str],
    depths: &[usize],
    i: usize,
    has_rwlock: bool,
    fn_end: usize,
    out: &mut Vec<LockSite>,
) {
    let line = code_lines[i];
    let pats: &[(&str, LockKind)] = if has_rwlock {
        &[
            (".lock()", LockKind::Lock),
            (".read()", LockKind::Read),
            (".write()", LockKind::Write),
        ]
    } else {
        &[(".lock()", LockKind::Lock)]
    };
    for (pat, kind) in pats {
        for (col, _) in line.match_indices(pat) {
            let path = lock_path(line, col);
            if path.is_empty() {
                continue;
            }
            // The statement suffix directly after the accessor decides
            // unwrap vs poison handling (look ahead up to 2 more lines for
            // a wrapped chain).
            let mut suffix = line[col + pat.len()..].to_string();
            for extra in code_lines.iter().skip(i + 1).take(2) {
                if suffix.trim_end().ends_with(';') {
                    break;
                }
                suffix.push(' ');
                suffix.push_str(extra.trim());
            }
            let s = suffix.trim_start();
            let unwrapped = s.starts_with(".unwrap()") || s.starts_with(".expect(");
            let poison_handled = (suffix.contains("unwrap_or_else")
                && suffix.contains("into_inner"))
                || suffix.trim_start().starts_with(".ok()")
                || line[..col].contains("if let Ok(")
                || line[..col].contains("while let Ok(")
                || line[..col].contains("match ");
            let binding = guard_binding(line, col);
            let scope_end = match &binding {
                GuardBinding::Discarded => i + 1,
                GuardBinding::Temporary => statement_end(code_lines, i, fn_end),
                GuardBinding::Named(name) => named_scope_end(code_lines, depths, i, name, fn_end),
            };
            out.push(LockSite {
                path,
                kind: *kind,
                line: i + 1,
                col,
                binding,
                scope_end,
                unwrapped,
                poison_handled,
            });
        }
    }
}

/// Walks left from the accessor's `.` to recover the receiver path:
/// identifier segments joined by `.`, argument lists collapsed to `()`,
/// index expressions to `[_]`, with any `self.` prefix stripped.
fn lock_path(line: &str, dot_col: usize) -> String {
    receiver_path(line, dot_col).0
}

/// [`lock_path`], but also reports whether the receiver was written with
/// a `self.` prefix (a struct field — state that outlives the call).
fn receiver_path(line: &str, dot_col: usize) -> (String, bool) {
    let b: Vec<char> = line.chars().collect();
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_col; // points at the accessor's '.'
    loop {
        if j == 0 {
            break;
        }
        let c = b[j - 1];
        if c == ')' || c == ']' {
            let (open, close, repr) = if c == ')' {
                ('(', ')', "()")
            } else {
                ('[', ']', "[_]")
            };
            let mut depth = 0usize;
            let mut k = j;
            while k > 0 {
                let ch = b[k - 1];
                if ch == close {
                    depth += 1;
                } else if ch == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            if k == 0 {
                break;
            }
            // Consume the identifier before the group, if any.
            let mut s = k - 1;
            while s > 0 && ident(b[s - 1]) {
                s -= 1;
            }
            let name: String = b[s..k - 1].iter().collect();
            parts.push(format!("{name}{repr}"));
            j = s;
        } else if ident(c) {
            let mut s = j;
            while s > 0 && ident(b[s - 1]) {
                s -= 1;
            }
            parts.push(b[s..j].iter().collect());
            j = s;
        } else if c == '.' {
            j -= 1;
        } else {
            break;
        }
    }
    parts.reverse();
    let mut path = parts.join(".");
    let mut self_prefixed = false;
    if let Some(rest) = path.strip_prefix("self.") {
        path = rest.to_string();
        self_prefixed = true;
    }
    (path, self_prefixed)
}

/// Resolves how the guard produced at `col` on `line` is bound.
fn guard_binding(line: &str, col: usize) -> GuardBinding {
    let before = &line[..col];
    let Some(let_idx) = before.rfind("let ") else {
        return GuardBinding::Temporary;
    };
    let Some(eq_idx) = before[let_idx..].find('=') else {
        return GuardBinding::Temporary;
    };
    let pat = before[let_idx + 4..let_idx + eq_idx].trim();
    let pat = pat.strip_prefix("mut ").unwrap_or(pat);
    // `if let Ok(g) = …` binds through a pattern: treat the inner name.
    let pat = pat
        .strip_prefix("Ok(")
        .and_then(|p| p.strip_suffix(')'))
        .unwrap_or(pat);
    if pat == "_" {
        return GuardBinding::Discarded;
    }
    // Strip a type ascription (`let t: Type =`).
    let pat = pat.split(':').next().unwrap_or(pat).trim();
    if !pat.is_empty() && pat.chars().all(|c| c.is_alphanumeric() || c == '_') {
        GuardBinding::Named(pat.to_string())
    } else {
        GuardBinding::Temporary
    }
}

/// Last 1-based line of the statement starting on 0-based line `i`.
fn statement_end(code_lines: &[&str], i: usize, fn_end: usize) -> usize {
    for (j, l) in code_lines.iter().enumerate().skip(i) {
        if j + 1 >= fn_end {
            break;
        }
        if l.contains(';') {
            return j + 1;
        }
    }
    fn_end
}

/// Last 1-based line on which a named guard bound on 0-based line `i` can
/// still be live: the end of the enclosing block, or an earlier explicit
/// `drop(name)`.
fn named_scope_end(
    code_lines: &[&str],
    depths: &[usize],
    i: usize,
    name: &str,
    fn_end: usize,
) -> usize {
    let bind_depth = depths.get(i).copied().unwrap_or(0);
    let drop_pat = format!("drop({name})");
    let stop = code_lines.len().min(fn_end);
    for (j, line) in code_lines.iter().enumerate().take(stop).skip(i + 1) {
        if line.contains(&drop_pat) {
            return j + 1;
        }
        if depths.get(j).copied().unwrap_or(0) < bind_depth {
            return j; // the closing line itself ends the block
        }
    }
    fn_end
}

/// The panicking macro family (suppressed by `lint: allow(panic)`).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Extracts potential panic sources from (stripped) line index `i`,
/// honoring suppression markers on the raw line or the line above.
fn extract_panics(raw_lines: &[&str], line: &str, i: usize, out: &mut Vec<PanicSite>) {
    let lineno = i + 1;
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    if (line.contains(".unwrap()") || line.contains(".expect(")) && !allowed(raw_lines, i, "unwrap")
    {
        let token = if line.contains(".unwrap()") {
            ".unwrap()"
        } else {
            ".expect(…)"
        };
        out.push(PanicSite {
            kind: PanicKind::Unwrap,
            line: lineno,
            token: token.to_string(),
        });
    }
    if !allowed(raw_lines, i, "panic") {
        for mac in PANIC_MACROS {
            let pat = format!("{mac}!");
            let mut found = false;
            for (idx, _) in line.match_indices(&pat) {
                let before = line[..idx].chars().next_back();
                if before.is_some_and(ident) {
                    continue; // debug_assert! ends with assert! — exempt
                }
                found = true;
            }
            if found {
                out.push(PanicSite {
                    kind: PanicKind::Macro,
                    line: lineno,
                    token: format!("{mac}!"),
                });
                break; // one macro finding per line is enough
            }
        }
    }
    if !allowed(raw_lines, i, "index") {
        let b: Vec<char> = line.chars().collect();
        for (idx, _) in line.match_indices('[') {
            let Some(&prev) = idx.checked_sub(1).and_then(|j| b.get(j)) else {
                continue;
            };
            if !(ident(prev) || prev == ')' || prev == ']') {
                continue;
            }
            // Find the matching close to inspect the index expression.
            let mut depth = 0usize;
            let mut close = None;
            for (k, &c) in b.iter().enumerate().skip(idx) {
                if c == '[' {
                    depth += 1;
                } else if c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
            }
            let Some(close) = close else { continue };
            let inner: String = b[idx + 1..close].iter().collect();
            let inner = inner.trim();
            if inner.is_empty() || inner == ".." {
                continue; // full-range slicing cannot panic
            }
            // Receiver token, for the message.
            let mut s = idx;
            while s > 0 && (ident(b[s - 1]) || b[s - 1] == '.') {
                s -= 1;
            }
            let recv: String = b[s..idx].iter().collect();
            out.push(PanicSite {
                kind: PanicKind::Index,
                line: lineno,
                token: format!("{recv}[{inner}]"),
            });
            break; // one indexing finding per line is enough
        }
    }
    if !allowed(raw_lines, i, "div") {
        for (idx, _) in line.match_indices(['/', '%']) {
            let after = line[idx + 1..].trim_start();
            // Walk one path expression forward and require it to end in
            // `.len()` / `.count()` — the possibly-zero divisors. A `)`
            // closing a paren opened *before* the divisor (as in
            // `(n / v.len())`) ends the expression rather than joining it.
            let mut depth = 0i32;
            let path: String = after
                .chars()
                .take_while(|c| match c {
                    '(' => {
                        depth += 1;
                        true
                    }
                    ')' => {
                        depth -= 1;
                        depth >= 0
                    }
                    _ => ident(*c) || *c == '.',
                })
                .collect();
            if path.ends_with(".len()") || path.ends_with(".count()") {
                out.push(PanicSite {
                    kind: PanicKind::DivByLen,
                    line: lineno,
                    token: format!("{} {path}", &line[idx..=idx]),
                });
                break;
            }
        }
    }
}

/// Finds every `for`/`while`/`loop` body span in a stripped file.
///
/// Token-level, conservative: a `for` only opens a loop if a word-bounded
/// `in` appears at paren depth 0 before the body `{` (so `impl X for Y {`
/// and `for<'a>` higher-ranked bounds never count); a `;` cancels a
/// pending header; braces inside header parentheses (closures in the
/// iterator expression) never open a body. Spans run from the header line
/// to the line of the closing `}`, inclusive.
fn loop_spans(stripped: &str) -> Vec<LoopSpan> {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::new();
    // Open loop bodies: (header line, body brace depth).
    let mut open: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    // Pending header: Some((is_for, body_armed)) — `while`/`loop` arm
    // immediately; `for` arms only once its `in` keyword is seen.
    let mut pending: Option<(bool, bool)> = None;
    let mut pend_parens = 0usize;
    let mut last_line = 0usize;
    for (li, line) in stripped.lines().enumerate() {
        let lineno = li + 1;
        last_line = lineno;
        let b: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if ident(c) {
                let s = i;
                while i < b.len() && ident(b[i]) {
                    i += 1;
                }
                let word: String = b[s..i].iter().collect();
                match word.as_str() {
                    "for" => {
                        pending = Some((true, false));
                        pend_parens = 0;
                    }
                    "while" | "loop" => {
                        pending = Some((false, true));
                        pend_parens = 0;
                    }
                    "in" if pending == Some((true, false)) && pend_parens == 0 => {
                        pending = Some((true, true));
                    }
                    _ => {}
                }
                continue;
            }
            match c {
                '(' | '[' if pending.is_some() => {
                    pend_parens += 1;
                }
                ')' | ']' if pending.is_some() => {
                    pend_parens = pend_parens.saturating_sub(1);
                }
                ';' => pending = None,
                '{' => {
                    depth += 1;
                    if pend_parens == 0 {
                        if let Some((_, armed)) = pending.take() {
                            if armed {
                                open.push((lineno, depth));
                            }
                        }
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while let Some(&(start, d)) = open.last() {
                        if depth >= d {
                            break;
                        }
                        open.pop();
                        out.push(LoopSpan {
                            start_line: start,
                            end_line: lineno,
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Truncated input: close anything still open at EOF.
    while let Some((start, _)) = open.pop() {
        out.push(LoopSpan {
            start_line: start,
            end_line: last_line,
        });
    }
    out.sort_by_key(|l| (l.start_line, l.end_line));
    out
}

/// Heap-allocating constructor/collector patterns (`AllocKind::Alloc`).
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "VecDeque::new(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "BinaryHeap::new(",
    "Box::new(",
    "vec!",
    "with_capacity(",
    ".collect()",
    ".collect::<",
    ".to_vec()",
    ".to_owned()",
];

/// String-formatting patterns (`AllocKind::Format`).
const FORMAT_PATTERNS: &[&str] = &["format!", ".to_string()", "String::from(", "String::new("];

/// Extracts allocation/formatting/clone sites from one stripped line.
/// At most one site per kind per line — enough for a diagnostic, without
/// turning a dense line into a findings storm.
fn extract_allocs(line: &str, lineno: usize, arc_names: &[String], out: &mut Vec<AllocSite>) {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let word_start = |pat: &str, idx: usize| {
        !pat.starts_with(ident) || idx == 0 || !line[..idx].chars().next_back().is_some_and(ident)
    };
    for (kind, pats) in [
        (AllocKind::Format, FORMAT_PATTERNS),
        (AllocKind::Alloc, ALLOC_PATTERNS),
    ] {
        if let Some((idx, pat)) = pats
            .iter()
            .filter_map(|p| line.find(p).map(|i| (i, *p)))
            .find(|&(i, p)| word_start(p, i))
        {
            let _ = idx;
            out.push(AllocSite {
                kind,
                line: lineno,
                token: pat.trim_end_matches(['(', '<', '!']).to_string(),
            });
        }
    }
    for (idx, _) in line.match_indices(".clone()") {
        let b: Vec<char> = line[..idx].chars().collect();
        let mut s = b.len();
        while s > 0 && ident(b[s - 1]) {
            s -= 1;
        }
        let recv: String = b[s..].iter().collect();
        if arc_names.contains(&recv) {
            continue; // Arc handle clones are refcount bumps, not copies
        }
        out.push(AllocSite {
            kind: AllocKind::Clone,
            line: lineno,
            token: format!("{recv}.clone()"),
        });
        break;
    }
}

/// Methods that grow a collection receiver.
const GROW_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "push_str",
    "insert",
    "extend",
    "append",
];

/// Methods that can shrink a collection receiver (eviction evidence).
const SHRINK_METHODS: &[&str] = &[
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "swap_remove",
    "shift_remove",
    "clear",
    "truncate",
    "drain",
    "retain",
    "split_off",
    "dedup",
];

/// Capacity pre-sizing methods (`PF004` reserve evidence).
const RESERVE_METHODS: &[&str] = &["reserve", "reserve_exact"];

/// Extracts collection grow/shrink/reserve calls from one stripped line.
fn extract_mutations(line: &str, lineno: usize, out: &mut Vec<MutSite>) {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let b: Vec<char> = line.chars().collect();
    for (dot, _) in line.match_indices('.') {
        let mut j = dot + 1;
        while j < b.len() && ident(b[j]) {
            j += 1;
        }
        if j == dot + 1 || b.get(j) != Some(&'(') {
            continue;
        }
        let method: String = b[dot + 1..j].iter().collect();
        let kind = if GROW_METHODS.contains(&method.as_str()) {
            MutKind::Grow
        } else if SHRINK_METHODS.contains(&method.as_str()) {
            MutKind::Shrink
        } else if RESERVE_METHODS.contains(&method.as_str()) {
            MutKind::Reserve
        } else {
            continue;
        };
        let (path, self_prefixed) = receiver_path(line, dot);
        if path.is_empty() {
            continue;
        }
        out.push(MutSite {
            path,
            self_prefixed,
            kind,
            method,
            line: lineno,
        });
    }
}

/// Collection constructor prefixes that make a `let` binding a tracked
/// collection binding.
const COLL_CTORS: &[&str] = &[
    "Vec::",
    "VecDeque::",
    "HashMap::",
    "HashSet::",
    "BTreeMap::",
    "BTreeSet::",
    "BinaryHeap::",
    "String::",
    "vec!",
];

/// Records `let [mut] name = Vec::…;`-style collection bindings.
fn extract_coll_binding(line: &str, lineno: usize, out: &mut Vec<CollBinding>) {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let Some(let_idx) = line.find("let ") else {
        return;
    };
    if let_idx > 0 && line[..let_idx].chars().next_back().is_some_and(ident) {
        return;
    }
    let rest = &line[let_idx + 4..];
    let Some(eq) = rest.find('=') else {
        return;
    };
    let pat = rest[..eq].trim();
    let pat = pat.strip_prefix("mut ").unwrap_or(pat);
    let name = pat.split(':').next().unwrap_or(pat).trim();
    if name.is_empty() || !name.chars().all(ident) {
        return;
    }
    let init = rest[eq + 1..].trim_start();
    if !COLL_CTORS.iter().any(|c| init.starts_with(c)) {
        return;
    }
    out.push(CollBinding {
        name: name.to_string(),
        line: lineno,
        with_capacity: init.contains("with_capacity"),
    });
}

/// Identifier segments that count as recursion-bound evidence (`RB004`):
/// a `depth`/`fuel`/`budget`-style name anywhere in the body suggests the
/// recursion carries an explicit bound.
const DEPTH_TOKENS: &[&str] = &[
    "depth",
    "fuel",
    "remaining",
    "limit",
    "hops",
    "budget",
    "retries",
    "attempts",
    "ttl",
];

/// Does the stripped line mention a depth-bound-style identifier segment?
fn has_depth_bound_token(line: &str) -> bool {
    let mut cur = String::new();
    for c in line.chars().chain(std::iter::once(' ')) {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if cur.split('_').any(|seg| DEPTH_TOKENS.contains(&seg)) {
                return true;
            }
            cur.clear();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Vec<FunctionModel> {
        model_file("crates/x/src/lib.rs", src)
    }

    #[test]
    fn function_spans_nest_and_skip_trait_decls() {
        let src = "\
trait T {
    fn decl(&self) -> u32;
}

fn outer() {
    fn inner() {
        let x = 1;
    }
    inner();
}
";
        let m = model(src);
        let names: Vec<&str> = m.iter().map(|f| f.name.as_str()).collect();
        assert!(
            names.contains(&"outer") && names.contains(&"inner"),
            "{names:?}"
        );
        assert!(!names.contains(&"decl"), "{names:?}");
        let outer = m.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!((outer.line, outer.end_line), (5, 10));
    }

    #[test]
    fn lines_attribute_to_the_innermost_function() {
        let src = "\
fn outer() {
    fn inner() {
        helper();
    }
}
";
        let m = model(src);
        let inner = m.iter().find(|f| f.name == "inner").unwrap();
        let outer = m.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(inner.calls.len(), 1);
        assert!(outer.calls.is_empty(), "{outer:?}");
    }

    #[test]
    fn lock_paths_normalize_receivers() {
        let src = "\
fn f(&self) {
    let table = self.shards[i].lock();
    let s = self.shard(digest).lock();
    let a = attempts.lock();
    drop(table);
}
";
        let m = model(src);
        let locks = &m[0].locks;
        let paths: Vec<&str> = locks.iter().map(|l| l.path.as_str()).collect();
        assert_eq!(paths, ["shards[_]", "shard()", "attempts"], "{locks:?}");
        assert!(matches!(locks[0].binding, GuardBinding::Named(ref n) if n == "table"));
        // `drop(table)` ends the first guard's scope on line 5.
        assert_eq!(locks[0].scope_end, 5);
    }

    #[test]
    fn guard_bindings_and_poison_idiom_are_recognized() {
        let src = "\
fn f(&self) {
    let g = self.m.lock().unwrap();
    let h = self.m.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = self.m.lock();
    self.m.lock().unwrap_or_else(PoisonError::into_inner).clear();
}
";
        let m = model(src);
        let locks = &m[0].locks;
        assert!(locks[0].unwrapped && !locks[0].poison_handled);
        assert!(!locks[1].unwrapped && locks[1].poison_handled);
        assert!(matches!(locks[2].binding, GuardBinding::Discarded));
        assert!(matches!(locks[3].binding, GuardBinding::Temporary));
        assert!(locks[3].poison_handled);
    }

    #[test]
    fn read_write_only_count_in_rwlock_files() {
        let no_rwlock = "fn f(r: &R) { let x = r.read(); }\n";
        assert!(model(no_rwlock)[0].locks.is_empty());
        let with_rwlock = "fn f(r: &RwLock<u32>) { let x = r.read(); let y = r.write(); }\n";
        let locks = &model(with_rwlock)[0].locks;
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].kind, LockKind::Read);
        assert_eq!(locks[1].kind, LockKind::Write);
    }

    #[test]
    fn calls_extract_with_boundaries() {
        let src = "fn f() { helper(); obj.method(x); if cond() { } a::b::path_call(); }\n";
        let calls = &model(src)[0].calls;
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            ["helper", "method", "cond", "path_call"],
            "{names:?}"
        );
    }

    #[test]
    fn panic_sites_cover_all_kinds_and_honor_markers() {
        let src = "\
fn f(v: &[u32], n: usize) -> u32 {
    let a = v.first().unwrap();
    assert!(n > 0);
    let b = v[n + 1];
    let c = n / v.len();
    debug_assert!(n < 10);
    let ok = v.first().unwrap(); // lint: allow(unwrap) — seeded
    a + b + c as u32 + ok
}
";
        let panics = &model(src)[0].panics;
        let kinds: Vec<PanicKind> = panics.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Macro));
        assert!(kinds.contains(&PanicKind::Index));
        assert!(kinds.contains(&PanicKind::DivByLen));
        // debug_assert! is exempt; the marked unwrap is suppressed.
        assert_eq!(kinds.iter().filter(|k| **k == PanicKind::Macro).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == PanicKind::Unwrap).count(), 1);
    }

    #[test]
    fn parenthesized_div_by_len_is_still_detected() {
        let src = "fn f(v: &[u32], n: usize) -> u32 { (n / v.len()) as u32 }\n";
        let panics = &model(src)[0].panics;
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics[0].kind, PanicKind::DivByLen);
        assert_eq!(panics[0].token, "/ v.len()");
    }

    #[test]
    fn full_range_slicing_and_macros_are_not_indexing() {
        let src = "fn f(v: &[u32]) { let a = &v[..]; let b = vec![1, 2]; let c = v[..2].len(); }\n";
        let panics = &model(src)[0].panics;
        let idx: Vec<&PanicSite> = panics
            .iter()
            .filter(|p| p.kind == PanicKind::Index)
            .collect();
        assert_eq!(idx.len(), 1, "{panics:?}");
        assert!(idx[0].token.contains("..2"), "{idx:?}");
    }

    #[test]
    fn spawn_and_arc_mutex_clones_are_tracked() {
        let src = "\
fn f() {
    let shared: Arc<Mutex<u32>> = Arc::new(Mutex::new(0));
    let clone = shared.clone();
    std::thread::spawn(move || drop(clone));
}
";
        let m = model(src);
        assert_eq!(m[0].spawn_lines, vec![4]);
        assert_eq!(m[0].arc_mutex_clone_lines, vec![3]);
        assert!(!m[0].has_lock_order_doc);
    }

    #[test]
    fn test_regions_are_excluded() {
        let src = "\
fn live() { helper(); }

#[cfg(test)]
mod tests {
    fn test_helper() { other(); }
}
";
        let m = model(src);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].name, "live");
    }

    #[test]
    fn build_model_orders_functions_deterministically() {
        let dir = std::env::temp_dir().join("pruneperf-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.rs"), "fn beta() {}\n").unwrap();
        std::fs::write(dir.join("a.rs"), "fn alpha() {}\nfn gamma() {}\n").unwrap();
        let m1 = build_model(&dir, 1).unwrap();
        let m8 = build_model(&dir, 8).unwrap();
        let names: Vec<&str> = m1.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "gamma", "beta"]);
        assert_eq!(m1.files, 2);
        assert_eq!(
            names,
            m8.functions
                .iter()
                .map(|f| f.name.as_str())
                .collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loop_spans_track_nesting_and_skip_impl_for() {
        let src = "\
impl Sweep for Grid {
    fn run(&self) {
        for x in 0..4 {
            while x > 0 {
                work(x);
            }
        }
        loop {
            break;
        }
    }
}
";
        let m = model(src);
        let f = &m[0];
        assert_eq!(f.loops.len(), 3, "{:?}", f.loops);
        // `impl Sweep for Grid {` must not register as a loop.
        assert_eq!(f.loops[0].start_line, 3);
        assert_eq!(f.loops[0].end_line, 7);
        assert_eq!(f.loop_depth(5), 2);
        assert_eq!(f.loop_depth(3), 0, "header line is outside its own loop");
        assert_eq!(f.loop_depth(9), 1);
        assert_eq!(f.loop_depth(11), 0);
    }

    #[test]
    fn loop_spans_ignore_hrtb_for_and_header_closures() {
        let src = "\
fn apply<F: for<'a> Fn(&'a u32)>(f: F, v: &[u32]) {
    for x in v.iter().map(|n| { n + 1 }) {
        f(&x);
    }
}
";
        let f = &model(src)[0];
        assert_eq!(f.loops.len(), 1, "{:?}", f.loops);
        assert_eq!(f.loops[0].start_line, 2);
        assert_eq!(f.loops[0].end_line, 4);
    }

    #[test]
    fn alloc_sites_cover_kinds_and_skip_arc_clones() {
        let src = "\
fn f(shared: Arc<Mutex<u32>>, plan: &Plan) {
    let shared2 = shared.clone();
    let copy = plan.clone();
    let mut out = Vec::new();
    let label = format!(\"{}\", 1);
    out.push(label);
    drop(shared2);
    drop(copy);
}
";
        let f = &model(src)[0];
        let kinds: Vec<(AllocKind, usize)> = f.allocs.iter().map(|a| (a.kind, a.line)).collect();
        assert!(kinds.contains(&(AllocKind::Clone, 3)), "{kinds:?}");
        assert!(
            !kinds.iter().any(|&(k, l)| k == AllocKind::Clone && l == 2),
            "arc handle clone must be exempt: {kinds:?}"
        );
        assert!(kinds.contains(&(AllocKind::Alloc, 4)), "{kinds:?}");
        assert!(kinds.contains(&(AllocKind::Format, 5)), "{kinds:?}");
    }

    #[test]
    fn mutations_record_receiver_kind_and_self_prefix() {
        let src = "\
fn f(&mut self, v: &mut Vec<u32>) {
    self.jobs.push(1);
    v.reserve(4);
    v.push(2);
    self.jobs.clear();
}
";
        let f = &model(src)[0];
        let rows: Vec<(&str, bool, MutKind)> = f
            .mutations
            .iter()
            .map(|m| (m.path.as_str(), m.self_prefixed, m.kind))
            .collect();
        assert!(rows.contains(&("jobs", true, MutKind::Grow)), "{rows:?}");
        assert!(rows.contains(&("v", false, MutKind::Reserve)), "{rows:?}");
        assert!(rows.contains(&("v", false, MutKind::Grow)), "{rows:?}");
        assert!(rows.contains(&("jobs", true, MutKind::Shrink)), "{rows:?}");
    }

    #[test]
    fn coll_bindings_and_depth_tokens_are_recorded() {
        let src = "\
fn f(n: usize) {
    let mut out = Vec::with_capacity(n);
    let names = Vec::new();
    out.extend(names);
}
fn g(depth_left: u32) { g(depth_left - 1); }
";
        let m = model(src);
        let binds: Vec<(&str, bool)> = m[0]
            .coll_bindings
            .iter()
            .map(|b| (b.name.as_str(), b.with_capacity))
            .collect();
        assert_eq!(binds, [("out", true), ("names", false)], "{binds:?}");
        assert!(!m[0].has_depth_bound_token);
        assert!(m[1].has_depth_bound_token);
    }

    #[test]
    fn file_facts_find_cache_structs_and_capacity_tokens() {
        let plain = "pub struct LatencyCache {\n    shards: Vec<Shard>,\n}\n";
        let facts = file_facts("lib.rs", plain);
        assert_eq!(facts.cache_structs, [(1, "LatencyCache".to_string())]);
        assert!(!facts.has_capacity_tokens);

        let bounded = "pub struct KernelMemo { max_entries: usize }\n";
        let facts = file_facts("lib.rs", bounded);
        assert!(facts.has_capacity_tokens);

        let marked = "\
// lint: allow(cache-bound) — bounded by construction
pub struct GridCache { rows: Vec<Row> }
";
        assert!(file_facts("lib.rs", marked).cache_structs.is_empty());
    }
}

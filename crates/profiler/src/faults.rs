//! Deterministic fault injection for the sweep/cache engine.
//!
//! A production sweep over thousands of layer configurations meets
//! failures the paper's clean methodology never sees: transient query
//! errors, latency spikes from preempted boards, crashed workers,
//! poisoned locks. This module makes those failures *schedulable*: a
//! [`FaultPlan`] is a pure function of `(seed, site, key, attempt)` — no
//! wall clock, no shared RNG stream — so a chaos run is byte-reproducible
//! at any worker count, and a bug it flushes out replays from nothing but
//! its seed.
//!
//! The pieces compose with the rest of the engine rather than forking it:
//!
//! * [`FaultyBackend`] decorates any [`ConvBackend`] and injects the
//!   plan's scheduled faults into the fallible cost path
//!   ([`ConvBackend::try_cost`]); the clean planner methods pass through.
//! * [`RetryPolicy`] + [`with_retry`] give callers bounded retry with
//!   *accounted* (virtual) backoff — sleeping would reintroduce wall
//!   clocks into a deterministic pipeline.
//! * [`crate::sweep::contained_parallel_map`] contains scheduled worker
//!   panics, and [`crate::LatencyCache::poison_all_shards`] is the
//!   poisoned-lock fault.
//!
//! Decisions key on the *identity* of the work (layer label, channel
//! count, device, attempt number), never on call order or thread
//! identity, which is what keeps jobs=1 and jobs=8 runs identical.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use pruneperf_backends::hash::fnv1a;
use pruneperf_backends::{ConvBackend, CostError, DispatchPlan};
use pruneperf_gpusim::Device;
use pruneperf_models::ConvLayerSpec;

use crate::cache::splitmix;

/// Domain-separation salts, one per fault family, so the same (seed, key)
/// never correlates across families.
const SALT_TRANSIENT: u64 = 0x7261_6e73_6965_6e74;
const SALT_PERMANENT: u64 = 0x7065_726d_616e_656e;
const SALT_SPIKE: u64 = 0x7370_696b_655f_5f5f;
const SALT_PANIC: u64 = 0x7061_6e69_635f_5f5f;

/// The kinds of faults a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A retryable cost failure: independent draw per attempt, so bounded
    /// retry eventually gets through.
    Transient,
    /// A cost failure that persists across retries (attempt-independent
    /// draw): the sweep must degrade, not hang on retries.
    Permanent,
    /// The query succeeds but the latency is multiplied by the plan's
    /// spike factor — a preempted or thermally throttled run.
    LatencySpike,
    /// The sweep worker processing the item panics outright.
    WorkerPanic,
}

/// A seed-driven schedule of injected faults.
///
/// Every decision is a pure hash of `(seed, fault family, site key,
/// attempt)` compared against the family's rate, so two runs with the
/// same seed inject exactly the same faults at exactly the same work
/// items no matter how that work is scheduled across threads — the
/// property the `pruneperf chaos` jobs-1-vs-8 byte-identity check
/// enforces.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    permanent_rate: f64,
    spike_rate: f64,
    spike_factor: f64,
    panic_rate: f64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults scheduled; layer the
    /// rates on with the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            permanent_rate: 0.0,
            spike_rate: 0.0,
            spike_factor: 1.0,
            panic_rate: 0.0,
        }
    }

    /// Probability that any single cost attempt fails transiently.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that a configuration fails permanently (every attempt).
    pub fn with_permanent_rate(mut self, rate: f64) -> Self {
        self.permanent_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Probability that a configuration's latency is spiked, and the
    /// multiplier applied when it is.
    pub fn with_spike(mut self, rate: f64, factor: f64) -> Self {
        self.spike_rate = rate.clamp(0.0, 1.0);
        self.spike_factor = factor.max(1.0);
        self
    }

    /// Probability that a sweep item's worker panics.
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The latency multiplier applied by scheduled spikes.
    pub fn spike_factor(&self) -> f64 {
        self.spike_factor
    }

    /// Deterministic uniform draw in `[0, 1)` for one decision point.
    fn unit(&self, salt: u64, key: u64, attempt: u32) -> f64 {
        let mut h = splitmix(self.seed ^ salt);
        h = splitmix(h ^ key);
        h = splitmix(h ^ u64::from(attempt));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A stable site key for one cost query: the layer's identity fields
    /// and the device name, independent of call order and thread.
    pub fn cost_key(layer: &ConvLayerSpec, device: &Device) -> u64 {
        let mut h = splitmix(fnv1a(layer.label().as_bytes()));
        h = splitmix(h ^ fnv1a(device.name().as_bytes()));
        for v in [layer.c_out(), layer.c_in(), layer.kernel(), layer.stride()] {
            h = splitmix(h ^ (v as u64));
        }
        h
    }

    /// The fault (if any) scheduled for one cost evaluation.
    ///
    /// Permanent faults are drawn attempt-independently (they must not
    /// disappear on retry); transient faults draw fresh per attempt, so a
    /// retry loop sees them clear; spikes are attempt-independent so the
    /// memoized value is stable.
    pub fn cost_fault(&self, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.unit(SALT_PERMANENT, key, 0) < self.permanent_rate {
            return Some(FaultKind::Permanent);
        }
        if self.unit(SALT_TRANSIENT, key, attempt) < self.transient_rate {
            return Some(FaultKind::Transient);
        }
        if self.unit(SALT_SPIKE, key, 0) < self.spike_rate {
            return Some(FaultKind::LatencySpike);
        }
        None
    }

    /// Whether the sweep item at `index` is scheduled to panic.
    pub fn panics_at(&self, index: usize) -> bool {
        self.unit(SALT_PANIC, index as u64, 0) < self.panic_rate
    }
}

/// Counters of faults a [`FaultyBackend`] actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Transient cost failures injected.
    pub transients: u64,
    /// Permanent cost failures injected.
    pub permanents: u64,
    /// Latency spikes injected.
    pub spikes: u64,
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} transient, {} permanent, {} spiked",
            self.transients, self.permanents, self.spikes
        )
    }
}

/// A [`ConvBackend`] decorator that injects a [`FaultPlan`]'s scheduled
/// faults into the fallible cost path.
///
/// Planning ([`ConvBackend::plan`]) and the infallible
/// [`ConvBackend::cost`] pass straight through to the wrapped backend —
/// faults only surface where callers have a recovery path, which is the
/// point: code that opts into `try_cost` must handle its errors.
///
/// The fingerprint mixes the plan's seed and rates into the inner
/// backend's, so spiked values memoized by a [`crate::LatencyCache`]
/// never collide with clean entries for the same layer.
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    /// Attempt counter per cost key, so consecutive retries of one
    /// configuration see increasing attempt numbers. Keys are evaluated a
    /// deterministic number of times under a fresh cache, which keeps the
    /// counters (and therefore the stats) reproducible.
    attempts: Mutex<HashMap<u64, u32>>,
    transients: AtomicU64,
    permanents: AtomicU64,
    spikes: AtomicU64,
}

impl<B: ConvBackend> FaultyBackend<B> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            transients: AtomicU64::new(0),
            permanents: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
        }
    }

    /// The fault schedule driving this wrapper. (Named to stay clear of
    /// the trait's [`ConvBackend::plan`].)
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// How many faults have been injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transients: self.transients.load(Ordering::Relaxed),
            permanents: self.permanents.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
        }
    }

    /// Next attempt number for `key` (0 on first call).
    fn next_attempt(&self, key: u64) -> u32 {
        // Recover from poisoning: the map holds plain counters updated
        // whole under the lock, so no torn state can exist.
        let mut map = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
        let counter = map.entry(key).or_insert(0);
        let attempt = *counter;
        *counter += 1;
        attempt
    }
}

impl<B: ConvBackend> ConvBackend for FaultyBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fingerprint(&self) -> u64 {
        let mut h = splitmix(self.inner.fingerprint() ^ self.plan.seed);
        for bits in [
            self.plan.transient_rate.to_bits(),
            self.plan.permanent_rate.to_bits(),
            self.plan.spike_rate.to_bits(),
            self.plan.spike_factor.to_bits(),
        ] {
            h = splitmix(h ^ bits);
        }
        h
    }

    fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> DispatchPlan {
        self.inner.plan(layer, device)
    }

    fn try_cost(&self, layer: &ConvLayerSpec, device: &Device) -> Result<(f64, f64), CostError> {
        let key = FaultPlan::cost_key(layer, device);
        let attempt = self.next_attempt(key);
        match self.plan.cost_fault(key, attempt) {
            Some(FaultKind::Permanent) => {
                self.permanents.fetch_add(1, Ordering::Relaxed);
                Err(CostError::permanent(format!(
                    "injected permanent fault for {} @ {} channels on {}",
                    layer.label(),
                    layer.c_out(),
                    device.name()
                )))
            }
            Some(FaultKind::Transient) => {
                self.transients.fetch_add(1, Ordering::Relaxed);
                Err(CostError::transient(format!(
                    "injected transient fault for {} @ {} channels (attempt {attempt})",
                    layer.label(),
                    layer.c_out()
                )))
            }
            Some(FaultKind::LatencySpike) => {
                self.spikes.fetch_add(1, Ordering::Relaxed);
                let (ms, mj) = self.inner.cost(layer, device);
                Ok((ms * self.plan.spike_factor, mj))
            }
            Some(FaultKind::WorkerPanic) | None => Ok(self.inner.cost(layer, device)),
        }
    }
}

/// Bounded retry for transient cost failures.
///
/// Backoff is **accounted, never slept**: the pipeline is deterministic
/// simulation, so a real `sleep` would add wall-clock nondeterminism
/// (and trip the SL001 lint) without modelling anything. The accumulated
/// virtual backoff is reported alongside the outcome so operators can see
/// what a deployment would have waited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included); at least 1.
    pub max_attempts: u32,
    /// Virtual backoff after the first failed attempt, ms.
    pub base_backoff_ms: f64,
    /// Multiplier applied to the backoff per further attempt.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff interval, ms.
    pub max_backoff_ms: f64,
}

impl RetryPolicy {
    /// The default production policy: up to 4 attempts, exponential
    /// 1 → 2 → 4 ms virtual backoff capped at 8 ms.
    pub fn bounded() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 1.0,
            backoff_factor: 2.0,
            max_backoff_ms: 8.0,
        }
    }

    /// No retries: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0.0,
            backoff_factor: 1.0,
            max_backoff_ms: 0.0,
        }
    }

    /// The virtual backoff after failed attempt `attempt` (0-based), ms.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        let exp = attempt.min(64) as i32;
        (self.base_backoff_ms * self.backoff_factor.powi(exp)).min(self.max_backoff_ms)
    }
}

/// What one retried operation went through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryOutcome {
    /// Attempts actually made (1 when the first try succeeded).
    pub attempts: u32,
    /// Total virtual backoff accounted across the retries, ms.
    pub backoff_ms: f64,
}

/// Runs `op` under `policy`: transient errors retry (accounting backoff)
/// until the attempt budget is spent, permanent errors abort immediately.
///
/// Returns the final result plus the [`RetryOutcome`] — also on success,
/// so callers can report how much recovery the run needed.
pub fn with_retry<R, F>(policy: &RetryPolicy, mut op: F) -> (Result<R, CostError>, RetryOutcome)
where
    F: FnMut() -> Result<R, CostError>,
{
    let max_attempts = policy.max_attempts.max(1);
    let mut backoff_ms = 0.0f64;
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(r) => {
                return (
                    Ok(r),
                    RetryOutcome {
                        attempts: attempt + 1,
                        backoff_ms,
                    },
                )
            }
            Err(e) if e.transient && attempt + 1 < max_attempts => {
                backoff_ms += policy.backoff_ms(attempt);
                attempt += 1;
            }
            Err(e) => {
                return (
                    Err(e),
                    RetryOutcome {
                        attempts: attempt + 1,
                        backoff_ms,
                    },
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyCache;
    use pruneperf_backends::AclGemm;
    use pruneperf_models::resnet50;

    fn l16(c: usize) -> ConvLayerSpec {
        resnet50()
            .layer("ResNet.L16")
            .unwrap()
            .with_c_out(c)
            .unwrap()
    }

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    #[test]
    fn decisions_are_seed_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7)
            .with_transient_rate(0.3)
            .with_panic_rate(0.2);
        let b = FaultPlan::new(7)
            .with_transient_rate(0.3)
            .with_panic_rate(0.2);
        let c = FaultPlan::new(8)
            .with_transient_rate(0.3)
            .with_panic_rate(0.2);
        let draws = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..256u64).map(|k| p.cost_fault(k, 0)).collect()
        };
        assert_eq!(draws(&a), draws(&b));
        assert_ne!(draws(&a), draws(&c), "different seeds must differ");
        let panics =
            |p: &FaultPlan| -> Vec<usize> { (0..256).filter(|&i| p.panics_at(i)).collect() };
        assert_eq!(panics(&a), panics(&b));
        assert_ne!(panics(&a), panics(&c));
    }

    #[test]
    fn rates_hit_roughly_their_targets() {
        let p = FaultPlan::new(42).with_transient_rate(0.25);
        let hits = (0..4000u64)
            .filter(|&k| p.cost_fault(k, 0) == Some(FaultKind::Transient))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
        // Rate 0 and 1 are exact.
        let never = FaultPlan::new(42);
        assert!((0..500u64).all(|k| never.cost_fault(k, 0).is_none()));
        let always = FaultPlan::new(42).with_permanent_rate(1.0);
        assert!((0..500u64).all(|k| always.cost_fault(k, 0) == Some(FaultKind::Permanent)));
    }

    #[test]
    fn permanent_faults_survive_retries_transients_clear() {
        let p = FaultPlan::new(5)
            .with_permanent_rate(1.0)
            .with_transient_rate(0.5);
        for attempt in 0..8 {
            assert_eq!(p.cost_fault(99, attempt), Some(FaultKind::Permanent));
        }
        let t = FaultPlan::new(5).with_transient_rate(0.5);
        // Per-attempt draws: some key that faults at attempt 0 must clear
        // within a handful of attempts.
        let key = (0..500u64)
            .find(|&k| t.cost_fault(k, 0) == Some(FaultKind::Transient))
            .expect("rate 0.5 must hit within 500 keys");
        assert!(
            (1..8).any(|a| t.cost_fault(key, a).is_none()),
            "transient fault never cleared"
        );
    }

    #[test]
    fn faulty_backend_injects_only_on_the_fallible_path() {
        let plan = FaultPlan::new(3).with_permanent_rate(1.0);
        let b = FaultyBackend::new(AclGemm::new(), plan);
        let layer = l16(92);
        let d = device();
        // The clean paths pass through: 92 channels still split 80+12.
        assert_eq!(b.cost(&layer, &d), AclGemm::new().cost(&layer, &d));
        assert_eq!(b.plan(&layer, &d).kernels_named("gemm_mm").count(), 2);
        assert_eq!(b.name(), "ACL GEMM");
        // The fallible path faults.
        let err = b.try_cost(&layer, &d).unwrap_err();
        assert!(!err.transient);
        assert!(err.message.contains("92 channels"), "{err}");
        assert_eq!(b.stats().permanents, 1);
    }

    #[test]
    fn spikes_multiply_latency_but_not_energy() {
        let plan = FaultPlan::new(11).with_spike(1.0, 3.0);
        let b = FaultyBackend::new(AclGemm::new(), plan);
        let layer = l16(96);
        let d = device();
        let (ms, mj) = b.try_cost(&layer, &d).unwrap();
        let (clean_ms, clean_mj) = AclGemm::new().cost(&layer, &d);
        assert_eq!(ms, clean_ms * 3.0);
        assert_eq!(mj, clean_mj);
        assert_eq!(b.stats().spikes, 1);
    }

    #[test]
    fn faulty_fingerprint_never_collides_with_clean_entries() {
        let clean = AclGemm::new();
        let faulty = FaultyBackend::new(AclGemm::new(), FaultPlan::new(1).with_spike(1.0, 4.0));
        assert_ne!(clean.fingerprint(), faulty.fingerprint());
        // Different seeds and rates fingerprint differently too.
        let other = FaultyBackend::new(AclGemm::new(), FaultPlan::new(2).with_spike(1.0, 4.0));
        assert_ne!(faulty.fingerprint(), other.fingerprint());
        // So a shared cache keeps spiked and clean values apart.
        let cache = LatencyCache::new();
        let d = device();
        let layer = l16(96);
        let clean_ms = cache.try_cost(&clean, &layer, &d).unwrap().0;
        let spiked_ms = cache.try_cost(&faulty, &layer, &d).unwrap().0;
        assert_eq!(spiked_ms, clean_ms * 4.0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn retry_recovers_transients_and_respects_the_budget() {
        let policy = RetryPolicy::bounded();
        // Succeeds on the third attempt: 2 failures, backoff 1 + 2 ms.
        let mut calls = 0;
        let (res, outcome) = with_retry(&policy, || {
            calls += 1;
            if calls < 3 {
                Err(CostError::transient("flaky"))
            } else {
                Ok(7u32)
            }
        });
        assert_eq!(res, Ok(7));
        assert_eq!(outcome.attempts, 3);
        assert!((outcome.backoff_ms - 3.0).abs() < 1e-12);

        // A permanent error aborts immediately.
        let mut calls = 0;
        let (res, outcome) = with_retry(&policy, || -> Result<u32, CostError> {
            calls += 1;
            Err(CostError::permanent("dead"))
        });
        assert!(res.is_err());
        assert_eq!((outcome.attempts, calls), (1, 1));

        // Transients exhaust the attempt budget.
        let (res, outcome) = with_retry(&policy, || -> Result<u32, CostError> {
            Err(CostError::transient("always"))
        });
        assert!(res.unwrap_err().transient);
        assert_eq!(outcome.attempts, 4);
        assert!((outcome.backoff_ms - (1.0 + 2.0 + 4.0)).abs() < 1e-12);

        // The per-interval cap engages.
        assert!((policy.backoff_ms(10) - 8.0).abs() < 1e-12);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn attempt_counter_feeds_per_attempt_draws() {
        // With per-attempt transient draws at rate 0.5, repeated try_cost
        // calls on one layer must eventually succeed — proving the wrapper
        // advances the attempt number rather than redrawing attempt 0.
        let plan = FaultPlan::new(17).with_transient_rate(0.5);
        let b = FaultyBackend::new(AclGemm::new(), plan);
        let d = device();
        // Find a layer that faults on its first attempt.
        let layer = (60..128usize)
            .map(l16)
            .find(|l| {
                FaultPlan::new(17)
                    .with_transient_rate(0.5)
                    .cost_fault(FaultPlan::cost_key(l, &d), 0)
                    .is_some()
            })
            .expect("half the layers fault at attempt 0");
        let mut succeeded = false;
        for _ in 0..16 {
            if b.try_cost(&layer, &d).is_ok() {
                succeeded = true;
                break;
            }
        }
        assert!(succeeded, "attempts never advanced past the faulting draw");
        assert!(b.stats().transients >= 1);
    }
}

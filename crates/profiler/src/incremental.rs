//! Incremental simulation: per-(kernel, device) engine-cost memoization.
//!
//! A channel sweep re-plans a layer at every `c_out`, but most of the plan
//! does not change: the im2col kernel depends only on the input geometry,
//! the interleave/reshape stages are constant in `c_out`, and on many
//! backends adjacent channel counts even share GEMM tile shapes. The cold
//! path re-derives every per-workgroup cost from scratch anyway.
//!
//! [`KernelMemo`] memoizes [`Engine::kernel_cost`] keyed by (device name,
//! cost-relevant kernel descriptor), so a sweep only re-derives the parts
//! that actually change with `c_out`. Because the memo stores the exact
//! [`KernelCost`] the engine produced and
//! [`Engine::chain_cost_by`] accumulates in `run_chain` order, assembling
//! a chain from memoized costs is **bitwise identical** to a cold
//! simulation — the memo is invisible to every virtual metric.
//!
//! # Counter discipline
//!
//! Like the layer cache, counters must be a pure function of the query
//! multiset, independent of thread schedule. `kernel_evals` is classified
//! at insert time: of all racing evaluators of one fresh kernel shape,
//! exactly one (the insert winner) counts. Lookup/hit totals for the memo
//! are *not* counted here per probe — racing duplicate layer-cache misses
//! would probe a schedule-dependent number of times — but derived by the
//! owning [`crate::LatencyCache`] from its own schedule-independent
//! assembly counts (see [`EngineStats::kernel_memo_hits`]).

use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use pruneperf_backends::hash::fnv1a;
use pruneperf_gpusim::{Engine, KernelCost, KernelDesc};

use crate::cache::{splitmix, IdentityHasher};

/// Number of independently locked shards (same geometry as the layer
/// cache: power of two, masked from the digest's top bits).
const SHARDS: usize = 16;

/// One memo key: a kernel shape on a device. Matching uses
/// [`KernelDesc::cost_equivalent`], so kernels that differ only in name
/// or footprint share an entry.
#[derive(Debug)]
struct MemoKey {
    device: String,
    kernel: KernelDesc,
}

impl MemoKey {
    fn matches(&self, device: &str, kernel: &KernelDesc) -> bool {
        self.device == device && self.kernel.cost_equivalent(kernel)
    }

    /// Structural order used as the within-bucket eviction tie-break
    /// (cross-bucket order is by digest), mirroring the layer cache's
    /// `CacheKey::order_cmp`.
    fn order_cmp(&self, other: &MemoKey) -> CmpOrdering {
        self.device
            .cmp(&other.device)
            .then_with(|| self.kernel.cost_digest().cmp(&other.kernel.cost_digest()))
            .then_with(|| self.kernel.name().cmp(other.kernel.name()))
    }
}

type Bucket = Vec<(MemoKey, KernelCost)>;
type Shard = HashMap<u64, Bucket, BuildHasherDefault<IdentityHasher>>;

/// A sharded, thread-safe memo table over [`Engine::kernel_cost`].
///
/// Owned by [`crate::LatencyCache`]; not exposed directly — every consumer
/// reaches it through the cache's incremental assembly path.
#[derive(Debug)]
pub(crate) struct KernelMemo {
    shards: Vec<Mutex<Shard>>,
    /// Unique kernel shapes evaluated (insert winners only — see the
    /// module docs for why this is schedule-independent).
    evals: AtomicU64,
    /// Opt-in per-shard entry bound; `0` means unbounded. Set alongside
    /// the owning cache's bound by
    /// [`crate::LatencyCache::set_max_entries_per_shard`].
    max_entries: AtomicUsize,
}

impl KernelMemo {
    /// An empty memo.
    pub(crate) fn new() -> Self {
        KernelMemo {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            evals: AtomicU64::new(0),
            max_entries: AtomicUsize::new(0),
        }
    }

    /// Bounds every shard to at most `cap` entries (`0` = unbounded),
    /// trimming immediately when shrinking below current occupancy. Same
    /// admit-if-smaller digest-order policy as the layer cache.
    pub(crate) fn set_max_entries_per_shard(&self, cap: usize) {
        self.max_entries.store(cap, Ordering::Relaxed);
        if cap == 0 {
            return;
        }
        for shard in &self.shards {
            // lint: allow(hot-lock) — a different shard each iteration; nothing to hoist
            let mut table = shard.lock().unwrap_or_else(PoisonError::into_inner);
            while table.values().map(Vec::len).sum::<usize>() > cap {
                // lint: allow(guard-call) — evict_max only mutates the held shard, takes no lock
                Self::evict_max(&mut table);
            }
        }
    }

    /// Removes the entry with the largest `(digest, key)` order key.
    fn evict_max(table: &mut Shard) {
        let mut max_at: Option<(u64, usize, &MemoKey)> = None;
        for (&digest, bucket) in table.iter() {
            for (i, (key, _)) in bucket.iter().enumerate() {
                let greater = match max_at {
                    None => true,
                    Some((d, _, incumbent)) => {
                        digest.cmp(&d).then_with(|| key.order_cmp(incumbent))
                            == CmpOrdering::Greater
                    }
                };
                if greater {
                    max_at = Some((digest, i, key));
                }
            }
        }
        let target = max_at.map(|(digest, i, _)| (digest, i));
        if let Some((digest, i)) = target {
            if let Some(bucket) = table.get_mut(&digest) {
                if i < bucket.len() {
                    bucket.remove(i);
                }
                if bucket.is_empty() {
                    table.remove(&digest);
                }
            }
        }
    }

    fn digest(device: &str, kernel: &KernelDesc) -> u64 {
        splitmix(fnv1a(device.as_bytes()) ^ kernel.cost_digest())
    }

    fn shard(&self, digest: u64) -> &Mutex<Shard> {
        // lint: allow(index) — masked with SHARDS - 1, always in-bounds
        &self.shards[(digest >> 60) as usize & (SHARDS - 1)]
    }

    /// Memoized engine cost of `kernel` on `engine`'s device.
    ///
    /// On a miss the evaluation runs outside the shard lock; racing
    /// threads may both evaluate, but [`Engine::kernel_cost`] is
    /// deterministic, so whichever insert lands is indistinguishable.
    pub(crate) fn cost(&self, engine: &Engine<'_>, kernel: &KernelDesc) -> KernelCost {
        let device = engine.device().name();
        let digest = Self::digest(device, kernel);
        {
            // Poison recovery mirrors the layer cache: entries are pure
            // values inserted whole under the lock, so no torn state.
            let table = self
                .shard(digest)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(cost) = table.get(&digest).and_then(|bucket| {
                bucket
                    .iter()
                    .find(|(k, _)| k.matches(device, kernel))
                    .map(|(_, c)| *c)
            }) {
                return cost;
            }
        }
        let computed = engine.kernel_cost(kernel);
        let mut table = self
            .shard(digest)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let already_present = table
            .get(&digest)
            .is_some_and(|bucket| bucket.iter().any(|(k, _)| k.matches(device, kernel)));
        if !already_present {
            let key = MemoKey {
                device: device.to_string(),
                kernel: kernel.clone(),
            };
            let cap = self.max_entries.load(Ordering::Relaxed);
            let full = cap > 0 && table.values().map(Vec::len).sum::<usize>() >= cap;
            let admit = if full {
                // Admit-if-smaller (see the layer cache): membership
                // converges to the cap-smallest keys, arrival-order-free.
                if Self::shard_max_exceeds(&table, digest, &key) {
                    Self::evict_max(&mut table);
                    true
                } else {
                    false
                }
            } else {
                true
            };
            if admit {
                table.entry(digest).or_default().push((key, computed));
                drop(table);
                self.evals.fetch_add(1, Ordering::Relaxed);
            }
        }
        computed
    }

    /// `true` when some entry in `table` orders strictly above the
    /// candidate `(digest, key)`.
    fn shard_max_exceeds(table: &Shard, digest: u64, key: &MemoKey) -> bool {
        table.iter().any(|(&d, bucket)| {
            bucket
                .iter()
                .any(|(k, _)| d.cmp(&digest).then_with(|| k.order_cmp(key)) == CmpOrdering::Greater)
        })
    }

    /// Unique kernel shapes evaluated so far.
    pub(crate) fn evals(&self) -> u64 {
        self.evals.load(Ordering::Relaxed)
    }

    /// Unique (device, kernel shape) entries currently stored.
    pub(crate) fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Drops every entry and resets the eval counter.
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            // lint: allow(hot-lock) — one acquisition per shard per reset; sharding splits this lock by design
            shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
        self.evals.store(0, Ordering::Relaxed);
    }
}

/// Deterministic engine-activity counters: how much full simulation the
/// incremental path avoided.
///
/// All fields are pure functions of the query multiset — independent of
/// worker count and thread schedule — so they can appear in byte-compared
/// stats and bench output. Snapshot via
/// [`crate::LatencyCache::engine_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Layer costs assembled incrementally from memoized kernel costs
    /// (the cache's infallible miss path). Before the incremental path
    /// existed, each of these was a full cold engine invocation.
    pub chains_assembled: u64,
    /// Full cold simulations actually performed: fallible-path misses
    /// that evaluated `ConvBackend::try_cost` and populated the cache.
    pub engine_runs: u64,
    /// Per-kernel cost queries issued by incremental assemblies
    /// (sum of chain lengths over `chains_assembled`).
    pub kernel_lookups: u64,
    /// Unique kernel shapes the engine actually evaluated for the memo.
    pub kernel_evals: u64,
    /// Unique (device, kernel shape) entries currently memoized.
    pub memo_entries: usize,
}

impl EngineStats {
    /// Kernel-cost queries answered without touching the engine.
    pub fn kernel_memo_hits(&self) -> u64 {
        self.kernel_lookups.saturating_sub(self.kernel_evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_gpusim::Device;

    fn kernel(name: &str, items: usize, arith: u64) -> KernelDesc {
        KernelDesc::builder(name)
            .global([items, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .build()
    }

    #[test]
    fn memoized_costs_are_bitwise_identical_to_cold() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let memo = KernelMemo::new();
        let k = kernel("gemm_mm", 4096, 1234);
        let cold = e.kernel_cost(&k);
        let miss = memo.cost(&e, &k);
        let hit = memo.cost(&e, &k);
        assert_eq!(miss, cold);
        assert_eq!(hit, cold);
        assert_eq!(memo.evals(), 1);
        assert_eq!(memo.entries(), 1);
    }

    #[test]
    fn name_changes_share_entries_but_devices_do_not() {
        let mali = Device::mali_g72_hikey970();
        let tx2 = Device::jetson_tx2();
        let memo = KernelMemo::new();
        let a = kernel("a", 4096, 10);
        let b = kernel("b", 4096, 10); // cost-equivalent, different name
        memo.cost(&Engine::new(&mali), &a);
        memo.cost(&Engine::new(&mali), &b);
        assert_eq!(memo.entries(), 1, "cost-equivalent kernels share");
        memo.cost(&Engine::new(&tx2), &a);
        assert_eq!(memo.entries(), 2, "devices never share");
        assert_eq!(memo.evals(), 2);
    }

    #[test]
    fn concurrent_misses_count_one_eval() {
        let d = Device::mali_g72_hikey970();
        let memo = KernelMemo::new();
        let k = kernel("k", 2048, 77);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let e = Engine::new(&d);
                    for _ in 0..8 {
                        memo.cost(&e, &k);
                    }
                });
            }
        });
        assert_eq!(memo.evals(), 1);
        assert_eq!(memo.entries(), 1);
    }

    #[test]
    fn clear_resets_entries_and_evals() {
        let d = Device::jetson_nano();
        let e = Engine::new(&d);
        let memo = KernelMemo::new();
        memo.cost(&e, &kernel("k", 64, 5));
        memo.clear();
        assert_eq!(memo.entries(), 0);
        assert_eq!(memo.evals(), 0);
    }

    #[test]
    fn engine_stats_derive_memo_hits() {
        let s = EngineStats {
            chains_assembled: 69,
            engine_runs: 0,
            kernel_lookups: 241,
            kernel_evals: 19,
            memo_entries: 19,
        };
        assert_eq!(s.kernel_memo_hits(), 222);
        assert_eq!(EngineStats::default().kernel_memo_hits(), 0);
    }
}

//! A concurrent memo table for simulated layer costs.
//!
//! Every figure, heatmap and pruning search in the repo bottoms out in the
//! same query: "what does layer L cost on device D under backend B?" The
//! paper's methodology makes that query *heavily* redundant — a staircase
//! sweeps 1..=1024 channel counts per layer, the pruner's search revisits
//! the same candidate counts layer after layer, and the 32 repro
//! experiments overlap on the stock configurations. [`LatencyCache`]
//! memoizes the deterministic simulator run behind
//! [`ConvBackend::cost`], keyed by (backend fingerprint, device, layer
//! spec), so each unique configuration is simulated exactly once per
//! process no matter how many sweeps touch it — and safely from many
//! worker threads at once.
//!
//! Since PR 6 the infallible miss path does not run a full cold simulation
//! either: it plans the layer and *assembles* the cost from per-kernel
//! engine costs memoized in a [`crate::incremental::KernelMemo`], which is
//! bitwise identical to the cold run (pinned by the backends' `cost ==
//! plan + simulate` contract and this module's canary tests). The
//! fallible path stays cold on purpose — fault-injecting backends override
//! [`ConvBackend::try_cost`], and assembling around them would bypass the
//! injected faults. [`LatencyCache::engine_stats`] reports how much full
//! simulation the incremental path avoided.

use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use pruneperf_backends::hash::fnv1a;
use pruneperf_backends::{ConvBackend, CostError};
use pruneperf_gpusim::{Device, Engine};
use pruneperf_models::ConvLayerSpec;

use crate::incremental::{EngineStats, KernelMemo};

/// Number of independently locked shards; a power of two so the shard
/// index is a cheap mask. 16 comfortably out-scales the worker counts the
/// sweep engine runs with.
const SHARDS: usize = 16;

/// Magic token that opens every persist file.
const PERSIST_HEADER: &str = "pruneperf-latency-cache";

/// Persist-format version; bumped on any byte-layout change.
const PERSIST_VERSION: u32 = 1;

/// A parse/validation failure from [`LatencyCache::reload`], carrying the
/// 1-based line number of the offending input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheReloadError {
    /// 1-based line number in the persist file.
    pub line: usize,
    /// What the line failed to satisfy.
    pub message: String,
}

impl fmt::Display for CacheReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache reload failed at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for CacheReloadError {}

/// One memo-table key: which planner, on which device, for which layer.
///
/// The backend contributes its [`ConvBackend::fingerprint`] rather than its
/// name, so configured backends (e.g. TVM with an autotuned log) that plan
/// differently never collide.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheKey {
    backend: u64,
    device: String,
    layer: ConvLayerSpec,
}

impl CacheKey {
    fn matches(&self, backend: u64, device: &str, layer: &ConvLayerSpec) -> bool {
        self.backend == backend && self.device == device && &self.layer == layer
    }

    /// Total order over keys, used as the eviction tie-break *within* one
    /// digest bucket (cross-bucket order is by digest). Purely structural —
    /// no insertion-time or thread-schedule component — so the bounded
    /// cache's final contents are a function of the query set alone.
    fn order_cmp(&self, other: &CacheKey) -> CmpOrdering {
        let tuple = |k: &CacheKey| {
            (
                k.backend,
                k.layer.kernel(),
                k.layer.stride(),
                k.layer.pad(),
                k.layer.c_in(),
                k.layer.c_out(),
                k.layer.h_in(),
                k.layer.w_in(),
                k.layer.groups(),
            )
        };
        self.device
            .cmp(&other.device)
            .then_with(|| self.layer.label().cmp(other.layer.label()))
            .then_with(|| tuple(self).cmp(&tuple(other)))
    }
}

/// SplitMix64 finalizer: cheap, high-quality 64-bit mixing (shared with
/// the fault-injection plan, whose decisions are pure hash functions).
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Digest of the logical key, computed directly from borrowed parts.
///
/// A cache query competes with this repo's analytic simulator run, which
/// is only a microsecond or two, so the hot path must stay allocation-free
/// and cheap: strings go through one FNV-1a pass each, numeric fields are
/// folded word-wise through SplitMix64, and an owned [`CacheKey`] (two
/// heap allocations) is built only when a miss actually inserts.
fn key_digest(backend: u64, device: &str, layer: &ConvLayerSpec) -> u64 {
    let mut h = splitmix(backend);
    h = splitmix(h ^ fnv1a(device.as_bytes()));
    h = splitmix(h ^ fnv1a(layer.label().as_bytes()));
    for v in [
        layer.kernel(),
        layer.stride(),
        layer.pad(),
        layer.c_in(),
        layer.c_out(),
        layer.h_in(),
        layer.w_in(),
        layer.groups(),
    ] {
        h = splitmix(h ^ (v as u64));
    }
    h
}

/// The digest is already well-mixed, so bucket maps index by it directly
/// instead of re-hashing through SipHash.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl std::hash::Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type Bucket = Vec<(CacheKey, (f64, f64))>;
type Shard = HashMap<u64, Bucket, std::hash::BuildHasherDefault<IdentityHasher>>;

/// Per-shard effectiveness counters, updated with relaxed atomics next to
/// the shard they describe.
///
/// The counting discipline is chosen so the *totals* are a pure function
/// of the query multiset, independent of thread schedule: every query
/// increments `lookups` exactly once, and exactly one of `hits`, `misses`
/// or `failures` — a lost insert race (two threads simulating the same
/// fresh key) counts as a hit for the loser, exactly what a sequential
/// execution of the same queries would record.
#[derive(Debug, Default)]
struct ShardCounters {
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    failures: AtomicU64,
    evictions: AtomicU64,
}

/// Counter snapshot of one shard, for [`LatencyCache::shard_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheShardStats {
    /// Shard index in `0..16`.
    pub shard: usize,
    /// Queries that probed this shard.
    pub lookups: u64,
    /// Queries answered from this shard's memo table.
    pub hits: u64,
    /// Queries that had to run the simulator.
    pub misses: u64,
    /// Fallible queries whose backend evaluation failed (never cached).
    pub failures: u64,
    /// Entries dropped by [`LatencyCache::clear`] or displaced by the
    /// opt-in per-shard bound, cumulative over the cache's lifetime
    /// (clearing resets the other counters, not this).
    pub evictions: u64,
    /// Unique configurations currently stored in the shard.
    pub entries: usize,
}

/// A snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that had to run the simulator.
    pub misses: u64,
    /// Total queries, including failed fallible ones. Conservation holds
    /// by construction: `lookups == hits + misses + failures`.
    pub lookups: u64,
    /// Fallible queries whose evaluation failed (never cached).
    pub failures: u64,
    /// Entries dropped by [`LatencyCache::clear`] or displaced by the
    /// opt-in per-shard bound, over the cache lifetime.
    pub evictions: u64,
    /// Unique (backend, device, layer) configurations currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of queries served from the table, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "latency cache: {} hits, {} misses, {} entries ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            self.hit_rate() * 100.0
        )
    }
}

/// A sharded, thread-safe memo table over [`ConvBackend::cost`].
///
/// Values are the exact `(latency ms, energy mJ)` pair one simulator run
/// produces, so cached and uncached reads are bitwise-identical — callers
/// can layer seeded measurement noise on top without caring whether the
/// base value came from the table.
///
/// Most callers want the process-wide [`LatencyCache::global`] instance,
/// which every [`crate::LayerProfiler`] and [`crate::NetworkRunner`] query
/// goes through; standalone instances exist for tests and isolation.
#[derive(Debug)]
pub struct LatencyCache {
    /// Buckets keyed by [`key_digest`]; each holds the (rarely >1) exact
    /// keys sharing that digest so hash collisions stay correct.
    shards: Vec<Mutex<Shard>>,
    counters: Vec<ShardCounters>,
    /// Opt-in per-shard entry bound; `0` means unbounded (the default, so
    /// batch workloads keep today's byte-identical goldens). Long-running
    /// processes (`pruneperf serve`) set it so the table cannot grow
    /// without limit. See [`LatencyCache::set_max_entries_per_shard`].
    max_entries: AtomicUsize,
    /// Per-kernel engine-cost memo backing the incremental miss path.
    memo: KernelMemo,
    /// Engine-activity counters. Classified at cache-insert time (win =
    /// the canonical assembly/run), so they are schedule-independent even
    /// when threads race on duplicate fresh keys — a lost race's redundant
    /// work is not counted, exactly as in a sequential execution.
    chains_assembled: AtomicU64,
    engine_runs: AtomicU64,
    kernel_lookups: AtomicU64,
}

impl Default for LatencyCache {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyCache {
    /// An empty cache.
    pub fn new() -> Self {
        LatencyCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            counters: (0..SHARDS).map(|_| ShardCounters::default()).collect(),
            max_entries: AtomicUsize::new(0),
            memo: KernelMemo::new(),
            chains_assembled: AtomicU64::new(0),
            engine_runs: AtomicU64::new(0),
            kernel_lookups: AtomicU64::new(0),
        }
    }

    /// The process-wide cache shared by every profiler and runner.
    pub fn global() -> &'static LatencyCache {
        static GLOBAL: OnceLock<LatencyCache> = OnceLock::new();
        GLOBAL.get_or_init(LatencyCache::new)
    }

    /// Bounds every shard (and the owned kernel memo) to at most `cap`
    /// entries; `0` restores the unbounded default.
    ///
    /// The eviction policy is *admit-if-smaller* in digest order: a fresh
    /// key is admitted to a full shard only when its `(digest, key)` order
    /// key is smaller than the shard's current maximum, which it displaces
    /// (one `evictions` count per displacement). Membership is therefore
    /// monotone toward the `cap` order-smallest distinct keys ever queried
    /// — a pure function of the query *set*, independent of arrival order
    /// and thread schedule, which is what keeps bounded serving runs
    /// byte-identical at any `--jobs`. The hit/miss *split* (never the
    /// `lookups == hits + misses + failures` conservation law) and the
    /// engine counters do become sequence-dependent once entries can be
    /// rejected, which is why the bound is opt-in and batch workloads
    /// leave it off.
    ///
    /// Shrinking below the current occupancy trims each shard to `cap`
    /// immediately, largest order keys first.
    pub fn set_max_entries_per_shard(&self, cap: usize) {
        self.max_entries.store(cap, Ordering::Relaxed);
        self.memo.set_max_entries_per_shard(cap);
        if cap == 0 {
            return;
        }
        for (shard, counters) in self.shards.iter().zip(&self.counters) {
            // lint: allow(hot-lock) — a different shard each iteration; nothing to hoist
            let mut table = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let mut dropped = 0u64;
            while table.values().map(Vec::len).sum::<usize>() > cap {
                // lint: allow(guard-call) — evict_max only mutates the held shard, takes no lock
                Self::evict_max(&mut table);
                dropped += 1;
            }
            drop(table);
            counters.evictions.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// The configured per-shard bound (`0` = unbounded).
    pub fn max_entries_per_shard(&self) -> usize {
        self.max_entries.load(Ordering::Relaxed)
    }

    /// Removes the entry with the largest `(digest, key)` order key from
    /// `table`. No-op on an empty table.
    fn evict_max(table: &mut Shard) {
        let mut max_at: Option<(u64, usize, &CacheKey)> = None;
        for (&digest, bucket) in table.iter() {
            for (i, (key, _)) in bucket.iter().enumerate() {
                let greater = match max_at {
                    None => true,
                    Some((d, _, incumbent)) => {
                        digest.cmp(&d).then_with(|| key.order_cmp(incumbent))
                            == CmpOrdering::Greater
                    }
                };
                if greater {
                    max_at = Some((digest, i, key));
                }
            }
        }
        let target = max_at.map(|(digest, i, _)| (digest, i));
        if let Some((digest, i)) = target {
            if let Some(bucket) = table.get_mut(&digest) {
                if i < bucket.len() {
                    bucket.remove(i);
                }
                if bucket.is_empty() {
                    table.remove(&digest);
                }
            }
        }
    }

    /// `(latency ms, energy mJ)` of one execution, memoized.
    ///
    /// On a miss the cost is *assembled* incrementally — the backend plans
    /// the layer and the engine accumulates memoized per-kernel costs in
    /// `run_chain` order — outside the shard lock: two threads racing on
    /// the same fresh key may both assemble, but the computation is
    /// deterministic so whichever insert lands is indistinguishable, and
    /// no thread ever blocks on another's assembly.
    pub fn cost(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        device: &Device,
    ) -> (f64, f64) {
        let fingerprint = backend.fingerprint();
        if let Some(cached) = self.lookup(fingerprint, layer, device) {
            return cached;
        }
        let engine = Engine::new(device);
        self.assemble_and_insert(&engine, fingerprint, backend, layer)
    }

    /// Batched multi-layer costing: one backend fingerprint and one engine
    /// per call, amortized across the whole layer list — the entry point
    /// network runs and the audit/bench backend×device×layer grids use.
    ///
    /// Values and counters are identical to calling [`LatencyCache::cost`]
    /// once per layer, in order; only the per-call setup is hoisted.
    pub fn cost_batch(
        &self,
        backend: &dyn ConvBackend,
        layers: &[ConvLayerSpec],
        device: &Device,
    ) -> Vec<(f64, f64)> {
        let fingerprint = backend.fingerprint();
        let engine = Engine::new(device);
        layers
            .iter()
            .map(|layer| {
                if let Some(cached) = self.lookup(fingerprint, layer, device) {
                    return cached;
                }
                self.assemble_and_insert(&engine, fingerprint, backend, layer)
            })
            .collect()
    }

    /// The infallible miss path: plan, assemble from memoized kernel
    /// costs, memoize, and account the engine counters on an insert win.
    fn assemble_and_insert(
        &self,
        engine: &Engine<'_>,
        fingerprint: u64,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
    ) -> (f64, f64) {
        let device = engine.device();
        let plan = backend.plan(layer, device);
        let chain = plan.chain();
        let cost = engine.chain_cost_by(chain, |k| self.memo.cost(engine, k));
        let computed = (cost.total_time_ms(), cost.total_energy_mj());
        if self.insert(fingerprint, layer, device, computed) {
            self.chains_assembled.fetch_add(1, Ordering::Relaxed);
            self.kernel_lookups
                .fetch_add(chain.len() as u64, Ordering::Relaxed);
        }
        computed
    }

    /// Fallible twin of [`LatencyCache::cost`] over
    /// [`ConvBackend::try_cost`].
    ///
    /// Failures are **never** cached: a transient error leaves no trace in
    /// the table, so the caller's retry re-evaluates the backend, and a
    /// later success is memoized normally. A failed evaluation counts one
    /// `failures` (not a miss), keeping the lookup conservation law exact.
    ///
    /// Unlike [`LatencyCache::cost`], a miss here runs the backend's own
    /// [`ConvBackend::try_cost`] **cold** — fault-injecting decorators
    /// override it, and assembling from plan + memo would silently bypass
    /// their injected faults. Each successful cold evaluation that
    /// populates the table counts one `engine_runs`.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`CostError`] on a miss whose evaluation
    /// fails.
    pub fn try_cost(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        device: &Device,
    ) -> Result<(f64, f64), CostError> {
        let fingerprint = backend.fingerprint();
        if let Some(cached) = self.lookup(fingerprint, layer, device) {
            return Ok(cached);
        }
        let computed = match backend.try_cost(layer, device) {
            Ok(value) => value,
            Err(e) => {
                let digest = key_digest(fingerprint, device.name(), layer);
                self.shard_counters(digest)
                    .failures
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        if self.insert(fingerprint, layer, device, computed) {
            self.engine_runs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(computed)
    }

    /// Probes the memo table, counting the lookup, and a hit when present.
    fn lookup(
        &self,
        fingerprint: u64,
        layer: &ConvLayerSpec,
        device: &Device,
    ) -> Option<(f64, f64)> {
        let digest = key_digest(fingerprint, device.name(), layer);
        self.shard_counters(digest)
            .lookups
            .fetch_add(1, Ordering::Relaxed);
        // Recover from poisoning: shard entries are pure memoized values,
        // inserted whole under the lock, so a panicked holder cannot have
        // left a torn state.
        let table = self
            .shard(digest)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let cached = table.get(&digest).and_then(|bucket| {
            bucket
                .iter()
                .find(|(k, _)| k.matches(fingerprint, device.name(), layer))
                .map(|(_, v)| *v)
        });
        drop(table);
        if cached.is_some() {
            self.shard_counters(digest)
                .hits
                .fetch_add(1, Ordering::Relaxed);
        }
        cached
    }

    /// Memoizes one computed value and classifies the query that produced
    /// it: a miss when the key is new, a *hit* when another thread's insert
    /// landed first (the lost race re-simulated, but the answer the table
    /// would have given is identical, and counting it as a hit keeps the
    /// hit/miss split schedule-independent).
    ///
    /// Returns `true` when this call's insert landed — the canonical
    /// evaluation of the key, which is what the engine counters bill.
    ///
    /// When a per-shard bound is set (see
    /// [`LatencyCache::set_max_entries_per_shard`]) a fresh key may be
    /// *rejected* by a full shard instead of stored; the computed value is
    /// still returned to the caller, the query still counts as a miss, but
    /// no engine counter is billed (there is no canonical owner of a value
    /// the table refused to keep).
    fn insert(
        &self,
        fingerprint: u64,
        layer: &ConvLayerSpec,
        device: &Device,
        value: (f64, f64),
    ) -> bool {
        let digest = key_digest(fingerprint, device.name(), layer);
        let mut table = self
            .shard(digest)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let already_present = table.get(&digest).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|(k, _)| k.matches(fingerprint, device.name(), layer))
        });
        let mut admitted = false;
        let mut displaced = false;
        if !already_present {
            let key = CacheKey {
                backend: fingerprint,
                device: device.name().to_string(),
                layer: layer.clone(),
            };
            let cap = self.max_entries.load(Ordering::Relaxed);
            let full = cap > 0 && table.values().map(Vec::len).sum::<usize>() >= cap;
            if full {
                // Admit-if-smaller: displace the current maximum only when
                // the candidate orders below it, so membership converges to
                // the cap-smallest distinct keys regardless of arrival
                // order (the determinism contract of the bounded mode).
                if Self::shard_max_exceeds(&table, digest, &key) {
                    Self::evict_max(&mut table);
                    displaced = true;
                    table.entry(digest).or_default().push((key, value));
                    admitted = true;
                }
            } else {
                table.entry(digest).or_default().push((key, value));
                admitted = true;
            }
        }
        drop(table);
        let counters = self.shard_counters(digest);
        if already_present {
            counters.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.misses.fetch_add(1, Ordering::Relaxed);
        }
        if displaced {
            counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// `true` when some entry in `table` has a `(digest, key)` order key
    /// strictly greater than the candidate's.
    fn shard_max_exceeds(table: &Shard, digest: u64, key: &CacheKey) -> bool {
        table.iter().any(|(&d, bucket)| {
            bucket
                .iter()
                .any(|(k, _)| d.cmp(&digest).then_with(|| k.order_cmp(key)) == CmpOrdering::Greater)
        })
    }

    /// The shard holding `digest`.
    ///
    /// Shards on the *top* bits: the identity-hashed bucket maps consume
    /// the low bits for their own indexing, and sharing those across the
    /// shard split would cluster every shard's keys.
    fn shard(&self, digest: u64) -> &Mutex<Shard> {
        // lint: allow(index) — masked with SHARDS - 1, always in-bounds
        &self.shards[(digest >> 60) as usize & (SHARDS - 1)]
    }

    /// The counter set paired with [`LatencyCache::shard`] for `digest`.
    fn shard_counters(&self, digest: u64) -> &ShardCounters {
        // lint: allow(index) — masked with SHARDS - 1, always in-bounds
        &self.counters[(digest >> 60) as usize & (SHARDS - 1)]
    }

    /// Deliberately poisons every shard lock: a scoped thread takes each
    /// lock and panics while holding it.
    ///
    /// This is the chaos harness's poisoned-lock fault. The cache's own
    /// accessors recover via [`PoisonError::into_inner`] (entries are
    /// inserted whole under the lock, so no torn state can exist), and
    /// callers verify that queries after poisoning still return bitwise
    /// the same values.
    pub fn poison_all_shards(&self) {
        for shard in &self.shards {
            let result = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                        panic!("deliberate shard poisoning");
                    })
                    .join()
            });
            debug_assert!(result.is_err(), "the poisoning thread must panic");
        }
    }

    /// Memoized latency in ms (the `.0` of [`LatencyCache::cost`]).
    pub fn latency_ms(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        device: &Device,
    ) -> f64 {
        self.cost(backend, layer, device).0
    }

    /// Memoized energy in mJ (the `.1` of [`LatencyCache::cost`]).
    pub fn energy_mj(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        device: &Device,
    ) -> f64 {
        self.cost(backend, layer, device).1
    }

    /// Current counters, aggregated over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats {
            hits: 0,
            misses: 0,
            lookups: 0,
            failures: 0,
            evictions: 0,
            entries: self.len(),
        };
        for c in &self.counters {
            agg.hits += c.hits.load(Ordering::Relaxed);
            agg.misses += c.misses.load(Ordering::Relaxed);
            agg.lookups += c.lookups.load(Ordering::Relaxed);
            agg.failures += c.failures.load(Ordering::Relaxed);
            agg.evictions += c.evictions.load(Ordering::Relaxed);
        }
        agg
    }

    /// Engine-activity counters: how much full simulation the incremental
    /// miss path avoided. Deterministic at any worker count (see the
    /// counter-discipline notes on [`LatencyCache`] and
    /// [`crate::incremental::KernelMemo`]).
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            chains_assembled: self.chains_assembled.load(Ordering::Relaxed),
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            kernel_lookups: self.kernel_lookups.load(Ordering::Relaxed),
            kernel_evals: self.memo.evals(),
            memo_entries: self.memo.entries(),
        }
    }

    /// Per-shard counter snapshots, in shard order.
    ///
    /// The per-shard split is deterministic because keys map to shards by
    /// digest, not by thread: the same query multiset lands on the same
    /// shards at any `--jobs` count.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.counters
            .iter()
            .enumerate()
            .map(|(i, c)| CacheShardStats {
                shard: i,
                lookups: c.lookups.load(Ordering::Relaxed),
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                failures: c.failures.load(Ordering::Relaxed),
                evictions: c.evictions.load(Ordering::Relaxed),
                entries: self.shards[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum(),
            })
            .collect()
    }

    /// Number of memoized configurations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry and resets the query counters (for tests and
    /// long-lived processes that switch workloads). Dropped entries
    /// accumulate into the per-shard `evictions` counter, which survives
    /// the reset — it records table churn over the cache's lifetime. The
    /// kernel memo and engine counters reset alongside the query counters.
    pub fn clear(&self) {
        for (shard, counters) in self.shards.iter().zip(&self.counters) {
            // lint: allow(hot-lock) — one acquisition per shard per reset; sharding splits this lock by design
            let mut table = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let dropped: usize = table.values().map(Vec::len).sum();
            table.clear();
            drop(table);
            counters
                .evictions
                .fetch_add(dropped as u64, Ordering::Relaxed);
            counters.lookups.store(0, Ordering::Relaxed);
            counters.hits.store(0, Ordering::Relaxed);
            counters.misses.store(0, Ordering::Relaxed);
            counters.failures.store(0, Ordering::Relaxed);
        }
        self.memo.clear();
        self.chains_assembled.store(0, Ordering::Relaxed);
        self.engine_runs.store(0, Ordering::Relaxed);
        self.kernel_lookups.store(0, Ordering::Relaxed);
    }

    /// Serializes every memoized entry to the versioned persist format.
    ///
    /// The format is line-oriented and **byte-stable**: a header
    /// (`pruneperf-latency-cache v1 entries=N`) followed by one
    /// tab-separated line per entry in `(digest, key)` order — the same
    /// structural total order the bounded-eviction policy uses — with both
    /// cost floats rendered as big-endian `f64::to_bits` hex. Persisting
    /// the same entry *set* therefore always produces the same bytes,
    /// regardless of insertion order, thread schedule or whether the cache
    /// was itself restored from a persist file.
    pub fn persist(&self) -> String {
        let mut entries: Vec<(u64, CacheKey, (f64, f64))> = Vec::new();
        for shard in &self.shards {
            let table = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (&digest, bucket) in table.iter() {
                for (key, value) in bucket {
                    entries.push((digest, key.clone(), *value));
                }
            }
        }
        entries.sort_by(|(da, ka, _), (db, kb, _)| da.cmp(db).then_with(|| ka.order_cmp(kb)));
        let mut out = format!(
            "{PERSIST_HEADER} v{PERSIST_VERSION} entries={}\n",
            entries.len()
        );
        for (_, key, (ms, mj)) in &entries {
            let l = &key.layer;
            out.push_str(&format!(
                "{:016x}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:016x}\t{:016x}\n",
                key.backend,
                key.device,
                l.label(),
                l.kernel(),
                l.stride(),
                l.pad(),
                l.c_in(),
                l.c_out(),
                l.h_in(),
                l.w_in(),
                l.groups(),
                ms.to_bits(),
                mj.to_bits(),
            ));
        }
        out
    }

    /// Restores entries from a [`LatencyCache::persist`] snapshot.
    ///
    /// Returns the number of entries admitted. Restoring is **not** a
    /// query: the hit/miss counters and the engine counters are untouched
    /// (only eviction displacements are recorded), so a resumed search's
    /// stats cleanly attribute every subsequent lookup. Keys already
    /// memoized are skipped (costs are deterministic, so the values agree
    /// by construction). When a per-shard bound is set, restored keys go
    /// through the same admit-if-smaller policy as live inserts, so the
    /// final membership stays a pure function of the key set and the cap.
    ///
    /// # Errors
    ///
    /// Rejects unknown versions, malformed lines and layer shapes the
    /// catalog constructors would refuse, with the 1-based line number.
    pub fn reload(&self, data: &str) -> Result<usize, CacheReloadError> {
        let err = |line: usize, message: &str| CacheReloadError {
            line,
            message: message.to_string(),
        };
        let mut lines = data.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| err(1, "empty persist file"))?;
        let expected = format!("{PERSIST_HEADER} v{PERSIST_VERSION} ");
        if !header.starts_with(&expected) {
            return Err(err(1, "unrecognized persist header/version"));
        }
        let mut restored = 0usize;
        for (idx, line) in lines {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 13 {
                return Err(err(lineno, "expected 13 tab-separated fields"));
            }
            let backend = u64::from_str_radix(fields[0], 16)
                .map_err(|_| err(lineno, "bad backend fingerprint"))?;
            let device = fields[1];
            let label = fields[2];
            let mut nums = [0usize; 8];
            for (slot, raw) in nums.iter_mut().zip(&fields[3..11]) {
                *slot = raw
                    .parse::<usize>()
                    .map_err(|_| err(lineno, "bad layer extent"))?;
            }
            let [kernel, stride, pad, c_in, c_out, h_in, w_in, groups] = nums;
            // Pre-validate what the catalog constructors assert, so a
            // corrupt file surfaces as an error instead of a panic.
            let extents_ok = kernel > 0
                && stride > 0
                && c_in > 0
                && c_out > 0
                && h_in > 0
                && w_in > 0
                && h_in + 2 * pad >= kernel
                && w_in + 2 * pad >= kernel;
            let groups_ok = groups > 0 && c_in % groups == 0 && c_out % groups == 0;
            if !extents_ok || !groups_ok {
                return Err(err(lineno, "layer shape fails catalog invariants"));
            }
            let layer = if groups == 1 {
                ConvLayerSpec::new(label, kernel, stride, pad, c_in, c_out, h_in, w_in)
            } else {
                ConvLayerSpec::new_grouped(
                    label, kernel, stride, pad, c_in, c_out, h_in, w_in, groups,
                )
            };
            let ms = f64::from_bits(
                u64::from_str_radix(fields[11], 16).map_err(|_| err(lineno, "bad latency bits"))?,
            );
            let mj = f64::from_bits(
                u64::from_str_radix(fields[12], 16).map_err(|_| err(lineno, "bad energy bits"))?,
            );
            if self.insert_restored(backend, device, layer, (ms, mj)) {
                restored += 1;
            }
        }
        Ok(restored)
    }

    /// Admits one restored entry, mirroring the bounded-insert policy but
    /// without query/engine accounting. Returns `true` when admitted.
    fn insert_restored(
        &self,
        fingerprint: u64,
        device: &str,
        layer: ConvLayerSpec,
        value: (f64, f64),
    ) -> bool {
        let digest = key_digest(fingerprint, device, &layer);
        let mut table = self
            .shard(digest)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let already_present = table.get(&digest).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|(k, _)| k.matches(fingerprint, device, &layer))
        });
        if already_present {
            return false;
        }
        let key = CacheKey {
            backend: fingerprint,
            device: device.to_string(),
            layer,
        };
        let cap = self.max_entries.load(Ordering::Relaxed);
        let full = cap > 0 && table.values().map(Vec::len).sum::<usize>() >= cap;
        let mut displaced = false;
        let admitted = if full {
            if Self::shard_max_exceeds(&table, digest, &key) {
                Self::evict_max(&mut table);
                displaced = true;
                table.entry(digest).or_default().push((key, value));
                true
            } else {
                false
            }
        } else {
            table.entry(digest).or_default().push((key, value));
            true
        };
        drop(table);
        if displaced {
            self.shard_counters(digest)
                .evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclGemm, Cudnn, Tvm};
    use pruneperf_models::resnet50;

    fn l16() -> ConvLayerSpec {
        resnet50().layer("ResNet.L16").unwrap().clone()
    }

    #[test]
    fn cached_reads_are_bitwise_equal_to_uncached() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in [128usize, 92, 76] {
            let layer = l16().with_c_out(c).unwrap();
            let (ms, mj) = cache.cost(&b, &layer, &d); // miss
            let (ms2, mj2) = cache.cost(&b, &layer, &d); // hit
            assert_eq!(ms, b.latency_ms(&layer, &d));
            assert_eq!(mj, b.energy_mj(&layer, &d));
            assert_eq!((ms, mj), (ms2, mj2));
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keys_distinguish_backend_device_and_layer() {
        let cache = LatencyCache::new();
        let mali = Device::mali_g72_hikey970();
        let tx2 = Device::jetson_tx2();
        let layer = l16();
        cache.cost(&AclGemm::new(), &layer, &mali);
        cache.cost(&Cudnn::new(), &layer, &tx2);
        cache.cost(&AclGemm::new(), &layer, &tx2);
        cache.cost(&AclGemm::new(), &layer.with_c_out(92).unwrap(), &mali);
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn tvm_logs_do_not_collide() {
        use pruneperf_backends::tuning::TuningLog;
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let layer = l16().with_c_out(77).unwrap();
        let stock_ms = cache.latency_ms(&Tvm::new(), &layer, &d);
        let mut log = TuningLog::tophub(d.name());
        log.autotune(&layer, 300);
        let tuned_ms = cache.latency_ms(&Tvm::with_log(log), &layer, &d);
        assert_ne!(stock_ms, tuned_ms, "autotuned entry must not be shadowed");
        assert_eq!(cache.len(), 2);
    }

    /// A backend that fails its first `fail_times` fallible evaluations of
    /// every query, then defers to the clean model.
    struct Flaky {
        inner: AclGemm,
        fail_times: u64,
        calls: AtomicU64,
    }

    impl ConvBackend for Flaky {
        fn name(&self) -> &str {
            "flaky"
        }

        fn plan(&self, layer: &ConvLayerSpec, device: &Device) -> pruneperf_backends::DispatchPlan {
            self.inner.plan(layer, device)
        }

        fn try_cost(
            &self,
            layer: &ConvLayerSpec,
            device: &Device,
        ) -> Result<(f64, f64), pruneperf_backends::CostError> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call < self.fail_times {
                Err(pruneperf_backends::CostError::transient(format!(
                    "injected failure {call}"
                )))
            } else {
                Ok(self.inner.cost(layer, device))
            }
        }
    }

    #[test]
    fn try_cost_never_caches_failures() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = Flaky {
            inner: AclGemm::new(),
            fail_times: 2,
            calls: AtomicU64::new(0),
        };
        let layer = l16();
        assert!(cache.try_cost(&b, &layer, &d).is_err());
        assert!(cache.try_cost(&b, &layer, &d).is_err());
        assert!(cache.is_empty(), "errors must not be memoized");
        assert_eq!(cache.stats().misses, 0, "failed queries are not misses");
        assert_eq!(cache.stats().failures, 2, "each failed attempt counts");
        let value = cache.try_cost(&b, &layer, &d).unwrap();
        assert_eq!(value, AclGemm::new().cost(&layer, &d));
        assert_eq!(cache.stats().misses, 1);
        // The success is memoized: the next query is a hit, not a call.
        assert_eq!(cache.try_cost(&b, &layer, &d).unwrap(), value);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(b.calls.load(Ordering::Relaxed), 3);
        let stats = cache.stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses + stats.failures);
    }

    #[test]
    fn try_cost_agrees_with_cost_for_infallible_backends() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let layer = l16();
        assert_eq!(
            cache.try_cost(&b, &layer, &d).unwrap(),
            cache.cost(&b, &layer, &d)
        );
    }

    /// Poisoned shard locks must not lose the table or change any value.
    #[test]
    fn queries_recover_from_poisoned_shards() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let warm: Vec<f64> = (60..=76)
            .map(|c| cache.latency_ms(&b, &l16().with_c_out(c).unwrap(), &d))
            .collect();
        let entries = cache.len();
        cache.poison_all_shards();
        // Reads of warmed keys hit and match bitwise; new keys still insert.
        let after: Vec<f64> = (60..=76)
            .map(|c| cache.latency_ms(&b, &l16().with_c_out(c).unwrap(), &d))
            .collect();
        assert_eq!(warm, after);
        assert_eq!(cache.len(), entries);
        let fresh = cache.latency_ms(&b, &l16().with_c_out(33).unwrap(), &d);
        assert_eq!(fresh, b.latency_ms(&l16().with_c_out(33).unwrap(), &d));
        assert_eq!(cache.len(), entries + 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_queries_agree() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let base = l16();
        let mut results: Vec<Vec<f64>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (1..=base.c_out())
                            .map(|c| cache.latency_ms(&b, &base.with_c_out(c).unwrap(), &d))
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        });
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(cache.len(), base.c_out());
        let stats = cache.stats();
        assert_eq!(stats.lookups, 4 * base.c_out() as u64);
        // Regression (PR 5): the hit/miss split is schedule-independent.
        // A lost insert race counts as a hit, so exactly one miss is
        // recorded per unique key no matter how the four threads interleave.
        assert_eq!(stats.misses, base.c_out() as u64);
        assert_eq!(stats.hits, 3 * base.c_out() as u64);
        assert_eq!(stats.failures, 0);

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().evictions, base.c_out() as u64);
    }

    #[test]
    fn shard_stats_sum_to_aggregate() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in 1..=64usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 16);
        let agg = cache.stats();
        assert_eq!(shards.iter().map(|s| s.lookups).sum::<u64>(), agg.lookups);
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert_eq!(shards.iter().map(|s| s.entries).sum::<usize>(), agg.entries);
        // Keys spread across more than one shard for a non-trivial sweep.
        assert!(shards.iter().filter(|s| s.entries > 0).count() > 1);
        for s in &shards {
            assert_eq!(s.lookups, s.hits + s.misses + s.failures);
        }
    }

    #[test]
    fn clear_accumulates_evictions_across_generations() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in 1..=10usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        cache.clear();
        assert_eq!(cache.stats().evictions, 10);
        assert_eq!(cache.stats().lookups, 0, "query counters reset");
        for c in 1..=4usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        cache.clear();
        assert_eq!(cache.stats().evictions, 14, "evictions are cumulative");
    }

    /// The final contents of a bounded cache are a pure function of the
    /// distinct keys queried — identical whether the sweep ran on one
    /// thread in order, one thread in reverse, or four racing threads.
    #[test]
    fn bounded_eviction_is_deterministic_across_schedules() {
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let cap = 3usize;

        let contents = |cache: &LatencyCache| -> Vec<(usize, usize)> {
            cache
                .shard_stats()
                .iter()
                .map(|s| (s.shard, s.entries))
                .filter(|(_, n)| *n > 0)
                .collect()
        };
        let probe = |cache: &LatencyCache| -> Vec<u64> {
            // Bit-pattern of every retained key's value: hit or recompute,
            // the returned value is bitwise identical either way, so probe
            // through the public API and read which keys are *hits*.
            (1..=64usize)
                .map(|c| {
                    cache
                        .latency_ms(&b, &l16().with_c_out(c).unwrap(), &d)
                        .to_bits()
                })
                .collect()
        };

        let forward = LatencyCache::new();
        forward.set_max_entries_per_shard(cap);
        for c in 1..=64usize {
            forward.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }

        let reverse = LatencyCache::new();
        reverse.set_max_entries_per_shard(cap);
        for c in (1..=64usize).rev() {
            reverse.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }

        let racing = LatencyCache::new();
        racing.set_max_entries_per_shard(cap);
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(|| {
                    for c in 1..=64usize {
                        racing.cost(&b, &l16().with_c_out(c).unwrap(), &d);
                    }
                    let _ = t;
                });
            }
        });

        assert_eq!(contents(&forward), contents(&reverse));
        assert_eq!(contents(&forward), contents(&racing));
        for s in forward.shard_stats() {
            assert!(
                s.entries <= cap,
                "shard {} over cap: {}",
                s.shard,
                s.entries
            );
        }
        assert!(forward.len() <= cap * 16);
        assert!(forward.stats().evictions > 0, "a 64-key sweep must evict");
        // Values stay bitwise correct whether a key was retained or not.
        assert_eq!(probe(&forward), probe(&reverse));
    }

    #[test]
    fn bounded_counters_conserve_lookups() {
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let cache = LatencyCache::new();
        cache.set_max_entries_per_shard(2);
        for _ in 0..3 {
            for c in 1..=40usize {
                cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups, stats.hits + stats.misses + stats.failures);
        for s in cache.shard_stats() {
            assert_eq!(s.lookups, s.hits + s.misses + s.failures);
            assert!(s.entries <= 2);
        }
    }

    #[test]
    fn shrinking_the_bound_trims_immediately() {
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let cache = LatencyCache::new();
        for c in 1..=64usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let before = cache.len();
        assert_eq!(cache.max_entries_per_shard(), 0);
        cache.set_max_entries_per_shard(1);
        assert_eq!(cache.max_entries_per_shard(), 1);
        let after = cache.len();
        assert!(after < before);
        for s in cache.shard_stats() {
            assert!(s.entries <= 1);
        }
        let evicted: u64 = cache.stats().evictions;
        assert_eq!(evicted, (before - after) as u64);
        // Unbinding again restores growth for fresh keys.
        cache.set_max_entries_per_shard(0);
        for c in 65..=80usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        assert!(cache.len() > after);
    }

    #[test]
    fn unbounded_default_never_evicts_on_insert() {
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let cache = LatencyCache::new();
        for c in 1..=128usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 128);
    }

    #[test]
    fn incremental_misses_are_bitwise_identical_to_cold_backend_cost() {
        // The tentpole invariant: the assemble-from-memo miss path must be
        // indistinguishable, bit for bit, from running the backend cold —
        // for every backend, on every device, across a channel sweep.
        use pruneperf_backends::all_backends;
        let cache = LatencyCache::new();
        for device in pruneperf_gpusim::Device::all_paper_devices() {
            for backend in all_backends() {
                for c in [128usize, 97, 92, 76, 33, 1] {
                    let layer = l16().with_c_out(c).unwrap();
                    let cold = backend.cost(&layer, &device);
                    let warm = cache.cost(backend.as_ref(), &layer, &device);
                    assert_eq!(
                        warm.0.to_bits(),
                        cold.0.to_bits(),
                        "{} on {} at c_out={c}: latency",
                        backend.name(),
                        device.name()
                    );
                    assert_eq!(
                        warm.1.to_bits(),
                        cold.1.to_bits(),
                        "{} on {} at c_out={c}: energy",
                        backend.name(),
                        device.name()
                    );
                }
            }
        }
        let engine = cache.engine_stats();
        assert_eq!(engine.engine_runs, 0, "no full cold runs on this path");
        assert_eq!(engine.chains_assembled, cache.stats().misses);
    }

    #[test]
    fn cost_batch_matches_sequential_cost_bitwise() {
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let layers: Vec<ConvLayerSpec> = (60..=90).map(|c| l16().with_c_out(c).unwrap()).collect();
        let sequential = LatencyCache::new();
        let expect: Vec<(f64, f64)> = layers.iter().map(|l| sequential.cost(&b, l, &d)).collect();
        let batched = LatencyCache::new();
        let got = batched.cost_batch(&b, &layers, &d);
        assert_eq!(got, expect);
        assert_eq!(batched.stats(), sequential.stats(), "counters identical");
        assert_eq!(batched.engine_stats(), sequential.engine_stats());
        // A second batch is all hits and assembles nothing new.
        let again = batched.cost_batch(&b, &layers, &d);
        assert_eq!(again, expect);
        assert_eq!(batched.stats().hits, layers.len() as u64);
        assert_eq!(batched.engine_stats().chains_assembled, layers.len() as u64);
    }

    #[test]
    fn engine_stats_prove_the_memo_works() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in 60..=90usize {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let engine = cache.engine_stats();
        assert_eq!(engine.chains_assembled, 31, "one assembly per miss");
        assert_eq!(engine.engine_runs, 0, "no cold simulations at all");
        assert!(
            engine.kernel_lookups >= engine.chains_assembled,
            "each chain has at least one kernel"
        );
        // The sweep shares im2col/reshape stages across channel counts, so
        // unique kernel shapes are strictly fewer than kernel queries.
        assert!(
            engine.kernel_evals < engine.kernel_lookups,
            "sweep must reuse memoized kernels: {engine:?}"
        );
        assert_eq!(
            engine.kernel_memo_hits(),
            engine.kernel_lookups - engine.kernel_evals
        );
        assert_eq!(engine.memo_entries as u64, engine.kernel_evals);
        cache.clear();
        assert_eq!(cache.engine_stats(), EngineStats::default());
    }

    #[test]
    fn try_cost_counts_cold_engine_runs() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let layer = l16();
        cache.try_cost(&b, &layer, &d).unwrap();
        let engine = cache.engine_stats();
        assert_eq!(engine.engine_runs, 1, "fallible misses stay cold");
        assert_eq!(engine.chains_assembled, 0);
        // The cached entry then serves the infallible path as a hit.
        cache.cost(&b, &layer, &d);
        assert_eq!(cache.engine_stats().engine_runs, 1);
        assert_eq!(cache.engine_stats().chains_assembled, 0);
    }

    #[test]
    fn persist_round_trips_bitwise_and_is_byte_stable() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in [128usize, 92, 76, 33] {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let snapshot = cache.persist();
        assert!(snapshot.starts_with("pruneperf-latency-cache v1 entries=4\n"));

        let restored = LatencyCache::new();
        assert_eq!(restored.reload(&snapshot).unwrap(), 4);
        assert_eq!(restored.len(), 4);
        // Restoring is not a query: stats stay clean for the resumed run.
        assert_eq!(restored.stats().lookups, 0);
        assert_eq!(restored.engine_stats(), EngineStats::default());
        // Every restored entry now serves hits with the exact same bits.
        for c in [128usize, 92, 76, 33] {
            let layer = l16().with_c_out(c).unwrap();
            let orig = cache.cost(&b, &layer, &d);
            let warm = restored.cost(&b, &layer, &d);
            assert_eq!(warm.0.to_bits(), orig.0.to_bits());
            assert_eq!(warm.1.to_bits(), orig.1.to_bits());
        }
        assert_eq!(restored.stats().hits, 4);
        assert_eq!(restored.engine_stats().engine_runs, 0);
        // Byte stability: re-persisting the restored cache is identical.
        assert_eq!(restored.persist(), snapshot);
    }

    #[test]
    fn persist_bytes_are_insertion_order_independent() {
        let d = Device::jetson_nano();
        let b = Cudnn::new();
        let counts = [96usize, 17, 128, 54, 121];
        let forward = LatencyCache::new();
        for &c in &counts {
            forward.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let backward = LatencyCache::new();
        for &c in counts.iter().rev() {
            backward.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        assert_eq!(forward.persist(), backward.persist());
    }

    #[test]
    fn reload_skips_present_keys_and_respects_the_shard_bound() {
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        for c in [128usize, 92, 76] {
            cache.cost(&b, &l16().with_c_out(c).unwrap(), &d);
        }
        let snapshot = cache.persist();
        // Reloading into the same cache is a no-op: all keys present.
        assert_eq!(cache.reload(&snapshot).unwrap(), 0);
        assert_eq!(cache.len(), 3);

        // A bounded empty cache admits via the same admit-if-smaller
        // policy as live inserts: every restored key either fits or
        // displaces a structurally larger one, so membership is capped.
        let bounded = LatencyCache::new();
        bounded.set_max_entries_per_shard(1);
        let admitted = bounded.reload(&snapshot).unwrap();
        assert!((1..=3).contains(&admitted), "admitted {admitted}");
        assert!(bounded.len() <= SHARDS);
        let evictions = bounded.stats().evictions;
        assert_eq!(admitted as u64, bounded.len() as u64 + evictions);
        // Whatever survived still serves bitwise-identical hits.
        let misses_before = bounded.stats().misses;
        for c in [128usize, 92, 76] {
            let layer = l16().with_c_out(c).unwrap();
            assert_eq!(bounded.cost(&b, &layer, &d), cache.cost(&b, &layer, &d));
        }
        assert!(bounded.stats().misses >= misses_before);
    }

    #[test]
    fn reload_rejects_bad_headers_and_corrupt_lines() {
        let cache = LatencyCache::new();
        let err = cache.reload("").unwrap_err();
        assert_eq!(err.line, 1);

        let err = cache
            .reload("some-other-format v9 entries=0\n")
            .unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));

        let err = cache
            .reload("pruneperf-latency-cache v2 entries=0\n")
            .unwrap_err();
        assert_eq!(err.line, 1, "future versions are rejected, not guessed");

        let header = "pruneperf-latency-cache v1 entries=1\n";
        for (bad, why) in [
            (
                "zz\tdev\tL\t3\t1\t1\t8\t8\t14\t14\t1\t0\t0\n",
                "fingerprint",
            ),
            ("0\tdev\tL\t3\t1\t1\t8\t8\t14\t14\t1\t0\n", "field count"),
            ("0\tdev\tL\t0\t1\t1\t8\t8\t14\t14\t1\t0\t0\n", "zero kernel"),
            (
                "0\tdev\tL\t9\t1\t0\t8\t8\t3\t3\t1\t0\t0\n",
                "kernel overflow",
            ),
            ("0\tdev\tL\t3\t1\t1\t8\t8\t14\t14\t3\t0\t0\n", "bad groups"),
            (
                "0\tdev\tL\t3\t1\t1\t8\t8\t14\t14\t1\tg\t0\n",
                "latency bits",
            ),
        ] {
            let data = format!("{header}{bad}");
            let err = cache.reload(&data).unwrap_err();
            assert_eq!(err.line, 2, "{why}: {err}");
        }
        assert!(cache.is_empty(), "failed reloads admit nothing new");
    }

    #[test]
    fn grouped_layers_survive_the_persist_round_trip() {
        let cache = LatencyCache::new();
        let d = Device::jetson_tx2();
        let b = Cudnn::new();
        let grouped = ConvLayerSpec::new_grouped("G.L0", 3, 1, 1, 32, 64, 14, 14, 4);
        let orig = cache.cost(&b, &grouped, &d);
        let restored = LatencyCache::new();
        assert_eq!(restored.reload(&cache.persist()).unwrap(), 1);
        let warm = restored.cost(&b, &grouped, &d);
        assert_eq!(warm.0.to_bits(), orig.0.to_bits());
        assert_eq!(warm.1.to_bits(), orig.1.to_bits());
        assert_eq!(restored.stats().hits, 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use pruneperf_backends::all_backends;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Satellite 4: the incremental sweep path is bitwise identical
            /// to the cold path over seeded (layer, device, c_out-range)
            /// samples, and repeat queries are stable hits.
            #[test]
            fn incremental_sweep_matches_cold_bitwise(
                layer_idx in 0usize..53,
                device_idx in 0usize..4,
                backend_idx in 0usize..4,
                lo in 1usize..120,
                span in 0usize..8,
            ) {
                let net = resnet50();
                let layer = &net.layers()[layer_idx % net.layers().len()];
                let devices = Device::all_paper_devices();
                let device = &devices[device_idx % devices.len()];
                let backends = all_backends();
                let backend = backends[backend_idx % backends.len()].as_ref();
                let cache = LatencyCache::new();
                for c in lo..=lo + span {
                    let c = c.clamp(1, layer.c_out());
                    let pruned = layer.with_c_out(c).unwrap();
                    let cold = backend.cost(&pruned, device);
                    let warm = cache.cost(backend, &pruned, device);
                    prop_assert_eq!(warm.0.to_bits(), cold.0.to_bits());
                    prop_assert_eq!(warm.1.to_bits(), cold.1.to_bits());
                    let hit = cache.cost(backend, &pruned, device);
                    prop_assert_eq!(hit, warm);
                }
                prop_assert_eq!(cache.engine_stats().engine_runs, 0);
            }
        }
    }
}

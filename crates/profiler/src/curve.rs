use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Measurement;

/// One point of a latency-vs-channels sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Output channel count of the pruned layer.
    pub channels: usize,
    /// The measurement at this channel count.
    pub measurement: Measurement,
}

/// Why a [`LatencyCurve`] could not be assembled from sweep points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// No points at all survived the sweep.
    Empty,
    /// Channel counts were not strictly increasing at the given pair.
    NonIncreasing {
        /// The earlier point's channel count.
        prev: usize,
        /// The offending next point's channel count.
        next: usize,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "a latency curve needs at least one point"),
            CurveError::NonIncreasing { prev, next } => write!(
                f,
                "curve points must have strictly increasing channel counts \
                 (got {prev} then {next})"
            ),
        }
    }
}

impl std::error::Error for CurveError {}

/// Inference latency as a function of the layer's output channel count —
/// the x/y series behind Figs 2–5, 7, 12, 14, 15 and 20.
///
/// Points are stored in strictly increasing channel order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyCurve {
    layer_label: String,
    backend: String,
    device: String,
    points: Vec<CurvePoint>,
}

impl LatencyCurve {
    /// Assembles a curve from sweep points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or channel counts are not strictly
    /// increasing — sweeps are produced programmatically, so violations are
    /// programming errors.
    pub fn new(
        layer_label: impl Into<String>,
        backend: impl Into<String>,
        device: impl Into<String>,
        points: Vec<CurvePoint>,
    ) -> Self {
        match Self::try_new(layer_label, backend, device, points) {
            Ok(curve) => curve,
            // lint: allow(panic) — new() is the documented panicking twin; fallible callers use try_new
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`LatencyCurve::new`] for callers assembling
    /// curves from inputs that may be degenerate — e.g. a fault-injected
    /// sweep where every point failed.
    ///
    /// # Errors
    ///
    /// [`CurveError::Empty`] when `points` is empty,
    /// [`CurveError::NonIncreasing`] when channel counts do not strictly
    /// increase.
    pub fn try_new(
        layer_label: impl Into<String>,
        backend: impl Into<String>,
        device: impl Into<String>,
        points: Vec<CurvePoint>,
    ) -> Result<Self, CurveError> {
        if points.is_empty() {
            return Err(CurveError::Empty);
        }
        // lint: allow(index) — windows(2) guarantees two elements
        if let Some(w) = points.windows(2).find(|w| w[0].channels >= w[1].channels) {
            return Err(CurveError::NonIncreasing {
                // lint: allow(index) — windows(2) guarantees two elements
                prev: w[0].channels,
                // lint: allow(index) — windows(2) guarantees two elements
                next: w[1].channels,
            });
        }
        Ok(LatencyCurve {
            layer_label: layer_label.into(),
            backend: backend.into(),
            device: device.into(),
            points,
        })
    }

    /// The profiled layer's label.
    pub fn layer_label(&self) -> &str {
        &self.layer_label
    }

    /// Backend used for the sweep.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Device the sweep ran on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The sweep points in increasing channel order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Median latency at an exact channel count, if profiled.
    pub fn ms_at(&self, channels: usize) -> Option<f64> {
        self.points
            .binary_search_by_key(&channels, |p| p.channels)
            .ok()
            .map(|i| self.points[i].measurement.median_ms())
    }

    /// Smallest and largest profiled channel counts.
    pub fn channel_range(&self) -> (usize, usize) {
        (
            // lint: allow(unwrap) — `new` asserts at least one point
            self.points.first().expect("non-empty").channels,
            // lint: allow(unwrap) — `new` asserts at least one point
            self.points.last().expect("non-empty").channels,
        )
    }

    /// `(channels, median_ms)` series, e.g. for plotting or printing.
    pub fn series(&self) -> Vec<(usize, f64)> {
        self.points
            .iter()
            .map(|p| (p.channels, p.measurement.median_ms()))
            .collect()
    }

    /// Renders the curve as CSV (`channels,median_ms,min_ms,max_ms`) for
    /// external plotting — the repo's stand-in for regenerating the
    /// figures' graphics.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("channels,median_ms,min_ms,max_ms\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6}\n",
                p.channels,
                p.measurement.median_ms(),
                p.measurement.min_ms(),
                p.measurement.max_ms()
            ));
        }
        out
    }

    /// Renders the curve as an ASCII scatter plot (`width` × `height`
    /// characters plus axes) — a terminal rendition of the paper's figures,
    /// where the ACL GEMM curves visibly split into two parallel
    /// staircases.
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        let width = width.max(16);
        let height = height.max(4);
        let series = self.series();
        let (c_lo, c_hi) = self.channel_range();
        let ms_max = series.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let ms_min = 0.0;
        let mut grid = vec![vec![' '; width]; height];
        for (c, ms) in &series {
            let x = if c_hi == c_lo {
                0
            } else {
                (c - c_lo) * (width - 1) / (c_hi - c_lo)
            };
            let frac = (ms - ms_min) / (ms_max - ms_min).max(1e-12);
            let y = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = '*';
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{ms_max:>8.2} |")
            } else if i == height - 1 {
                format!("{ms_min:>8.2} |")
            } else {
                format!("{:>8} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>8} +{}\n{:>10}{c_lo}{:>w$}\n",
            "",
            "-".repeat(width),
            "",
            c_hi,
            w = width.saturating_sub(c_lo.to_string().len())
        ));
        out
    }

    /// The largest adjacent-point latency ratio and the channel pair where
    /// it occurs — the “1.83× between 76 and 78 channels” style of finding.
    pub fn max_adjacent_ratio(&self) -> Option<(usize, usize, f64)> {
        self.points
            .windows(2)
            .map(|w| {
                let a = w[0].measurement.median_ms();
                let b = w[1].measurement.median_ms();
                let ratio = if a > b { a / b } else { b / a };
                (w[0].channels, w[1].channels, ratio)
            })
            .max_by(|x, y| x.2.total_cmp(&y.2))
    }
}

impl fmt::Display for LatencyCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.channel_range();
        write!(
            f,
            "{} / {} on {}: {} points over {lo}..={hi} channels",
            self.layer_label,
            self.backend,
            self.device,
            self.points.len()
        )
    }
}

/// One unmeasured channel count of a partial sweep, with the failure that
/// caused it — an explicitly marked hole rather than a silently absent
/// cell (a single lost cell would otherwise corrupt the staircase
/// analysis of Figs 2–5 without anyone noticing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveGap {
    /// The channel count that could not be measured.
    pub channels: usize,
    /// Number of attempts the retry policy spent before giving up.
    pub attempts: u32,
    /// The final error, rendered to text.
    pub error: String,
}

/// A latency sweep that may have lost points to permanent faults: the
/// surviving measurements as a [`LatencyCurve`] (absent when *every*
/// point failed) plus one [`CurveGap`] per unmeasured channel count.
///
/// Downstream analyses keep working on the survivor curve — gaps are just
/// missing channel counts, which [`LatencyCurve`] already permits — while
/// callers that need completeness check [`PartialCurve::is_complete`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialCurve {
    curve: Option<LatencyCurve>,
    gaps: Vec<CurveGap>,
}

impl PartialCurve {
    /// Assembles a partial sweep result; gaps are sorted by channel count
    /// so reports never depend on worker scheduling.
    pub fn new(curve: Option<LatencyCurve>, mut gaps: Vec<CurveGap>) -> Self {
        gaps.sort_by_key(|g| g.channels);
        PartialCurve { curve, gaps }
    }

    /// The surviving measurements, if any point succeeded.
    pub fn curve(&self) -> Option<&LatencyCurve> {
        self.curve.as_ref()
    }

    /// The unmeasured channel counts in increasing order.
    pub fn gaps(&self) -> &[CurveGap] {
        &self.gaps
    }

    /// `true` when every requested point was measured.
    pub fn is_complete(&self) -> bool {
        self.gaps.is_empty() && self.curve.is_some()
    }

    /// Measured points.
    pub fn measured(&self) -> usize {
        self.curve.as_ref().map_or(0, |c| c.points().len())
    }

    /// Fraction of requested points that were measured, in `[0, 1]`
    /// (defined as 0 for an empty sweep).
    pub fn coverage(&self) -> f64 {
        let total = self.measured() + self.gaps.len();
        if total == 0 {
            0.0
        } else {
            self.measured() as f64 / total as f64
        }
    }
}

impl fmt::Display for PartialCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.curve {
            Some(curve) => write!(
                f,
                "{} — {} gap(s), {:.1}% coverage",
                curve,
                self.gaps.len(),
                self.coverage() * 100.0
            ),
            None => write!(f, "no surviving points — {} gap(s)", self.gaps.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(c: usize, ms: f64) -> CurvePoint {
        CurvePoint {
            channels: c,
            measurement: Measurement::from_runs(vec![ms]),
        }
    }

    fn curve() -> LatencyCurve {
        LatencyCurve::new(
            "ResNet.L16",
            "ACL GEMM",
            "HiKey 970",
            vec![point(76, 20.12), point(78, 10.996), point(96, 14.0)],
        )
    }

    #[test]
    fn lookup_and_range() {
        let c = curve();
        assert_eq!(c.ms_at(78), Some(10.996));
        assert_eq!(c.ms_at(77), None);
        assert_eq!(c.channel_range(), (76, 96));
        assert_eq!(c.series().len(), 3);
    }

    #[test]
    fn max_adjacent_ratio_finds_the_fig14_jump() {
        let (a, b, r) = curve().max_adjacent_ratio().unwrap();
        assert_eq!((a, b), (76, 78));
        assert!((r - 1.8297).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = LatencyCurve::new("l", "b", "d", vec![point(10, 1.0), point(5, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_rejected() {
        let _ = LatencyCurve::new("l", "b", "d", vec![]);
    }

    #[test]
    fn display_summarizes() {
        assert!(curve().to_string().contains("3 points over 76..=96"));
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            LatencyCurve::try_new("l", "b", "d", vec![]).unwrap_err(),
            CurveError::Empty
        );
        assert_eq!(
            LatencyCurve::try_new("l", "b", "d", vec![point(10, 1.0), point(10, 1.0)]).unwrap_err(),
            CurveError::NonIncreasing { prev: 10, next: 10 }
        );
        assert!(LatencyCurve::try_new("l", "b", "d", vec![point(1, 1.0)]).is_ok());
    }

    #[test]
    fn partial_curve_sorts_gaps_and_reports_coverage() {
        let gap = |c: usize| CurveGap {
            channels: c,
            attempts: 4,
            error: "injected permanent fault".into(),
        };
        let partial = PartialCurve::new(Some(curve()), vec![gap(90), gap(77)]);
        assert_eq!(
            partial
                .gaps()
                .iter()
                .map(|g| g.channels)
                .collect::<Vec<_>>(),
            [77, 90]
        );
        assert!(!partial.is_complete());
        assert_eq!(partial.measured(), 3);
        assert!((partial.coverage() - 0.6).abs() < 1e-12);
        assert!(partial.to_string().contains("2 gap(s)"), "{partial}");

        let complete = PartialCurve::new(Some(curve()), vec![]);
        assert!(complete.is_complete());
        assert!((complete.coverage() - 1.0).abs() < 1e-12);

        let dead = PartialCurve::new(None, vec![gap(1)]);
        assert!(!dead.is_complete());
        assert_eq!(dead.measured(), 0);
        assert!((dead.coverage() - 0.0).abs() < 1e-12);
        assert!(dead.to_string().contains("no surviving points"), "{dead}");

        let empty = PartialCurve::new(None, vec![]);
        assert!((empty.coverage() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_plot_spans_the_axes() {
        let series: Vec<CurvePoint> = (1..=64usize)
            .map(|c| CurvePoint {
                channels: c,
                measurement: Measurement::from_runs(vec![if c <= 32 { 5.0 } else { 9.0 }]),
            })
            .collect();
        let curve = LatencyCurve::new("l", "b", "d", series);
        let plot = curve.ascii_plot(40, 8);
        assert!(plot.contains('*'));
        assert!(plot.contains("9.00"), "{plot}");
        assert!(plot.contains("0.00"), "{plot}");
        // Low step occupies a lower row than the high step.
        let lines: Vec<&str> = plot.lines().collect();
        let top_stars = lines[0].matches('*').count();
        let has_lower_stars = lines[1..].iter().any(|l| l.contains('*'));
        assert!(top_stars > 0 && has_lower_stars, "{plot}");
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let csv = curve().to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "channels,median_ms,min_ms,max_ms");
        assert!(lines[1].starts_with("76,20.12"));
    }
}

//! Whole-network execution: every conv layer of a network dispatched in
//! sequence, with per-layer latency/energy breakdowns and a sustained-load
//! thermal model.
//!
//! The paper measures layers in isolation; deployment runs them back to
//! back, where two additional effects appear: per-layer costs *sum* (so a
//! single pathological layer drags the whole network), and sustained load
//! heats the SoC until the governor throttles the GPU clock — a familiar
//! phenomenon on the passively-cooled HiKey/Odroid/Nano boards the paper
//! uses with “default OS” settings (§III-D).

use std::sync::Arc;

use pruneperf_backends::ConvBackend;
use pruneperf_gpusim::{render_trace, ChainTrace, ChromeEvent, Device, Engine};
use pruneperf_models::Network;
use serde::{Deserialize, Serialize};

use crate::faults::{with_retry, RetryPolicy};
use crate::stats::Stats;
use crate::LatencyCache;

/// Stats site label for [`NetworkRunner::try_run`] retries.
const SITE_TRY_RUN: &str = "runner.try_run";

/// Per-layer slice of a network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer label.
    pub label: String,
    /// Latency, ms.
    pub ms: f64,
    /// Energy, mJ.
    pub mj: f64,
}

/// One end-to-end network execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    network: String,
    device: String,
    backend: String,
    layers: Vec<LayerCost>,
}

impl NetworkReport {
    /// Per-layer costs in network order.
    pub fn layers(&self) -> &[LayerCost] {
        &self.layers
    }

    /// Total latency over every recorded entry, ms. Entries appear in
    /// network order and a repeated layer counts each time it appears.
    pub fn total_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.ms).sum()
    }

    /// Total energy, mJ.
    pub fn total_mj(&self) -> f64 {
        self.layers.iter().map(|l| l.mj).sum()
    }

    /// Average power over the run, milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        let total_ms = self.total_ms();
        if total_ms <= 0.0 {
            return 0.0;
        }
        // mJ / ms = W; × 1000 -> mW.
        self.total_mj() / total_ms * 1000.0
    }

    /// Renders per-layer costs as CSV (`layer,ms,mj`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("layer,ms,mj\n");
        for l in &self.layers {
            out.push_str(&format!("{},{:.6},{:.6}\n", l.label, l.ms, l.mj));
        }
        out
    }

    /// The most expensive layer by latency.
    pub fn slowest_layer(&self) -> Option<&LayerCost> {
        self.layers.iter().max_by(|a, b| a.ms.total_cmp(&b.ms))
    }
}

/// Runs whole networks on one device.
///
/// ```
/// use pruneperf_backends::AclGemm;
/// use pruneperf_gpusim::Device;
/// use pruneperf_models::alexnet;
/// use pruneperf_profiler::NetworkRunner;
///
/// let runner = NetworkRunner::new(&Device::mali_g72_hikey970());
/// let report = runner.run(&AclGemm::new(), &alexnet());
/// assert_eq!(report.layers().len(), 5);
/// assert!(report.total_ms() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkRunner {
    device: Device,
    cache: Option<Arc<LatencyCache>>,
    retry: RetryPolicy,
    stats: Option<Arc<Stats>>,
}

impl NetworkRunner {
    /// Creates a runner for a device.
    pub fn new(device: &Device) -> Self {
        NetworkRunner {
            device: device.clone(),
            cache: None,
            retry: RetryPolicy::bounded(),
            stats: None,
        }
    }

    /// Memoizes through `cache` instead of the process-wide
    /// [`LatencyCache::global`] — fault-injection runs use this so every
    /// run starts equally cold and faulty entries never leak out.
    pub fn with_cache(mut self, cache: Arc<LatencyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the retry policy used by [`NetworkRunner::try_run`].
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Records observability counters into `stats` instead of the
    /// process-wide [`Stats::global`] registry.
    pub fn with_stats(mut self, stats: Arc<Stats>) -> Self {
        self.stats = Some(stats);
        self
    }

    fn cache(&self) -> &LatencyCache {
        match &self.cache {
            Some(c) => c,
            None => LatencyCache::global(),
        }
    }

    fn stats(&self) -> &Stats {
        match &self.stats {
            Some(s) => s,
            None => Stats::global(),
        }
    }

    /// Executes every unique conv layer of `network` once (deterministic,
    /// noise-free — aggregate statistics belong to `LayerProfiler`).
    ///
    /// Per-layer costs come from the process-wide [`LatencyCache`] through
    /// its batched entry point — one backend fingerprint and one engine
    /// for the whole network — so repeated whole-network runs (e.g.
    /// thermal duty-cycle studies) simulate each layer at most once, and
    /// networks with repeated kernel shapes (ResNet's identical residual
    /// blocks) share memoized per-kernel engine costs across layers.
    pub fn run(&self, backend: &dyn ConvBackend, network: &Network) -> NetworkReport {
        let costs = self
            .cache()
            .cost_batch(backend, network.layers(), &self.device);
        let layers = network
            .layers()
            .iter()
            .zip(costs)
            .map(|(l, (ms, mj))| LayerCost {
                label: l.label().to_string(),
                ms,
                mj,
            })
            .collect();
        NetworkReport {
            network: network.name().to_string(),
            device: self.device.name().to_string(),
            backend: backend.name().to_string(),
            layers,
        }
    }

    /// Fault-tolerant twin of [`NetworkRunner::run`]: each layer goes
    /// through the fallible cost path with transient retries, and layers
    /// that still fail become explicit [`FailedLayer`] entries instead of
    /// taking the run down.
    ///
    /// The surviving layers keep their network order, so the partial
    /// report's totals are exact sums over what *was* measurable — a
    /// lower bound a caller must check via
    /// [`PartialNetworkReport::is_complete`] before treating it as the
    /// network's cost.
    pub fn try_run(&self, backend: &dyn ConvBackend, network: &Network) -> PartialNetworkReport {
        let cache = self.cache();
        let mut layers = Vec::new();
        let mut failed = Vec::new();
        for l in network.layers() {
            let (result, outcome) =
                with_retry(&self.retry, || cache.try_cost(backend, l, &self.device));
            self.stats().record_site(
                SITE_TRY_RUN,
                outcome.attempts as u64,
                outcome.backoff_ms,
                result.is_ok(),
            );
            match result {
                Ok((ms, mj)) => layers.push(LayerCost {
                    label: l.label().to_string(),
                    ms,
                    mj,
                }),
                Err(e) => failed.push(FailedLayer {
                    label: l.label().to_string(),
                    attempts: outcome.attempts,
                    error: e.to_string(),
                }),
            }
        }
        PartialNetworkReport {
            report: NetworkReport {
                network: network.name().to_string(),
                device: self.device.name().to_string(),
                backend: backend.name().to_string(),
                layers,
            },
            failed,
        }
    }

    /// Executes every layer of `network` with span-level interception and
    /// collects the per-core schedules onto one virtual timeline.
    ///
    /// Layers run back to back: each layer's [`ChainTrace`] is placed at
    /// the cumulative offset of everything before it, in network order.
    /// The result is a pure function of (backend, network, device) — the
    /// Chrome export is byte-identical across runs and `--jobs` counts.
    pub fn trace_run(&self, backend: &dyn ConvBackend, network: &Network) -> RunTrace {
        let engine = Engine::new(&self.device);
        let mut offset_us = 0.0f64;
        let mut layers = Vec::with_capacity(network.layers().len());
        for l in network.layers() {
            let plan = backend.plan(l, &self.device);
            let trace = engine.trace_chain(plan.chain());
            let total = trace.total_us();
            layers.push(LayerTrace {
                label: l.label().to_string(),
                offset_us,
                trace,
            });
            offset_us += total;
        }
        RunTrace {
            network: network.name().to_string(),
            device: self.device.name().to_string(),
            backend: backend.name().to_string(),
            cores: self.device.cores(),
            layers,
            total_us: offset_us,
        }
    }
}

/// One layer's slice of a [`RunTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Layer label.
    pub label: String,
    /// Where the layer starts on the run's virtual timeline, µs.
    pub offset_us: f64,
    /// The layer's per-core schedule (times relative to the layer start).
    pub trace: ChainTrace,
}

/// Span-level trace of a whole-network run, exportable as Chrome trace
/// JSON for `chrome://tracing` / Perfetto.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    network: String,
    device: String,
    backend: String,
    cores: usize,
    layers: Vec<LayerTrace>,
    total_us: f64,
}

impl RunTrace {
    /// Per-layer traces in network order.
    pub fn layers(&self) -> &[LayerTrace] {
        &self.layers
    }

    /// End-to-end virtual duration, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// The flattened Chrome trace events: one lane per simulated core
    /// (kernel spans) plus a `layers` lane with one enclosing event per
    /// network layer.
    pub fn events(&self) -> Vec<ChromeEvent> {
        const PID: u64 = 0;
        let layer_lane = self.cores as u64;
        let mut events = vec![ChromeEvent::process_name(
            PID,
            &format!(
                "pruneperf run {} on {} [{}]",
                self.network, self.device, self.backend
            ),
        )];
        for core in 0..self.cores {
            events.push(ChromeEvent::thread_name(
                PID,
                core as u64,
                &format!("core {core}"),
            ));
        }
        events.push(ChromeEvent::thread_name(PID, layer_lane, "layers"));
        for layer in &self.layers {
            events.push(
                ChromeEvent::complete(
                    &layer.label,
                    "layer",
                    layer.offset_us,
                    layer.trace.total_us(),
                    PID,
                    layer_lane,
                )
                .arg_num("spans", layer.trace.spans().len())
                .arg_str("device", self.device.as_str()),
            );
            events.extend(layer.trace.chrome_events(PID, layer.offset_us));
        }
        events
    }

    /// Renders [`RunTrace::events`] as a Chrome trace JSON document.
    pub fn to_chrome_json(&self) -> String {
        render_trace(&self.events())
    }
}

/// A network layer that could not be costed, with the retry effort spent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedLayer {
    /// Layer label.
    pub label: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The final error, rendered to text.
    pub error: String,
}

/// A whole-network run that may have lost layers to permanent faults:
/// the surviving per-layer costs as a [`NetworkReport`] plus one
/// [`FailedLayer`] per layer that could not be measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialNetworkReport {
    report: NetworkReport,
    failed: Vec<FailedLayer>,
}

impl PartialNetworkReport {
    /// The surviving layers' report (empty layer list if all failed).
    pub fn report(&self) -> &NetworkReport {
        &self.report
    }

    /// The layers that could not be costed, in network order.
    pub fn failed(&self) -> &[FailedLayer] {
        &self.failed
    }

    /// `true` when every layer was measured and totals are trustworthy.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// A first-order thermal/DVFS governor for duty-cycled inference.
///
/// Models the deployment pattern the paper's boards actually serve: one
/// inference per fixed frame interval (a camera pipeline). Each frame
/// deposits the network's energy as heat; the SoC sheds a fraction between
/// frames. When accumulated heat crosses the budget, the governor steps
/// the GPU clock down (latency × `throttle_factor`) until it cools below
/// the hysteresis threshold — like `simple_ondemand` on a passively cooled
/// board. Because heat tracks **energy per frame**, a pruned network does
/// not just run faster, it can stay out of throttling entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalGovernor {
    /// Accumulated-heat budget before throttling engages, millijoules.
    pub heat_budget_mj: f64,
    /// Fraction of heat retained across one frame interval.
    pub retention: f64,
    /// Latency multiplier while throttled.
    pub throttle_factor: f64,
    /// Unthrottle when heat falls below `hysteresis · heat_budget_mj`.
    pub hysteresis: f64,
}

impl ThermalGovernor {
    /// A governor profile typical of passively cooled SoC boards running
    /// one ImageNet-class inference per frame.
    pub fn passive_soc() -> Self {
        ThermalGovernor {
            heat_budget_mj: 1600.0,
            retention: 0.85,
            throttle_factor: 1.45,
            hysteresis: 0.9,
        }
    }

    /// Simulates `iterations` frames of a measured network and returns each
    /// frame's inference latency in ms. Deterministic.
    pub fn sustained_latencies(&self, single: &NetworkReport, iterations: usize) -> Vec<f64> {
        let base_ms = single.total_ms();
        let frame_mj = single.total_mj();
        let mut heat = 0.0f64;
        let mut throttled = false;
        let mut out = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            if heat > self.heat_budget_mj {
                throttled = true;
            } else if heat < self.heat_budget_mj * self.hysteresis {
                throttled = false;
            }
            out.push(if throttled {
                base_ms * self.throttle_factor
            } else {
                base_ms
            });
            // The frame deposits its energy; the interval sheds a fraction.
            heat = heat * self.retention + frame_mj;
        }
        out
    }

    /// Steady-state heat level of a network under this duty cycle, mJ.
    pub fn steady_state_heat_mj(&self, single: &NetworkReport) -> f64 {
        single.total_mj() / (1.0 - self.retention)
    }

    /// `true` when the network's steady-state heat exceeds the budget.
    pub fn will_throttle(&self, single: &NetworkReport) -> bool {
        self.steady_state_heat_mj(single) > self.heat_budget_mj
    }

    /// The worst sustained latency over a long run, ms.
    pub fn steady_state_ms(&self, single: &NetworkReport) -> f64 {
        self.sustained_latencies(single, 200)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclGemm, Cudnn};
    use pruneperf_models::{alexnet, resnet50};

    #[test]
    fn report_totals_are_sums() {
        let d = Device::mali_g72_hikey970();
        let r = NetworkRunner::new(&d).run(&AclGemm::new(), &alexnet());
        assert_eq!(r.layers().len(), 5);
        let sum: f64 = r.layers().iter().map(|l| l.ms).sum();
        assert!((r.total_ms() - sum).abs() < 1e-12);
        assert!(r.total_mj() > 0.0);
        assert!(r.average_power_mw() > 0.0);
    }

    #[test]
    fn csv_lists_every_layer() {
        let d = Device::mali_g72_hikey970();
        let r = NetworkRunner::new(&d).run(&AclGemm::new(), &alexnet());
        let csv = r.to_csv();
        assert_eq!(csv.trim_end().lines().count(), 6); // header + 5 layers
        assert!(csv.starts_with("layer,ms,mj\n"));
        assert!(csv.contains("AlexNet.L6,"));
    }

    #[test]
    fn slowest_layer_is_identified() {
        let d = Device::jetson_tx2();
        let r = NetworkRunner::new(&d).run(&Cudnn::new(), &resnet50());
        let slowest = r.slowest_layer().expect("non-empty");
        for l in r.layers() {
            assert!(l.ms <= slowest.ms);
        }
    }

    #[test]
    fn governor_throttles_under_sustained_load() {
        let d = Device::mali_g72_hikey970();
        let r = NetworkRunner::new(&d).run(&AclGemm::new(), &resnet50());
        // Budget below the steady-state heat: throttling must engage.
        let gov = ThermalGovernor {
            heat_budget_mj: r.total_mj() * 3.0,
            retention: 0.85,
            throttle_factor: 1.4,
            hysteresis: 0.9,
        };
        assert!(gov.will_throttle(&r));
        let lat = gov.sustained_latencies(&r, 60);
        assert!((lat[0] - r.total_ms()).abs() < 1e-9, "first frame is cold");
        let worst = gov.steady_state_ms(&r);
        assert!(worst > r.total_ms() * 1.3, "steady state should throttle");
    }

    #[test]
    fn high_budget_never_throttles() {
        let d = Device::jetson_tx2();
        let r = NetworkRunner::new(&d).run(&Cudnn::new(), &alexnet());
        let gov = ThermalGovernor {
            heat_budget_mj: r.total_mj() * 100.0,
            retention: 0.9,
            throttle_factor: 1.5,
            hysteresis: 0.9,
        };
        assert!(!gov.will_throttle(&r));
        for ms in gov.sustained_latencies(&r, 40) {
            assert!((ms - r.total_ms()).abs() < 1e-9);
        }
    }

    /// The headline of the extension: a budget between the two networks'
    /// steady heats lets the pruned network escape throttling entirely.
    #[test]
    fn pruning_can_avoid_throttling_entirely() {
        let d = Device::mali_g72_hikey970();
        let runner = NetworkRunner::new(&d);
        let backend = AclGemm::new();
        let full = runner.run(&backend, &resnet50());
        let pruned = runner.run(&backend, &resnet50().pruned_by(64));
        let gov = ThermalGovernor {
            heat_budget_mj: (gov_mid(&full, &pruned, 0.85)),
            retention: 0.85,
            throttle_factor: 1.45,
            hysteresis: 0.9,
        };
        assert!(gov.will_throttle(&full));
        assert!(!gov.will_throttle(&pruned));
        assert!(gov.steady_state_ms(&full) > full.total_ms() * 1.3);
        assert!((gov.steady_state_ms(&pruned) - pruned.total_ms()).abs() < 1e-9);
    }

    fn gov_mid(a: &NetworkReport, b: &NetworkReport, retention: f64) -> f64 {
        (a.total_mj() + b.total_mj()) / 2.0 / (1.0 - retention)
    }

    #[test]
    fn try_run_matches_run_without_faults() {
        let d = Device::mali_g72_hikey970();
        let runner = NetworkRunner::new(&d);
        let partial = runner.try_run(&AclGemm::new(), &alexnet());
        assert!(partial.is_complete());
        assert!(partial.failed().is_empty());
        assert_eq!(partial.report(), &runner.run(&AclGemm::new(), &alexnet()));
    }

    #[test]
    fn try_run_degrades_to_a_partial_report_under_permanent_faults() {
        use crate::faults::{FaultPlan, FaultyBackend};
        use std::sync::Arc;

        let d = Device::mali_g72_hikey970();
        let runner = NetworkRunner::new(&d).with_cache(Arc::new(LatencyCache::new()));
        let backend =
            FaultyBackend::new(AclGemm::new(), FaultPlan::new(6).with_permanent_rate(0.3));
        let partial = runner.try_run(&backend, &resnet50());
        assert!(!partial.is_complete(), "seed 6 @ 0.3 must fail some layer");
        assert_eq!(
            partial.report().layers().len() + partial.failed().len(),
            resnet50().len()
        );
        for f in partial.failed() {
            assert_eq!(f.attempts, 1, "permanent faults must not retry");
            assert!(f.error.contains("permanent"), "{f:?}");
        }
        // Survivors carry the clean backend's exact costs.
        let clean = NetworkRunner::new(&d).run(&AclGemm::new(), &resnet50());
        for layer in partial.report().layers() {
            assert!(clean.layers().contains(layer), "{}", layer.label);
        }
    }

    #[test]
    fn trace_run_covers_every_layer_back_to_back() {
        let d = Device::mali_g72_hikey970();
        let runner = NetworkRunner::new(&d);
        let trace = runner.trace_run(&AclGemm::new(), &alexnet());
        assert_eq!(trace.layers().len(), 5);
        // Layers tile the timeline: each starts where the previous ended.
        let mut expected_offset = 0.0f64;
        for layer in trace.layers() {
            assert!(
                (layer.offset_us - expected_offset).abs() < 1e-9,
                "{layer:?}"
            );
            expected_offset += layer.trace.total_us();
        }
        assert!((trace.total_us() - expected_offset).abs() < 1e-9);
        // The run report and the trace agree on per-layer time.
        let report = runner.run(&AclGemm::new(), &alexnet());
        let total_ms: f64 = report.total_ms();
        assert!((trace.total_us() / 1000.0 - total_ms).abs() / total_ms < 1e-9);
    }

    #[test]
    fn chrome_export_is_deterministic_and_layer_complete() {
        let d = Device::jetson_tx2();
        let runner = NetworkRunner::new(&d);
        let a = runner.trace_run(&Cudnn::new(), &alexnet()).to_chrome_json();
        let b = runner.trace_run(&Cudnn::new(), &alexnet()).to_chrome_json();
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        for l in alexnet().layers() {
            assert!(a.contains(l.label()), "missing {}", l.label());
        }
        assert!(a.contains("\"layers\""));
    }

    #[test]
    fn run_assembles_incrementally_and_shares_kernels_across_layers() {
        let d = Device::mali_g72_hikey970();
        let cache = Arc::new(LatencyCache::new());
        let runner = NetworkRunner::new(&d).with_cache(Arc::clone(&cache));
        let report = runner.run(&AclGemm::new(), &resnet50());
        let engine = cache.engine_stats();
        assert_eq!(engine.engine_runs, 0, "no cold simulations");
        assert_eq!(engine.chains_assembled, report.layers().len() as u64);
        // ResNet repeats residual blocks, so distinct layers still share
        // memoized kernel shapes: strictly fewer evals than queries.
        assert!(engine.kernel_evals < engine.kernel_lookups, "{engine:?}");
        // A second run is pure cache hits.
        let again = runner.run(&AclGemm::new(), &resnet50());
        assert_eq!(again, report);
        assert_eq!(
            cache.engine_stats().chains_assembled,
            engine.chains_assembled
        );
    }

    #[test]
    fn pruned_network_runs_cooler() {
        let d = Device::mali_g72_hikey970();
        let runner = NetworkRunner::new(&d);
        let backend = AclGemm::new();
        let full = runner.run(&backend, &resnet50());
        let pruned = runner.run(&backend, &resnet50().pruned_by(64));
        assert!(pruned.total_mj() < full.total_mj());
    }
}

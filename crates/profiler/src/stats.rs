//! A process-wide observability registry for the measurement stack.
//!
//! The paper's evidence is observational — job counts, dispatch counters,
//! per-kernel timelines — yet until PR 5 the harness itself was opaque:
//! cache effectiveness, retry/fault churn and sweep throughput were
//! invisible. [`Stats`] collects those signals with relaxed atomics and a
//! pair of coarse mutexes (the "lock-free-ish" compromise: counters on hot
//! paths are atomic increments; site and worker breakdowns, which change a
//! few times per run, sit behind locks).
//!
//! The cardinal rule is inherited from the rest of the repo: a
//! [`StatsSnapshot`] must be **byte-identical at any `--jobs` count**.
//! Everything in the snapshot is therefore a pure function of the work
//! performed — totals, per-shard cache counters (keys shard by digest, not
//! by thread) and per-site retry counts. The one inherently
//! schedule-dependent signal, how many items each worker claimed, is
//! deliberately *excluded* from snapshots and exposed only through the
//! diagnostic [`Stats::worker_items`] accessor.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::cache::{CacheShardStats, LatencyCache};
use crate::incremental::EngineStats;

/// Retry/fault counters for one instrumented call site (e.g.
/// `"profiler.try_measure"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Logical operations attempted at the site (one per caller-visible
    /// call, however many retries it took).
    pub operations: u64,
    /// Backend attempts, summed over operations (≥ `operations`).
    pub attempts: u64,
    /// Extra attempts beyond the first: `attempts - operations`.
    pub retries: u64,
    /// Operations that ultimately succeeded.
    pub successes: u64,
    /// Operations that exhausted their retry budget or hit a permanent
    /// fault.
    pub failures: u64,
    /// Virtual backoff accounted across all retries, integer nanoseconds.
    ///
    /// Stored as an integer so accumulation is associative — f64 sums
    /// depend on addition order, which depends on thread schedule.
    pub backoff_ns: u64,
}

impl SiteCounters {
    /// Virtual backoff in milliseconds (the unit retry policies speak).
    pub fn backoff_ms(&self) -> f64 {
        self.backoff_ns as f64 / 1e6
    }
}

/// The observability registry: cache, sweep and retry counters.
///
/// Most callers use the process-wide [`Stats::global`] registry, which
/// every profiler, runner and sweep feeds by default; standalone instances
/// exist for tests that need exact counts in isolation (attach one with
/// [`crate::LayerProfiler::with_stats`] /
/// [`crate::NetworkRunner::with_stats`]).
#[derive(Debug, Default)]
pub struct Stats {
    sweep_items: AtomicU64,
    sweep_panics: AtomicU64,
    worker_items: Mutex<BTreeMap<usize, u64>>,
    sites: Mutex<BTreeMap<String, SiteCounters>>,
}

impl Stats {
    /// An empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// The process-wide registry shared by every profiler and runner.
    pub fn global() -> &'static Stats {
        static GLOBAL: OnceLock<Stats> = OnceLock::new();
        GLOBAL.get_or_init(Stats::new)
    }

    /// Records one worker's contribution to a sweep: `items` claimed (of
    /// which `panics` unwound). Workers tally locally and flush once, so
    /// the hot path stays two atomic adds plus one short-lived lock per
    /// worker per sweep.
    pub fn record_sweep(&self, worker: usize, items: u64, panics: u64) {
        if items == 0 && panics == 0 {
            return;
        }
        self.sweep_items.fetch_add(items, Ordering::Relaxed);
        self.sweep_panics.fetch_add(panics, Ordering::Relaxed);
        let mut workers = self
            .worker_items
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *workers.entry(worker).or_insert(0) += items;
    }

    /// Records one retried operation at `site`: how many attempts it took,
    /// the virtual backoff it accounted, and whether it ultimately
    /// succeeded.
    pub fn record_site(&self, site: &str, attempts: u64, backoff_ms: f64, success: bool) {
        let mut sites = self.sites.lock().unwrap_or_else(PoisonError::into_inner);
        let c = sites.entry(site.to_string()).or_default();
        c.operations += 1;
        c.attempts += attempts;
        c.retries += attempts.saturating_sub(1);
        if success {
            c.successes += 1;
        } else {
            c.failures += 1;
        }
        // Policies speak integral milliseconds; round once at record time
        // so accumulation stays associative.
        c.backoff_ns += (backoff_ms * 1e6).round() as u64;
    }

    /// Total items claimed across all sweeps.
    pub fn sweep_items(&self) -> u64 {
        self.sweep_items.load(Ordering::Relaxed)
    }

    /// Total contained panics across all sweeps.
    pub fn sweep_panics(&self) -> u64 {
        self.sweep_panics.load(Ordering::Relaxed)
    }

    /// Per-worker claimed-item counts, in worker order.
    ///
    /// **Schedule-dependent**: how items distribute over workers varies
    /// run to run, which is exactly why this is a diagnostic accessor and
    /// never part of a [`StatsSnapshot`]. The *sum* always equals
    /// [`Stats::sweep_items`].
    pub fn worker_items(&self) -> Vec<(usize, u64)> {
        self.worker_items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&w, &n)| (w, n))
            .collect()
    }

    /// Per-site retry counters, sorted by site name.
    pub fn sites(&self) -> Vec<(String, SiteCounters)> {
        self.sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Zeroes every counter (tests and workload switches).
    pub fn reset(&self) {
        self.sweep_items.store(0, Ordering::Relaxed);
        self.sweep_panics.store(0, Ordering::Relaxed);
        self.worker_items
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.sites
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// A deterministic snapshot of this registry without cache counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            cache: Vec::new(),
            engine: EngineStats::default(),
            sweep_items: self.sweep_items(),
            sweep_panics: self.sweep_panics(),
            sites: self.sites(),
        }
    }

    /// A deterministic snapshot including `cache`'s per-shard counters and
    /// engine-activity counters (full runs avoided by the incremental
    /// simulation path).
    pub fn snapshot_with_cache(&self, cache: &LatencyCache) -> StatsSnapshot {
        let mut snap = self.snapshot();
        snap.cache = cache.shard_stats();
        snap.engine = cache.engine_stats();
        snap
    }
}

/// A point-in-time copy of a [`Stats`] registry, byte-identical at any
/// `--jobs` count for the same work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Per-shard cache counters (empty when no cache was attached).
    pub cache: Vec<CacheShardStats>,
    /// Engine-activity counters (all zero when no cache was attached).
    pub engine: EngineStats,
    /// Total sweep items claimed.
    pub sweep_items: u64,
    /// Total contained sweep panics.
    pub sweep_panics: u64,
    /// Per-site retry counters, sorted by site name.
    pub sites: Vec<(String, SiteCounters)>,
}

impl StatsSnapshot {
    /// Items that completed without panicking.
    pub fn sweep_successes(&self) -> u64 {
        self.sweep_items - self.sweep_panics
    }

    /// Renders the snapshot as JSON with a fixed field order and fixed
    /// number formatting, so equal snapshots render byte-identically.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n");
        out.push_str("  \"cache\": {\n");
        let totals = self
            .cache
            .iter()
            .fold(CacheShardStats::default(), |mut acc, s| {
                acc.lookups += s.lookups;
                acc.hits += s.hits;
                acc.misses += s.misses;
                acc.failures += s.failures;
                acc.evictions += s.evictions;
                acc.entries += s.entries;
                acc
            });
        let _ = writeln!(
            out,
            "    \"totals\": {{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \"failures\": {}, \"evictions\": {}, \"entries\": {}}},",
            totals.lookups, totals.hits, totals.misses, totals.failures, totals.evictions, totals.entries
        );
        out.push_str("    \"shards\": [\n");
        for (i, s) in self.cache.iter().enumerate() {
            let _ = writeln!(
                out,
                "      {{\"shard\": {}, \"lookups\": {}, \"hits\": {}, \"misses\": {}, \"failures\": {}, \"evictions\": {}, \"entries\": {}}}{}",
                s.shard,
                s.lookups,
                s.hits,
                s.misses,
                s.failures,
                s.evictions,
                s.entries,
                if i + 1 < self.cache.len() { "," } else { "" }
            );
        }
        out.push_str("    ]\n  },\n");
        let _ = writeln!(
            out,
            "  \"engine\": {{\"chains_assembled\": {}, \"engine_runs\": {}, \"kernel_lookups\": {}, \"kernel_memo_hits\": {}, \"kernel_evals\": {}, \"memo_entries\": {}}},",
            self.engine.chains_assembled,
            self.engine.engine_runs,
            self.engine.kernel_lookups,
            self.engine.kernel_memo_hits(),
            self.engine.kernel_evals,
            self.engine.memo_entries
        );
        let _ = writeln!(
            out,
            "  \"sweep\": {{\"items\": {}, \"successes\": {}, \"panics\": {}}},",
            self.sweep_items,
            self.sweep_successes(),
            self.sweep_panics
        );
        out.push_str("  \"sites\": [\n");
        for (i, (site, c)) in self.sites.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"site\": \"{}\", \"operations\": {}, \"attempts\": {}, \"retries\": {}, \"successes\": {}, \"failures\": {}, \"backoff_ms\": {}}}{}",
                site,
                c.operations,
                c.attempts,
                c.retries,
                c.successes,
                c.failures,
                c.backoff_ms(),
                if i + 1 < self.sites.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_totals_accumulate_and_workers_sum_to_items() {
        let stats = Stats::new();
        stats.record_sweep(0, 10, 1);
        stats.record_sweep(1, 22, 0);
        stats.record_sweep(0, 5, 2);
        assert_eq!(stats.sweep_items(), 37);
        assert_eq!(stats.sweep_panics(), 3);
        let workers = stats.worker_items();
        assert_eq!(workers, vec![(0, 15), (1, 22)]);
        assert_eq!(
            workers.iter().map(|(_, n)| n).sum::<u64>(),
            stats.sweep_items()
        );
    }

    #[test]
    fn zero_contribution_records_nothing() {
        let stats = Stats::new();
        stats.record_sweep(3, 0, 0);
        assert_eq!(stats.sweep_items(), 0);
        assert!(stats.worker_items().is_empty());
    }

    #[test]
    fn site_counters_conserve_attempts_and_outcomes() {
        let stats = Stats::new();
        stats.record_site("profiler.try_measure", 1, 0.0, true);
        stats.record_site("profiler.try_measure", 3, 3.0, true);
        stats.record_site("profiler.try_measure", 4, 7.0, false);
        let sites = stats.sites();
        assert_eq!(sites.len(), 1);
        let c = sites[0].1;
        assert_eq!(c.operations, 3);
        assert_eq!(c.attempts, 8);
        assert_eq!(c.retries, 5);
        assert_eq!(c.successes + c.failures, c.operations);
        assert_eq!(c.backoff_ns, 10_000_000);
        assert!((c.backoff_ms() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_stable_and_excludes_worker_breakdown() {
        let stats = Stats::new();
        stats.record_sweep(0, 4, 1);
        stats.record_site("runner.try_run", 2, 1.0, true);
        let a = stats.snapshot().render_json();
        let b = stats.snapshot().render_json();
        assert_eq!(a, b);
        assert!(a.contains("\"version\": 2"));
        assert!(a.contains("\"sweep\": {\"items\": 4, \"successes\": 3, \"panics\": 1}"));
        assert!(a.contains("\"site\": \"runner.try_run\""));
        assert!(a.contains("\"engine\": {\"chains_assembled\": 0"));
        assert!(!a.contains("worker"), "worker split is schedule-dependent");
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = Stats::new();
        stats.record_sweep(0, 4, 1);
        stats.record_site("x", 2, 1.0, false);
        stats.reset();
        assert_eq!(stats.sweep_items(), 0);
        assert!(stats.sites().is_empty());
        assert!(stats.worker_items().is_empty());
    }

    #[test]
    fn snapshot_with_cache_embeds_shard_counters() {
        let stats = Stats::new();
        let cache = LatencyCache::new();
        let snap = stats.snapshot_with_cache(&cache);
        assert_eq!(snap.cache.len(), 16);
        let json = snap.render_json();
        assert!(json.contains("\"totals\": {\"lookups\": 0"));
    }

    #[test]
    fn snapshot_with_cache_embeds_engine_counters() {
        use pruneperf_backends::AclGemm;
        use pruneperf_gpusim::Device;
        use pruneperf_models::resnet50;

        let stats = Stats::new();
        let cache = LatencyCache::new();
        let d = Device::mali_g72_hikey970();
        let b = AclGemm::new();
        let layer = resnet50().layer("ResNet.L16").unwrap().clone();
        for c in 60..=70usize {
            cache.cost(&b, &layer.with_c_out(c).unwrap(), &d);
        }
        let snap = stats.snapshot_with_cache(&cache);
        assert_eq!(snap.engine, cache.engine_stats());
        assert_eq!(snap.engine.chains_assembled, 11);
        assert_eq!(snap.engine.engine_runs, 0);
        let json = snap.render_json();
        assert!(json.contains("\"engine\": {\"chains_assembled\": 11, \"engine_runs\": 0"));
        assert!(json.contains("\"kernel_memo_hits\""));
        assert!(snap.engine.kernel_evals < snap.engine.kernel_lookups);
    }
}

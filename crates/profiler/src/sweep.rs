//! Worker-thread fan-out for embarrassingly parallel sweeps.
//!
//! The repo's workloads — channel staircases, speedup heatmaps, the 32
//! repro experiments — are pure functions of their inputs, so they
//! parallelize by index: fan the items out to a worker pool, collect each
//! result into its input's slot, and the output order (and therefore every
//! rendered table, figure and JSON file) is byte-identical to a sequential
//! run regardless of scheduling.
//!
//! The worker count is a process-wide knob: binaries set it once from
//! `--jobs` / `PRUNEPERF_JOBS` via [`set_sweep_jobs`], and every
//! [`crate::LayerProfiler::latency_curve`] sweep picks it up without API
//! changes in between.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::stats::Stats;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "PRUNEPERF_JOBS";

/// Process-wide sweep worker count; 0 means "not set" (sequential).
static SWEEP_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Resolves a worker count from an explicit `--jobs` value, falling back to
/// the `PRUNEPERF_JOBS` environment variable, then to all available cores.
///
/// Zero or unparsable values mean "pick for me" and resolve to the number
/// of available cores.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var(JOBS_ENV).ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Sets the process-wide worker count used by in-experiment sweeps.
pub fn set_sweep_jobs(jobs: usize) {
    SWEEP_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The process-wide worker count; 1 (sequential) until a binary opts in.
pub fn sweep_jobs() -> usize {
    match SWEEP_JOBS.load(Ordering::Relaxed) {
        0 => 1,
        n => n,
    }
}

/// A worker panic contained by [`contained_parallel_map`]: which input
/// item unwound, and the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item {} panicked: {}", self.index, self.message)
    }
}

/// Renders a caught panic payload; payloads are `&str` or `String` for
/// every `panic!`/`assert!` form, anything else gets a placeholder.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on `jobs` worker threads with per-item panic
/// containment, returning results in input order.
///
/// A panicking item never takes the sweep down: the unwind is caught at
/// the item boundary, the worker moves on to the next index, and the
/// item's slot stays `None`. The second component lists every contained
/// panic in increasing item order — so callers can report *which* inputs
/// failed while all survivors land in their input-ordered slots exactly as
/// in [`ordered_parallel_map`].
pub fn contained_parallel_map<T, R, F>(
    items: &[T],
    jobs: usize,
    f: F,
) -> (Vec<Option<R>>, Vec<SweepPanic>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    contained_parallel_map_with_stats(items, jobs, Stats::global(), f)
}

/// [`contained_parallel_map`] recording sweep throughput into `stats`.
///
/// Each worker tallies its claimed items and contained panics locally and
/// flushes once on exit, so instrumentation adds two atomic adds and one
/// short lock per worker per sweep — nothing per item. The plain entry
/// points delegate here with [`Stats::global`].
pub fn contained_parallel_map_with_stats<T, R, F>(
    items: &[T],
    jobs: usize,
    stats: &Stats,
    f: F,
) -> (Vec<Option<R>>, Vec<SweepPanic>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // `f` only borrows the item and the caller observes either a result or
    // a contained panic per slot, so broken invariants cannot leak —
    // asserting unwind safety is sound here.
    let run_one = |i: usize, item: &T| -> Result<R, SweepPanic> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| SweepPanic {
            index: i,
            message: payload_message(payload),
        })
    };
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        let mut slots = Vec::with_capacity(items.len());
        let mut panics = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match run_one(i, item) {
                Ok(r) => slots.push(Some(r)),
                Err(p) => {
                    slots.push(None);
                    panics.push(p);
                }
            }
        }
        stats.record_sweep(0, items.len() as u64, panics.len() as u64);
        return (slots, panics);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let mut panics: Vec<SweepPanic> = Vec::new();
    std::thread::scope(|scope| {
        let next = &next;
        let run_one = &run_one;
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut caught = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        match run_one(i, item) {
                            Ok(r) => out.push((i, r)),
                            Err(p) => caught.push(p),
                        }
                    }
                    stats.record_sweep(
                        worker,
                        (out.len() + caught.len()) as u64,
                        caught.len() as u64,
                    );
                    (out, caught)
                })
            })
            .collect();
        for handle in handles {
            // Worker closures contain every item panic via catch_unwind,
            // so the thread itself cannot unwind.
            // lint: allow(unwrap) — join only fails if the worker panicked
            let (out, caught) = handle.join().expect("contained sweep worker cannot panic");
            for (i, r) in out {
                // lint: allow(index) — i < items.len() from the worker's claimed index
                slots[i] = Some(r);
            }
            panics.extend(caught);
        }
    });
    // Workers surface their catches in claim order; sort so the report is
    // scheduling-independent.
    panics.sort_by_key(|p| p.index);
    (slots, panics)
}

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter (cheap dynamic load
/// balancing — sweep items vary wildly in cost) and deposit each result in
/// its item's slot, so the output is identical to `items.iter().map(f)` no
/// matter how the items interleave across threads.
///
/// # Panics
///
/// If `f` panics for some item, every *other* item still completes, and
/// the sweep then re-panics with the lowest failing item index and the
/// original payload text — never the opaque "a scoped thread panicked"
/// abort of a bare join. Callers that need to survive item panics use
/// [`contained_parallel_map`] directly.
pub fn ordered_parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ordered_parallel_map_with_stats(items, jobs, Stats::global(), f)
}

/// [`ordered_parallel_map`] recording sweep throughput into `stats`.
///
/// # Panics
///
/// Propagates item panics exactly like [`ordered_parallel_map`].
pub fn ordered_parallel_map_with_stats<T, R, F>(
    items: &[T],
    jobs: usize,
    stats: &Stats,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let (slots, panics) = contained_parallel_map_with_stats(items, jobs, stats, f);
    if let Some(p) = panics.first() {
        // lint: allow(panic) — re-raises a worker panic by contract; fallible-path closures return Result and do not panic
        panic!(
            "sweep worker panicked on item {} of {}: {}",
            p.index,
            items.len(),
            p.message
        );
    }
    slots
        .into_iter()
        // lint: allow(unwrap) — no panics were caught, so every slot filled
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let sequential: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(ordered_parallel_map(&items, jobs, |&x| x * x), sequential);
        }
        assert_eq!(ordered_parallel_map(&[] as &[usize], 4, |&x| x), vec![]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = ordered_parallel_map(&items, 4, |&x| {
            // Early indices sleep longest, so late indices finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x * 2
        });
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    /// The regression the fault harness flushed out: a panicking closure
    /// used to abort the whole sweep through an opaque `join().unwrap()`.
    /// Now the panic is contained, the error names the failing item index,
    /// and every survivor still lands in input order — at jobs=1 (the
    /// sequential fast path) and jobs=8 alike.
    #[test]
    fn worker_panic_is_contained_and_indexed() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1usize, 8] {
            let (slots, panics) = contained_parallel_map(&items, jobs, |&x| {
                assert!(x != 13 && x != 40, "deliberate failure on {x}");
                x * 3
            });
            assert_eq!(slots.len(), 64, "jobs={jobs}");
            let indices: Vec<usize> = panics.iter().map(|p| p.index).collect();
            assert_eq!(indices, [13, 40], "jobs={jobs}");
            for p in &panics {
                assert!(
                    p.message.contains("deliberate failure"),
                    "jobs={jobs}: {p:?}"
                );
            }
            for (i, slot) in slots.iter().enumerate() {
                if i == 13 || i == 40 {
                    assert_eq!(slot, &None, "jobs={jobs}");
                } else {
                    assert_eq!(slot, &Some(i * 3), "jobs={jobs} item {i}");
                }
            }
        }
    }

    #[test]
    fn ordered_map_repanics_with_the_item_index() {
        for jobs in [1usize, 8] {
            let items: Vec<usize> = (0..32).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                ordered_parallel_map(&items, jobs, |&x| {
                    assert!(x != 21, "item {x} is bad");
                    x
                })
            }));
            let msg = payload_message(caught.expect_err("must propagate"));
            assert!(
                msg.contains("item 21 of 32") && msg.contains("item 21 is bad"),
                "jobs={jobs}: {msg}"
            );
        }
    }

    #[test]
    fn contained_map_handles_empty_and_all_panicking_inputs() {
        let (slots, panics) = contained_parallel_map(&[] as &[usize], 4, |&x| x);
        assert!(slots.is_empty() && panics.is_empty());
        let items = [1usize, 2, 3];
        let (slots, panics) =
            contained_parallel_map(&items, 8, |_| -> usize { panic!("all fail") });
        assert_eq!(slots, vec![None, None, None]);
        assert_eq!(panics.len(), 3);
        assert_eq!(
            panics.iter().map(|p| p.index).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn sweep_stats_record_items_and_panics_at_any_jobs() {
        for jobs in [1usize, 8] {
            let stats = Stats::new();
            let items: Vec<usize> = (0..40).collect();
            let (_, panics) = contained_parallel_map_with_stats(&items, jobs, &stats, |&x| {
                assert!(x != 7, "boom {x}");
                x
            });
            assert_eq!(panics.len(), 1, "jobs={jobs}");
            assert_eq!(stats.sweep_items(), 40, "jobs={jobs}");
            assert_eq!(stats.sweep_panics(), 1, "jobs={jobs}");
            // The worker split varies with scheduling; its sum never does.
            let sum: u64 = stats.worker_items().iter().map(|&(_, n)| n).sum();
            assert_eq!(sum, stats.sweep_items(), "jobs={jobs}");
        }
    }

    /// Satellite (PR 5): zero-item input is a no-op at every worker count —
    /// no slots, no panics, no stats, and no stuck worker threads.
    #[test]
    fn zero_item_input_yields_empty_results_and_zero_stats() {
        for jobs in [1usize, 8] {
            let stats = Stats::new();
            let out = ordered_parallel_map_with_stats(&[] as &[usize], jobs, &stats, |&x| x);
            assert!(out.is_empty(), "jobs={jobs}");
            let (slots, panics) =
                contained_parallel_map_with_stats(&[] as &[usize], jobs, &stats, |&x| x);
            assert!(slots.is_empty() && panics.is_empty(), "jobs={jobs}");
            assert_eq!(stats.sweep_items(), 0, "jobs={jobs}");
            assert_eq!(stats.sweep_panics(), 0, "jobs={jobs}");
            assert!(stats.worker_items().is_empty(), "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_panic_displays_index_and_payload() {
        let p = SweepPanic {
            index: 7,
            message: "boom".into(),
        };
        assert_eq!(p.to_string(), "item 7 panicked: boom");
    }

    #[test]
    fn explicit_jobs_beats_env_and_cores() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        // Zero means "pick for me".
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn sweep_jobs_defaults_to_sequential() {
        // Other tests may have set the knob; only assert the floor.
        assert!(sweep_jobs() >= 1);
        set_sweep_jobs(0);
        assert_eq!(sweep_jobs(), 1);
    }
}

//! Worker-thread fan-out for embarrassingly parallel sweeps.
//!
//! The repo's workloads — channel staircases, speedup heatmaps, the 32
//! repro experiments — are pure functions of their inputs, so they
//! parallelize by index: fan the items out to a worker pool, collect each
//! result into its input's slot, and the output order (and therefore every
//! rendered table, figure and JSON file) is byte-identical to a sequential
//! run regardless of scheduling.
//!
//! The worker count is a process-wide knob: binaries set it once from
//! `--jobs` / `PRUNEPERF_JOBS` via [`set_sweep_jobs`], and every
//! [`crate::LayerProfiler::latency_curve`] sweep picks it up without API
//! changes in between.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "PRUNEPERF_JOBS";

/// Process-wide sweep worker count; 0 means "not set" (sequential).
static SWEEP_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Resolves a worker count from an explicit `--jobs` value, falling back to
/// the `PRUNEPERF_JOBS` environment variable, then to all available cores.
///
/// Zero or unparsable values mean "pick for me" and resolve to the number
/// of available cores.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var(JOBS_ENV).ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Sets the process-wide worker count used by in-experiment sweeps.
pub fn set_sweep_jobs(jobs: usize) {
    SWEEP_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The process-wide worker count; 1 (sequential) until a binary opts in.
pub fn sweep_jobs() -> usize {
    match SWEEP_JOBS.load(Ordering::Relaxed) {
        0 => 1,
        n => n,
    }
}

/// Maps `f` over `items` on `jobs` worker threads, returning results in
/// input order.
///
/// Workers claim indices from a shared atomic counter (cheap dynamic load
/// balancing — sweep items vary wildly in cost) and deposit each result in
/// its item's slot, so the output is identical to `items.iter().map(f)` no
/// matter how the items interleave across threads.
pub fn ordered_parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            // lint: allow(unwrap) — propagating a worker panic is the intent
            for (i, r) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        // lint: allow(unwrap) — the atomic counter hands out each index once
        .map(|slot| slot.expect("every index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let sequential: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(ordered_parallel_map(&items, jobs, |&x| x * x), sequential);
        }
        assert_eq!(ordered_parallel_map(&[] as &[usize], 4, |&x| x), vec![]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = ordered_parallel_map(&items, 4, |&x| {
            // Early indices sleep longest, so late indices finish first.
            std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
            x * 2
        });
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_jobs_beats_env_and_cores() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert!(resolve_jobs(None) >= 1);
        // Zero means "pick for me".
        assert!(resolve_jobs(Some(0)) >= 1);
    }

    #[test]
    fn sweep_jobs_defaults_to_sequential() {
        // Other tests may have set the knob; only assert the floor.
        assert!(sweep_jobs() >= 1);
        set_sweep_jobs(0);
        assert_eq!(sweep_jobs(), 1);
    }
}

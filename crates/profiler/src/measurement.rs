use serde::{Deserialize, Serialize};

/// The latencies of repeated runs of one configuration plus their median —
/// the paper's reporting unit (§III-D: median of 10 runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    runs_ms: Vec<f64>,
    median_ms: f64,
}

impl Measurement {
    /// Builds a measurement from individual run latencies.
    ///
    /// # Panics
    ///
    /// Panics if `runs_ms` is empty.
    pub fn from_runs(mut runs_ms: Vec<f64>) -> Self {
        // lint: allow(panic) — documented # Panics contract: a measurement needs runs
        assert!(!runs_ms.is_empty(), "a measurement needs at least one run");
        let mut sorted = runs_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median_ms = if n % 2 == 1 {
            // lint: allow(index) — n >= 1 after the non-empty assert, so n / 2 < n
            sorted[n / 2]
        } else {
            // lint: allow(index) — even n >= 2 after the non-empty assert, so n / 2 - 1 is in-bounds
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        runs_ms.shrink_to_fit();
        Measurement { runs_ms, median_ms }
    }

    /// The reported (median) latency in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ms
    }

    /// All run latencies, in execution order.
    pub fn runs_ms(&self) -> &[f64] {
        &self.runs_ms
    }

    /// Fastest run.
    pub fn min_ms(&self) -> f64 {
        self.runs_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Slowest run.
    pub fn max_ms(&self) -> f64 {
        self.runs_ms.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_count_median() {
        let m = Measurement::from_runs(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.median_ms(), 2.0);
    }

    #[test]
    fn even_count_median_averages() {
        let m = Measurement::from_runs(vec![1.0, 2.0, 3.0, 10.0]);
        assert_eq!(m.median_ms(), 2.5);
    }

    #[test]
    fn median_is_outlier_robust() {
        let m = Measurement::from_runs(vec![5.0, 5.1, 4.9, 5.0, 50.0]);
        assert_eq!(m.median_ms(), 5.0);
    }

    #[test]
    fn min_max() {
        let m = Measurement::from_runs(vec![5.0, 4.0, 6.0]);
        assert_eq!(m.min_ms(), 4.0);
        assert_eq!(m.max_ms(), 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_rejected() {
        let _ = Measurement::from_runs(vec![]);
    }

    #[test]
    fn preserves_run_order() {
        let m = Measurement::from_runs(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.runs_ms(), &[3.0, 1.0, 2.0]);
    }
}

use std::fmt;

use pruneperf_gpusim::{ChainReport, KernelReport, SystemCounters};

/// A single intercepted execution of one layer's dispatch plan — what the
/// paper's OpenCL interceptor (or CUDA event timers) sees: every kernel's
/// name, start/end time and memory footprint, plus the job-manager
/// counters the GPU-simulator analysis of §IV-B relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    backend: String,
    algorithm: String,
    report: ChainReport,
}

impl Timeline {
    pub(crate) fn new(
        backend: impl Into<String>,
        algorithm: impl Into<String>,
        report: ChainReport,
    ) -> Self {
        Timeline {
            backend: backend.into(),
            algorithm: algorithm.into(),
            report,
        }
    }

    /// Backend that produced the dispatches.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Algorithm the backend chose.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Intercepted kernels in dispatch order.
    pub fn kernels(&self) -> &[KernelReport] {
        self.report.kernels()
    }

    /// System-level counters (jobs, control registers, interrupts).
    pub fn counters(&self) -> &SystemCounters {
        self.report.counters()
    }

    /// End-to-end latency of this (noise-free) execution in ms.
    pub fn total_ms(&self) -> f64 {
        self.report.total_time_ms()
    }

    /// The underlying simulator report.
    pub fn report(&self) -> &ChainReport {
        &self.report
    }

    /// Convenience: kernel names in dispatch order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.report
            .kernels()
            .iter()
            .map(|k| k.name.as_str())
            .collect()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] — {:.3} ms, {} jobs",
            self.backend,
            self.algorithm,
            self.total_ms(),
            self.counters().jobs
        )?;
        for k in self.kernels() {
            writeln!(
                f,
                "  {:>10.3}..{:>10.3} us  {}  ({} wg, {} B)",
                k.start_us, k.end_us, k.name, k.workgroups, k.footprint_bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_gpusim::{Device, Engine, JobChain, KernelDesc};

    fn timeline() -> Timeline {
        let device = Device::mali_g72_hikey970();
        let k = KernelDesc::builder("gemm_mm")
            .global([64, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100)
            .footprint_bytes(4096)
            .build();
        let report = Engine::new(&device).run_chain(&JobChain::from_kernels(vec![k]));
        Timeline::new("ACL GEMM", "gemm", report)
    }

    #[test]
    fn exposes_kernel_names_and_counters() {
        let t = timeline();
        assert_eq!(t.kernel_names(), ["gemm_mm"]);
        assert_eq!(t.counters().jobs, 1);
        assert!(t.total_ms() > 0.0);
        assert_eq!(t.backend(), "ACL GEMM");
    }

    #[test]
    fn display_contains_footprint() {
        let s = timeline().to_string();
        assert!(s.contains("4096 B"), "{s}");
        assert!(s.contains("gemm_mm"), "{s}");
    }
}

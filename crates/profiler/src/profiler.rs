use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pruneperf_backends::ConvBackend;
use pruneperf_gpusim::{Device, Engine};
use pruneperf_models::ConvLayerSpec;

use crate::{sweep, CurvePoint, LatencyCache, LatencyCurve, Measurement, Timeline};

/// Default number of runs per configuration (§III-D).
const DEFAULT_RUNS: usize = 10;
/// Relative half-width of the uniform run-to-run jitter.
const JITTER_FRAC: f64 = 0.018;
/// Probability of a slow outlier run (scheduler preemption, DVFS, …).
const OUTLIER_PROB: f64 = 0.08;
/// Relative magnitude range of outlier slowdowns.
const OUTLIER_RANGE: (f64, f64) = (0.05, 0.18);

/// Profiles convolutional layers on one simulated device.
///
/// Reproduces the paper's measurement loop: run each configuration several
/// times, report the median. The jitter process is seeded from the
/// (device, backend, layer, channels, run) tuple, so every experiment is
/// reproducible while still exercising median-of-N statistics.
#[derive(Debug, Clone)]
pub struct LayerProfiler {
    device: Device,
    runs: usize,
    noise: bool,
}

impl LayerProfiler {
    /// A profiler with the paper's methodology (median of 10 noisy runs).
    pub fn new(device: &Device) -> Self {
        LayerProfiler {
            device: device.clone(),
            runs: DEFAULT_RUNS,
            noise: true,
        }
    }

    /// A profiler that reports the simulator's deterministic time directly
    /// (one run, no jitter) — for analyses that need exact model output.
    pub fn noiseless(device: &Device) -> Self {
        LayerProfiler {
            device: device.clone(),
            runs: 1,
            noise: false,
        }
    }

    /// Overrides the number of runs per configuration.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "at least one run is required");
        self.runs = runs;
        self
    }

    /// The device being profiled.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Deterministic per-run jitter factor (≥ 1.0 − JITTER_FRAC).
    fn jitter(&self, seed: u64, run: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(run as u64));
        let base = 1.0 + rng.gen_range(-JITTER_FRAC..JITTER_FRAC);
        if rng.gen_bool(OUTLIER_PROB) {
            base * (1.0 + rng.gen_range(OUTLIER_RANGE.0..OUTLIER_RANGE.1))
        } else {
            base
        }
    }

    fn seed_for(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .device
            .name()
            .bytes()
            .chain(backend.name().bytes())
            .chain(layer.label().bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (layer.c_out() as u64) << 32;
        h
    }

    /// Measures one layer configuration (median of the configured runs).
    ///
    /// The deterministic base latency comes from the process-wide
    /// [`LatencyCache`], so repeated sweeps over the same configurations
    /// simulate each one only once; the seeded jitter is layered on top of
    /// the cached value, which is bitwise-identical to an uncached run.
    pub fn measure(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> Measurement {
        let base_ms = LatencyCache::global().latency_ms(backend, layer, &self.device);
        if !self.noise {
            return Measurement::from_runs(vec![base_ms]);
        }
        let seed = self.seed_for(backend, layer);
        let runs = (0..self.runs)
            .map(|r| base_ms * self.jitter(seed, r))
            .collect();
        Measurement::from_runs(runs)
    }

    /// Modelled energy of one execution in millijoules (energy is a model
    /// output, not a measured quantity, so it carries no jitter). Served
    /// from the same cache entry as the latency.
    pub fn energy_mj(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> f64 {
        LatencyCache::global().energy_mj(backend, layer, &self.device)
    }

    /// Intercepts a single execution: kernel timeline plus system counters
    /// (noise-free — interception observes the dispatch structure).
    pub fn timeline(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> Timeline {
        let plan = backend.plan(layer, &self.device);
        let report = Engine::new(&self.device).run_chain(plan.chain());
        Timeline::new(
            plan.backend().to_string(),
            plan.algorithm().to_string(),
            report,
        )
    }

    /// Sweeps the layer's channel count over `channels` and measures each
    /// configuration — one figure-style staircase curve.
    ///
    /// Channel counts outside the layer's valid range are skipped. The
    /// per-configuration measurements fan out across
    /// [`sweep::sweep_jobs`] worker threads; every measurement is
    /// deterministic and collected in channel order, so the curve is
    /// identical at any worker count.
    pub fn latency_curve(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        channels: std::ops::RangeInclusive<usize>,
    ) -> LatencyCurve {
        let configs: Vec<ConvLayerSpec> =
            channels.filter_map(|c| layer.with_c_out(c).ok()).collect();
        let points: Vec<CurvePoint> =
            sweep::ordered_parallel_map(&configs, sweep::sweep_jobs(), |pruned| CurvePoint {
                channels: pruned.c_out(),
                measurement: self.measure(backend, pruned),
            });
        LatencyCurve::new(
            layer.label().to_string(),
            backend.name().to_string(),
            self.device.name().to_string(),
            points,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclGemm, Cudnn};
    use pruneperf_models::resnet50;

    fn l16() -> ConvLayerSpec {
        resnet50().layer("ResNet.L16").unwrap().clone()
    }

    #[test]
    fn median_of_ten_by_default() {
        let p = LayerProfiler::new(&Device::mali_g72_hikey970());
        let m = p.measure(&AclGemm::new(), &l16());
        assert_eq!(m.runs_ms().len(), 10);
        assert!(m.median_ms() > 0.0);
    }

    #[test]
    fn measurements_are_reproducible() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        let a = p.measure(&AclGemm::new(), &l16());
        let b = p.measure(&AclGemm::new(), &l16());
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_is_small_relative_to_signal() {
        let d = Device::mali_g72_hikey970();
        let noisy = LayerProfiler::new(&d);
        let clean = LayerProfiler::noiseless(&d);
        let m_noisy = noisy.measure(&AclGemm::new(), &l16()).median_ms();
        let m_clean = clean.measure(&AclGemm::new(), &l16()).median_ms();
        assert!((m_noisy / m_clean - 1.0).abs() < 0.05);
    }

    #[test]
    fn noiseless_is_single_exact_run() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let m = p.measure(&Cudnn::new(), &l16());
        assert_eq!(m.runs_ms().len(), 1);
        assert_eq!(m.median_ms(), Cudnn::new().latency_ms(&l16(), &d));
    }

    #[test]
    fn curve_sweeps_and_skips_invalid_counts() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::noiseless(&d);
        // 120..=140 but the layer only has 128 channels -> 9 valid points.
        let curve = p.latency_curve(&AclGemm::new(), &l16(), 120..=140);
        assert_eq!(curve.points().len(), 9);
        assert_eq!(curve.channel_range(), (120, 128));
    }

    #[test]
    fn curve_is_identical_at_any_worker_count() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        sweep::set_sweep_jobs(1);
        let sequential = p.latency_curve(&AclGemm::new(), &l16(), 60..=128);
        sweep::set_sweep_jobs(8);
        let parallel = p.latency_curve(&AclGemm::new(), &l16(), 60..=128);
        sweep::set_sweep_jobs(1);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn timeline_exposes_interceptor_view() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        let layer = l16().with_c_out(92).unwrap();
        let t = p.timeline(&AclGemm::new(), &layer);
        assert_eq!(
            t.kernel_names(),
            ["im2col3x3_nhwc", "reshape_to_columns", "gemm_mm", "gemm_mm"]
        );
        assert_eq!(t.counters().jobs, 4);
        assert_eq!(t.counters().submissions, 2);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = LayerProfiler::new(&Device::jetson_nano()).with_runs(0);
    }
}

use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pruneperf_backends::ConvBackend;
use pruneperf_gpusim::{ChainScratch, Device, Engine};
use pruneperf_models::ConvLayerSpec;

use crate::faults::{with_retry, RetryPolicy};
use crate::stats::Stats;
use crate::{
    sweep, CurveGap, CurvePoint, LatencyCache, LatencyCurve, Measurement, PartialCurve, Timeline,
};
use pruneperf_gpusim::ChromeEvent;

/// Stats site label for [`LayerProfiler::try_measure`] retries.
const SITE_TRY_MEASURE: &str = "profiler.try_measure";

/// Default number of runs per configuration (§III-D).
const DEFAULT_RUNS: usize = 10;
/// Relative half-width of the uniform run-to-run jitter.
const JITTER_FRAC: f64 = 0.018;
/// Probability of a slow outlier run (scheduler preemption, DVFS, …).
const OUTLIER_PROB: f64 = 0.08;
/// Relative magnitude range of outlier slowdowns.
const OUTLIER_RANGE: (f64, f64) = (0.05, 0.18);

/// Profiles convolutional layers on one simulated device.
///
/// Reproduces the paper's measurement loop: run each configuration several
/// times, report the median. The jitter process is seeded from the
/// (device, backend, layer, channels, run) tuple, so every experiment is
/// reproducible while still exercising median-of-N statistics.
#[derive(Debug, Clone)]
pub struct LayerProfiler {
    device: Device,
    runs: usize,
    noise: bool,
    cache: Option<Arc<LatencyCache>>,
    retry: RetryPolicy,
    stats: Option<Arc<Stats>>,
}

impl LayerProfiler {
    /// A profiler with the paper's methodology (median of 10 noisy runs).
    pub fn new(device: &Device) -> Self {
        LayerProfiler {
            device: device.clone(),
            runs: DEFAULT_RUNS,
            noise: true,
            cache: None,
            retry: RetryPolicy::bounded(),
            stats: None,
        }
    }

    /// A profiler that reports the simulator's deterministic time directly
    /// (one run, no jitter) — for analyses that need exact model output.
    pub fn noiseless(device: &Device) -> Self {
        LayerProfiler {
            device: device.clone(),
            runs: 1,
            noise: false,
            cache: None,
            retry: RetryPolicy::bounded(),
            stats: None,
        }
    }

    /// Memoizes through `cache` instead of the process-wide
    /// [`LatencyCache::global`].
    ///
    /// Fault-injection runs need this: injected-fault counts are only
    /// reproducible when every run starts from an equally cold cache, and
    /// a faulty backend's entries should not outlive the experiment.
    pub fn with_cache(mut self, cache: Arc<LatencyCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the retry policy used by the fallible measurement paths
    /// ([`LayerProfiler::try_measure`],
    /// [`LayerProfiler::latency_curve_partial`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Records observability counters into `stats` instead of the
    /// process-wide [`Stats::global`] registry — the isolation twin of
    /// [`LayerProfiler::with_cache`], used by tests that assert exact
    /// counter values.
    pub fn with_stats(mut self, stats: Arc<Stats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The cache this profiler memoizes through.
    fn cache(&self) -> &LatencyCache {
        match &self.cache {
            Some(c) => c,
            None => LatencyCache::global(),
        }
    }

    /// The stats registry this profiler records into.
    fn stats(&self) -> &Stats {
        match &self.stats {
            Some(s) => s,
            None => Stats::global(),
        }
    }

    /// Overrides the number of runs per configuration.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "at least one run is required");
        self.runs = runs;
        self
    }

    /// The device being profiled.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Deterministic per-run jitter factor (≥ 1.0 − JITTER_FRAC).
    fn jitter(&self, seed: u64, run: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(run as u64));
        let base = 1.0 + rng.gen_range(-JITTER_FRAC..JITTER_FRAC);
        if rng.gen_bool(OUTLIER_PROB) {
            base * (1.0 + rng.gen_range(OUTLIER_RANGE.0..OUTLIER_RANGE.1))
        } else {
            base
        }
    }

    fn seed_for(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .device
            .name()
            .bytes()
            .chain(backend.name().bytes())
            .chain(layer.label().bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (layer.c_out() as u64) << 32;
        h
    }

    /// Measures one layer configuration (median of the configured runs).
    ///
    /// The deterministic base latency comes from the process-wide
    /// [`LatencyCache`], so repeated sweeps over the same configurations
    /// simulate each one only once; the seeded jitter is layered on top of
    /// the cached value, which is bitwise-identical to an uncached run.
    pub fn measure(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> Measurement {
        let base_ms = self.cache().latency_ms(backend, layer, &self.device);
        self.noisy_measurement(backend, layer, base_ms)
    }

    /// Batched twin of [`LayerProfiler::measure`]: measures every
    /// configuration in order through the cache's batched costing path,
    /// which hoists the backend fingerprint and engine out of the
    /// per-layer loop. Results are bitwise-identical to calling
    /// [`LayerProfiler::measure`] once per configuration.
    pub fn measure_batch(
        &self,
        backend: &dyn ConvBackend,
        configs: &[ConvLayerSpec],
    ) -> Vec<Measurement> {
        let costs = self.cache().cost_batch(backend, configs, &self.device);
        configs
            .iter()
            .zip(costs)
            .map(|(layer, (base_ms, _mj))| self.noisy_measurement(backend, layer, base_ms))
            .collect()
    }

    /// Layers the seeded jitter runs on top of a deterministic base time.
    fn noisy_measurement(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        base_ms: f64,
    ) -> Measurement {
        if !self.noise {
            return Measurement::from_runs(vec![base_ms]);
        }
        let seed = self.seed_for(backend, layer);
        let runs = (0..self.runs)
            .map(|r| base_ms * self.jitter(seed, r))
            .collect();
        Measurement::from_runs(runs)
    }

    /// Fallible twin of [`LayerProfiler::measure`]: queries through the
    /// fallible cost path, retrying transient failures under the
    /// profiler's [`RetryPolicy`] before giving up.
    ///
    /// # Errors
    ///
    /// Returns a [`MeasureError`] carrying the channel count, the number
    /// of attempts spent and the final backend error when the
    /// configuration could not be measured (a permanent fault, or
    /// transient faults outlasting the retry budget).
    pub fn try_measure(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
    ) -> Result<Measurement, MeasureError> {
        let (result, outcome) = with_retry(&self.retry, || {
            self.cache().try_cost(backend, layer, &self.device)
        });
        self.stats().record_site(
            SITE_TRY_MEASURE,
            outcome.attempts as u64,
            outcome.backoff_ms,
            result.is_ok(),
        );
        match result {
            Ok((base_ms, _mj)) => Ok(self.noisy_measurement(backend, layer, base_ms)),
            Err(e) => Err(MeasureError {
                channels: layer.c_out(),
                attempts: outcome.attempts,
                backoff_ms: outcome.backoff_ms,
                message: e.to_string(),
            }),
        }
    }

    /// Modelled energy of one execution in millijoules (energy is a model
    /// output, not a measured quantity, so it carries no jitter). Served
    /// from the same cache entry as the latency.
    pub fn energy_mj(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> f64 {
        self.cache().energy_mj(backend, layer, &self.device)
    }

    /// Intercepts a single execution: kernel timeline plus system counters
    /// (noise-free — interception observes the dispatch structure).
    pub fn timeline(&self, backend: &dyn ConvBackend, layer: &ConvLayerSpec) -> Timeline {
        let plan = backend.plan(layer, &self.device);
        let report = Engine::new(&self.device).run_chain(plan.chain());
        Timeline::new(
            plan.backend().to_string(),
            plan.algorithm().to_string(),
            report,
        )
    }

    /// Sweeps the layer's channel count over `channels` and measures each
    /// configuration — one figure-style staircase curve.
    ///
    /// Channel counts outside the layer's valid range are skipped. The
    /// per-configuration measurements fan out across
    /// [`sweep::sweep_jobs`] worker threads; every measurement is
    /// deterministic and collected in channel order, so the curve is
    /// identical at any worker count.
    pub fn latency_curve(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        channels: std::ops::RangeInclusive<usize>,
    ) -> LatencyCurve {
        let configs: Vec<ConvLayerSpec> =
            channels.filter_map(|c| layer.with_c_out(c).ok()).collect();
        let points: Vec<CurvePoint> = sweep::ordered_parallel_map_with_stats(
            &configs,
            sweep::sweep_jobs(),
            self.stats(),
            |pruned| CurvePoint {
                channels: pruned.c_out(),
                measurement: self.measure(backend, pruned),
            },
        );
        LatencyCurve::new(
            layer.label().to_string(),
            backend.name().to_string(),
            self.device.name().to_string(),
            points,
        )
    }

    /// Fault-tolerant twin of [`LayerProfiler::latency_curve`]: sweeps
    /// the same configurations through [`LayerProfiler::try_measure`] and
    /// degrades gracefully instead of panicking.
    ///
    /// Configurations that fail after retries become explicit
    /// [`CurveGap`]s; every survivor lands at its channel count exactly
    /// as in the infallible sweep, so with no faults the result is the
    /// complete curve, bitwise-identical at any worker count.
    pub fn latency_curve_partial(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        channels: std::ops::RangeInclusive<usize>,
    ) -> PartialCurve {
        let configs: Vec<ConvLayerSpec> =
            channels.filter_map(|c| layer.with_c_out(c).ok()).collect();
        let outcomes: Vec<Result<CurvePoint, CurveGap>> = sweep::ordered_parallel_map_with_stats(
            &configs,
            sweep::sweep_jobs(),
            self.stats(),
            |pruned| match self.try_measure(backend, pruned) {
                Ok(measurement) => Ok(CurvePoint {
                    channels: pruned.c_out(),
                    measurement,
                }),
                Err(e) => Err(CurveGap {
                    channels: e.channels,
                    attempts: e.attempts,
                    error: e.message,
                }),
            },
        );
        let mut points = Vec::new();
        let mut gaps = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(p) => points.push(p),
                Err(g) => gaps.push(g),
            }
        }
        let curve = LatencyCurve::try_new(
            layer.label().to_string(),
            backend.name().to_string(),
            self.device.name().to_string(),
            points,
        )
        .ok();
        PartialCurve::new(curve, gaps)
    }

    /// Span-level Chrome trace events for a channel sweep.
    ///
    /// Each valid configuration is intercepted like
    /// [`LayerProfiler::timeline`] and laid on a virtual timeline:
    /// lane 0 carries one enclosing event per configuration (duration =
    /// the chain's total simulated time), lane 1 carries the individual
    /// kernel dispatches from the [`pruneperf_gpusim::ChainReport`].
    /// Everything is virtual simulator time, so the event list is a pure
    /// function of (backend, layer, channels) — byte-identical at any
    /// worker count when rendered with
    /// [`pruneperf_gpusim::render_trace`].
    pub fn sweep_events(
        &self,
        backend: &dyn ConvBackend,
        layer: &ConvLayerSpec,
        channels: std::ops::RangeInclusive<usize>,
    ) -> Vec<ChromeEvent> {
        const PID: u64 = 0;
        const LANE_CONFIGS: u64 = 0;
        const LANE_KERNELS: u64 = 1;
        let mut events = vec![
            ChromeEvent::process_name(
                PID,
                &format!(
                    "pruneperf profile {} on {} [{}]",
                    layer.label(),
                    self.device.name(),
                    backend.name()
                ),
            ),
            ChromeEvent::thread_name(PID, LANE_CONFIGS, "configurations"),
            ChromeEvent::thread_name(PID, LANE_KERNELS, "kernels"),
        ];
        let mut offset_us = 0.0f64;
        // One engine and one scratch arena for the whole sweep: the SoA
        // columns are reused across configurations instead of reallocated
        // per chain (the report itself still owns its kernel rows).
        let engine = Engine::new(&self.device);
        let mut scratch = ChainScratch::new();
        for config in channels.filter_map(|c| layer.with_c_out(c).ok()) {
            let plan = backend.plan(&config, &self.device);
            let report = engine.run_chain_with(plan.chain(), &mut scratch);
            events.push(
                ChromeEvent::complete(
                    &format!("{} ch", config.c_out()),
                    "config",
                    offset_us,
                    report.total_time_us(),
                    PID,
                    LANE_CONFIGS,
                )
                .arg_num("jobs", report.counters().jobs)
                .arg_num("kernels", report.kernels().len()),
            );
            events.extend(report.chrome_events(PID, LANE_KERNELS, offset_us));
            offset_us += report.total_time_us();
        }
        events
    }
}

/// Why one layer configuration could not be measured.
///
/// Produced by [`LayerProfiler::try_measure`] after the retry policy is
/// exhausted (or aborts on a permanent fault).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureError {
    /// The configuration's output channel count.
    pub channels: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Total virtual backoff accounted across the retries, ms.
    pub backoff_ms: f64,
    /// The final backend error, rendered to text.
    pub message: String,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channels unmeasurable after {} attempt(s): {}",
            self.channels, self.attempts, self.message
        )
    }
}

impl std::error::Error for MeasureError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pruneperf_backends::{AclGemm, Cudnn};
    use pruneperf_models::resnet50;

    fn l16() -> ConvLayerSpec {
        resnet50().layer("ResNet.L16").unwrap().clone()
    }

    #[test]
    fn median_of_ten_by_default() {
        let p = LayerProfiler::new(&Device::mali_g72_hikey970());
        let m = p.measure(&AclGemm::new(), &l16());
        assert_eq!(m.runs_ms().len(), 10);
        assert!(m.median_ms() > 0.0);
    }

    #[test]
    fn measurements_are_reproducible() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        let a = p.measure(&AclGemm::new(), &l16());
        let b = p.measure(&AclGemm::new(), &l16());
        assert_eq!(a, b);
    }

    #[test]
    fn measure_batch_matches_individual_measures() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d).with_cache(Arc::new(LatencyCache::new()));
        let b = AclGemm::new();
        let configs: Vec<ConvLayerSpec> =
            (100..=128).map(|c| l16().with_c_out(c).unwrap()).collect();
        let batch = p.measure_batch(&b, &configs);
        assert_eq!(batch.len(), configs.len());
        for (cfg, m) in configs.iter().zip(&batch) {
            assert_eq!(m, &p.measure(&b, cfg), "c_out={}", cfg.c_out());
        }
    }

    #[test]
    fn jitter_is_small_relative_to_signal() {
        let d = Device::mali_g72_hikey970();
        let noisy = LayerProfiler::new(&d);
        let clean = LayerProfiler::noiseless(&d);
        let m_noisy = noisy.measure(&AclGemm::new(), &l16()).median_ms();
        let m_clean = clean.measure(&AclGemm::new(), &l16()).median_ms();
        assert!((m_noisy / m_clean - 1.0).abs() < 0.05);
    }

    #[test]
    fn noiseless_is_single_exact_run() {
        let d = Device::jetson_tx2();
        let p = LayerProfiler::noiseless(&d);
        let m = p.measure(&Cudnn::new(), &l16());
        assert_eq!(m.runs_ms().len(), 1);
        assert_eq!(m.median_ms(), Cudnn::new().latency_ms(&l16(), &d));
    }

    #[test]
    fn curve_sweeps_and_skips_invalid_counts() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::noiseless(&d);
        // 120..=140 but the layer only has 128 channels -> 9 valid points.
        let curve = p.latency_curve(&AclGemm::new(), &l16(), 120..=140);
        assert_eq!(curve.points().len(), 9);
        assert_eq!(curve.channel_range(), (120, 128));
    }

    #[test]
    fn curve_is_identical_at_any_worker_count() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        sweep::set_sweep_jobs(1);
        let sequential = p.latency_curve(&AclGemm::new(), &l16(), 60..=128);
        sweep::set_sweep_jobs(8);
        let parallel = p.latency_curve(&AclGemm::new(), &l16(), 60..=128);
        sweep::set_sweep_jobs(1);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn timeline_exposes_interceptor_view() {
        let d = Device::mali_g72_hikey970();
        let p = LayerProfiler::new(&d);
        let layer = l16().with_c_out(92).unwrap();
        let t = p.timeline(&AclGemm::new(), &layer);
        assert_eq!(
            t.kernel_names(),
            ["im2col3x3_nhwc", "reshape_to_columns", "gemm_mm", "gemm_mm"]
        );
        assert_eq!(t.counters().jobs, 4);
        assert_eq!(t.counters().submissions, 2);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = LayerProfiler::new(&Device::jetson_nano()).with_runs(0);
    }

    mod fault_paths {
        use super::*;
        use crate::faults::{FaultPlan, FaultyBackend};
        use std::sync::Arc;

        fn faulted_profiler(plan: FaultPlan) -> (LayerProfiler, FaultyBackend<AclGemm>) {
            let p = LayerProfiler::new(&Device::mali_g72_hikey970())
                .with_cache(Arc::new(LatencyCache::new()));
            (p, FaultyBackend::new(AclGemm::new(), plan))
        }

        #[test]
        fn try_measure_matches_measure_when_nothing_faults() {
            let (p, b) = faulted_profiler(FaultPlan::new(1));
            let layer = l16();
            assert_eq!(p.try_measure(&b, &layer).unwrap(), p.measure(&b, &layer));
        }

        #[test]
        fn try_measure_retries_transients_and_reports_permanents() {
            let (p, b) = faulted_profiler(FaultPlan::new(2).with_transient_rate(0.5));
            // Rate 0.5 per attempt against a 4-attempt budget: most
            // configurations recover via retry, a few (~6%) exhaust the
            // budget — and those must surface as *transient* errors with
            // the full budget spent, not hang or panic.
            let layer = l16();
            let mut ok = 0usize;
            for c in 60..=96 {
                let pruned = layer.with_c_out(c).unwrap();
                match p.try_measure(&b, &pruned) {
                    Ok(_) => ok += 1,
                    Err(e) => {
                        assert_eq!(e.attempts, 4, "budget must be spent: {e}");
                        assert!(e.message.contains("transient"), "{e}");
                        assert!(e.backoff_ms > 0.0);
                    }
                }
            }
            assert!(ok >= 30, "retry should recover most configs, got {ok}/37");
            assert!(b.stats().transients > 0, "the plan never fired");

            let (p, b) = faulted_profiler(FaultPlan::new(2).with_permanent_rate(1.0));
            let err = p.try_measure(&b, &layer).unwrap_err();
            assert_eq!(err.attempts, 1, "permanent faults must not retry");
            assert_eq!(err.channels, layer.c_out());
            assert!(err.message.contains("permanent"), "{err}");
            assert!(err.to_string().contains("unmeasurable"));
        }

        #[test]
        fn partial_curve_marks_gaps_and_keeps_survivors() {
            let plan = FaultPlan::new(9).with_permanent_rate(0.2);
            let (p, b) = faulted_profiler(plan);
            let partial = p.latency_curve_partial(&b, &l16(), 60..=128);
            assert!(!partial.is_complete(), "seed 9 @ 0.2 must lose points");
            assert!(partial.curve().is_some());
            assert_eq!(partial.measured() + partial.gaps().len(), 69);
            for gap in partial.gaps() {
                assert!(gap.error.contains("permanent"), "{gap:?}");
                assert!(partial.curve().unwrap().ms_at(gap.channels).is_none());
            }
            // Survivors are bitwise-identical to a fault-free sweep.
            let clean = LayerProfiler::new(&Device::mali_g72_hikey970()).latency_curve(
                &AclGemm::new(),
                &l16(),
                60..=128,
            );
            for point in partial.curve().unwrap().points() {
                assert_eq!(
                    Some(point.measurement.median_ms()),
                    clean.ms_at(point.channels)
                );
            }
        }

        #[test]
        fn partial_curve_is_identical_at_any_worker_count() {
            let run = |jobs: usize| {
                sweep::set_sweep_jobs(jobs);
                let plan = FaultPlan::new(13)
                    .with_permanent_rate(0.15)
                    .with_transient_rate(0.3);
                let (p, b) = faulted_profiler(plan);
                let out = p.latency_curve_partial(&b, &l16(), 60..=128);
                sweep::set_sweep_jobs(1);
                (out, b.stats())
            };
            let (seq, seq_stats) = run(1);
            let (par, par_stats) = run(8);
            assert_eq!(seq, par);
            assert_eq!(seq_stats, par_stats, "injection counts must match too");
        }

        #[test]
        fn fully_faulted_sweep_yields_no_curve_but_no_panic() {
            let (p, b) = faulted_profiler(FaultPlan::new(4).with_permanent_rate(1.0));
            let partial = p.latency_curve_partial(&b, &l16(), 60..=70);
            assert!(partial.curve().is_none());
            assert_eq!(partial.gaps().len(), 11);
            assert_eq!(partial.measured(), 0);
            assert_eq!(partial.coverage(), 0.0);
        }

        #[test]
        fn local_cache_keeps_global_state_clean() {
            let cache = Arc::new(LatencyCache::new());
            let p = LayerProfiler::new(&Device::mali_g72_hikey970()).with_cache(cache.clone());
            let before = LatencyCache::global().len();
            let _ = p.measure(&AclGemm::new(), &l16());
            assert_eq!(LatencyCache::global().len(), before);
            assert_eq!(cache.len(), 1);
        }
    }
}

//! Kernel-level profiling over the simulated devices (§III-C).
//!
//! The paper measures with two custom profilers:
//!
//! * an **OpenCL interceptor** that hooks every OpenCL call to observe when
//!   each kernel starts and finishes on the GPU, its name and its memory
//!   footprint (§III-C1) — modelled by [`Timeline`];
//! * **CUDA event timers** for cuDNN tasks, cross-checked against `nvprof`
//!   (§III-C2) — same [`Timeline`] interface on the Jetson devices.
//!
//! Methodology follows §III-D: “the median time of 10 runs is reported for
//! each configuration”. Run-to-run jitter is modelled with a deterministic,
//! seeded noise process layered *on top of* the deterministic simulator, so
//! measurements look like board measurements but experiments reproduce
//! bit-exactly. Use [`LayerProfiler::noiseless`] to strip the noise.
//!
//! # Example
//!
//! ```
//! use pruneperf_backends::AclGemm;
//! use pruneperf_gpusim::Device;
//! use pruneperf_models::resnet50;
//! use pruneperf_profiler::LayerProfiler;
//!
//! let device = Device::mali_g72_hikey970();
//! let layer = resnet50().layer("ResNet.L16").unwrap().clone();
//! let profiler = LayerProfiler::new(&device);
//! let curve = profiler.latency_curve(&AclGemm::new(), &layer, 60..=128);
//! assert_eq!(curve.points().len(), 69);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod curve;
pub mod faults;
mod incremental;
mod measurement;
mod profiler;
mod runner;
pub mod stats;
pub mod sweep;
mod timeline;

pub use cache::{CacheReloadError, CacheShardStats, CacheStats, LatencyCache};
pub use curve::{CurveError, CurveGap, CurvePoint, LatencyCurve, PartialCurve};
pub use faults::{FaultKind, FaultPlan, FaultyBackend, RetryOutcome, RetryPolicy};
pub use incremental::EngineStats;
pub use measurement::Measurement;
pub use profiler::{LayerProfiler, MeasureError};
pub use runner::{
    FailedLayer, LayerCost, LayerTrace, NetworkReport, NetworkRunner, PartialNetworkReport,
    RunTrace, ThermalGovernor,
};
pub use stats::{SiteCounters, Stats, StatsSnapshot};
pub use timeline::Timeline;

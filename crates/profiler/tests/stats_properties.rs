//! Property tests for counter conservation in the observability layer
//! (PR 5 satellite).
//!
//! For any random sweep — arbitrary channel window, fault rates and fault
//! seed — the registry must satisfy exact conservation laws, and its
//! snapshot must render byte-identically at `jobs = 1` and `jobs = 8`.
//! These properties are what flushed out (and now pin) the cache's racy
//! miss accounting: before PR 5, two workers racing on the same fresh key
//! both counted a miss, so the hit/miss split depended on the schedule.

use std::sync::Arc;

use proptest::prelude::*;

use pruneperf_backends::AclGemm;
use pruneperf_gpusim::Device;
use pruneperf_models::{resnet50, ConvLayerSpec};
use pruneperf_profiler::faults::{FaultPlan, FaultyBackend};
use pruneperf_profiler::sweep::{contained_parallel_map_with_stats, set_sweep_jobs};
use pruneperf_profiler::{LatencyCache, LayerProfiler, PartialCurve, Stats};

fn l16() -> ConvLayerSpec {
    resnet50()
        .layer("ResNet.L16")
        .expect("ResNet.L16 exists")
        .clone()
}

/// One isolated faulted sweep; returns everything a property might assert
/// on: the partial curve, the cache counters, and the rendered snapshot.
struct SweepOutcome {
    partial: PartialCurve,
    cache_lookups: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_failures: u64,
    cache_entries: usize,
    sweep_items: u64,
    sweep_panics: u64,
    site_ops: u64,
    site_successes: u64,
    site_failures: u64,
    snapshot_json: String,
}

fn faulted_sweep(
    jobs: usize,
    seed: u64,
    transient: f64,
    permanent: f64,
    lo: usize,
    hi: usize,
) -> SweepOutcome {
    set_sweep_jobs(jobs);
    let cache = Arc::new(LatencyCache::new());
    let stats = Arc::new(Stats::new());
    let profiler = LayerProfiler::new(&Device::mali_g72_hikey970())
        .with_cache(cache.clone())
        .with_stats(stats.clone());
    let backend = FaultyBackend::new(
        AclGemm::new(),
        FaultPlan::new(seed)
            .with_transient_rate(transient)
            .with_permanent_rate(permanent),
    );
    let partial = profiler.latency_curve_partial(&backend, &l16(), lo..=hi);
    set_sweep_jobs(1);
    let cs = cache.stats();
    let sites = stats.sites();
    let (mut ops, mut ok, mut failed) = (0, 0, 0);
    for (_, c) in &sites {
        ops += c.operations;
        ok += c.successes;
        failed += c.failures;
    }
    SweepOutcome {
        partial,
        cache_lookups: cs.lookups,
        cache_hits: cs.hits,
        cache_misses: cs.misses,
        cache_failures: cs.failures,
        cache_entries: cs.entries,
        sweep_items: stats.sweep_items(),
        sweep_panics: stats.sweep_panics(),
        site_ops: ops,
        site_successes: ok,
        site_failures: failed,
        snapshot_json: stats.snapshot_with_cache(&cache).render_json(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `lookups == hits + misses + failures` and `entries == misses` for
    /// any sweep on a fresh cache, at sequential and parallel jobs alike.
    #[test]
    fn cache_counters_conserve(
        seed in 0u64..1_000,
        transient in 0.0f64..0.5,
        permanent in 0.0f64..0.25,
        lo in 40usize..110,
        width in 0usize..18,
    ) {
        for jobs in [1usize, 8] {
            let out = faulted_sweep(jobs, seed, transient, permanent, lo, lo + width);
            prop_assert_eq!(
                out.cache_lookups,
                out.cache_hits + out.cache_misses + out.cache_failures,
                "jobs={}", jobs
            );
            // Fresh cache: each miss inserted exactly one unique entry.
            prop_assert_eq!(out.cache_misses as usize, out.cache_entries, "jobs={}", jobs);
        }
    }

    /// The sweep registry sees every config exactly once, and the retry
    /// site's operations partition into successes (curve points) and
    /// failures (gaps).
    #[test]
    fn sweep_and_site_counters_conserve(
        seed in 0u64..1_000,
        transient in 0.0f64..0.5,
        permanent in 0.0f64..0.25,
        lo in 40usize..110,
        width in 0usize..18,
    ) {
        for jobs in [1usize, 8] {
            let out = faulted_sweep(jobs, seed, transient, permanent, lo, lo + width);
            let configs = (width + 1) as u64;
            prop_assert_eq!(out.sweep_items, configs, "jobs={}", jobs);
            prop_assert_eq!(out.sweep_panics, 0u64, "jobs={}", jobs);
            prop_assert_eq!(out.site_ops, configs, "jobs={}", jobs);
            prop_assert_eq!(out.site_successes + out.site_failures, out.site_ops, "jobs={}", jobs);
            let measured = out.partial.measured() as u64;
            let gaps = out.partial.gaps().len() as u64;
            prop_assert_eq!(out.site_successes, measured, "jobs={}", jobs);
            prop_assert_eq!(out.site_failures, gaps, "jobs={}", jobs);
            prop_assert_eq!(measured + gaps, configs, "jobs={}", jobs);
        }
    }

    /// The rendered snapshot — cache shards, sweep totals, retry sites —
    /// is byte-identical at jobs=1 and jobs=8.
    #[test]
    fn snapshots_are_byte_identical_across_jobs(
        seed in 0u64..1_000,
        transient in 0.0f64..0.5,
        permanent in 0.0f64..0.25,
        lo in 40usize..110,
        width in 0usize..18,
    ) {
        let sequential = faulted_sweep(1, seed, transient, permanent, lo, lo + width);
        let parallel = faulted_sweep(8, seed, transient, permanent, lo, lo + width);
        prop_assert_eq!(&sequential.snapshot_json, &parallel.snapshot_json);
        prop_assert_eq!(sequential.partial, parallel.partial);
    }

    /// `items == successes + panics` for a sweep where a random subset of
    /// items panic, at any worker count.
    #[test]
    fn sweep_items_partition_into_successes_and_panics(
        n in 0usize..120,
        panic_salt in any::<u64>(),
        panic_mod in 2u64..7,
    ) {
        for jobs in [1usize, 8] {
            let stats = Stats::new();
            let items: Vec<u64> = (0..n as u64).collect();
            let (slots, panics) = contained_parallel_map_with_stats(
                &items,
                jobs,
                &stats,
                |&x| {
                    // A pure pseudo-random predicate: deterministic per item.
                    assert!(
                        x.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(panic_salt) % panic_mod != 0,
                        "injected panic on {x}"
                    );
                    x
                },
            );
            let successes = slots.iter().filter(|s| s.is_some()).count() as u64;
            prop_assert_eq!(stats.sweep_items(), n as u64, "jobs={}", jobs);
            prop_assert_eq!(stats.sweep_panics(), panics.len() as u64, "jobs={}", jobs);
            prop_assert_eq!(
                stats.sweep_items(),
                successes + stats.sweep_panics(),
                "jobs={}", jobs
            );
            let worker_sum: u64 = stats.worker_items().iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(worker_sum, stats.sweep_items(), "jobs={}", jobs);
        }
    }
}

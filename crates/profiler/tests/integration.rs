//! Profiler integration across the full backend × device matrix.

use pruneperf_backends::{AclDirect, AclDirectTuned, AclGemm, ConvBackend, Cudnn, Tvm};
use pruneperf_gpusim::Device;
use pruneperf_models::{alexnet, resnet50};
use pruneperf_profiler::{LayerProfiler, NetworkRunner};

fn mali_backends() -> Vec<Box<dyn ConvBackend>> {
    vec![
        Box::new(AclGemm::new()),
        Box::new(AclDirect::new()),
        Box::new(AclDirectTuned::new()),
        Box::new(Tvm::new()),
    ]
}

/// Every backend × device pair yields a usable timeline whose kernel count
/// matches the plan and whose duration matches the measured latency.
#[test]
fn timelines_are_consistent_across_the_matrix() {
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    let mut cases: Vec<(Device, Box<dyn ConvBackend>)> = Vec::new();
    for d in [Device::mali_g72_hikey970(), Device::mali_t628_odroidxu4()] {
        for b in mali_backends() {
            cases.push((d.clone(), b));
        }
    }
    cases.push((Device::jetson_tx2(), Box::new(Cudnn::new())));
    cases.push((Device::jetson_nano(), Box::new(Cudnn::new())));

    for (device, backend) in cases {
        let profiler = LayerProfiler::noiseless(&device);
        let timeline = profiler.timeline(backend.as_ref(), &layer);
        let measured = profiler.measure(backend.as_ref(), &layer).median_ms();
        assert!(
            (timeline.total_ms() - measured).abs() < 1e-9,
            "{} on {}: timeline {} vs measured {}",
            backend.name(),
            device.name(),
            timeline.total_ms(),
            measured
        );
        assert!(!timeline.kernels().is_empty());
        assert!(timeline.counters().jobs as usize == timeline.kernels().len());
    }
}

/// The jitter process produces the documented outlier rate (~8%) over many
/// configurations — median-robustness is what the paper's methodology buys.
#[test]
fn jitter_outlier_rate_is_plausible() {
    let device = Device::mali_g72_hikey970();
    let noisy = LayerProfiler::new(&device).with_runs(10);
    let clean = LayerProfiler::noiseless(&device);
    let backend = AclGemm::new();
    let mut outliers = 0usize;
    let mut total = 0usize;
    let layer = resnet50().layer("ResNet.L16").unwrap().clone();
    for c in 64..=128 {
        let pruned = layer.with_c_out(c).unwrap();
        let base = clean.measure(&backend, &pruned).median_ms();
        for run in noisy.measure(&backend, &pruned).runs_ms() {
            total += 1;
            if *run > base * 1.05 {
                outliers += 1;
            }
        }
    }
    let rate = outliers as f64 / total as f64;
    assert!(
        (0.02..0.20).contains(&rate),
        "outlier rate {rate:.3} out of band"
    );
}

/// Median-of-10 suppresses the outliers: the reported median is within the
/// jitter band of the noise-free model for every configuration.
#[test]
fn median_suppresses_outliers_everywhere() {
    let device = Device::jetson_tx2();
    let noisy = LayerProfiler::new(&device);
    let clean = LayerProfiler::noiseless(&device);
    let backend = Cudnn::new();
    for layer in alexnet().layers() {
        let m = noisy.measure(&backend, layer).median_ms();
        let base = clean.measure(&backend, layer).median_ms();
        assert!(
            (m / base - 1.0).abs() < 0.05,
            "{}: median {m} vs base {base}",
            layer.label()
        );
    }
}

/// Curves are deterministic across profiler instances (no hidden state).
#[test]
fn curves_have_no_hidden_state() {
    let device = Device::mali_g72_hikey970();
    let layer = resnet50().layer("ResNet.L5").unwrap().clone();
    let a = LayerProfiler::new(&device).latency_curve(&AclGemm::new(), &layer, 32..=64);
    let b = LayerProfiler::new(&device).latency_curve(&AclGemm::new(), &layer, 32..=64);
    assert_eq!(a, b);
    // Sub-ranges agree with full sweeps point-by-point.
    let full = LayerProfiler::new(&device).latency_curve(&AclGemm::new(), &layer, 1..=64);
    for p in a.points() {
        assert_eq!(full.ms_at(p.channels), Some(p.measurement.median_ms()));
    }
}

/// Network runner totals agree with per-layer backend latencies.
#[test]
fn runner_matches_backend_sums() {
    let device = Device::jetson_nano();
    let backend = Cudnn::new();
    let net = alexnet();
    let report = NetworkRunner::new(&device).run(&backend, &net);
    let sum: f64 = net
        .layers()
        .iter()
        .map(|l| backend.latency_ms(l, &device))
        .sum();
    assert!((report.total_ms() - sum).abs() < 1e-9);
}

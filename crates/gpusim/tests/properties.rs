//! Property-based invariants of the GPU simulator.

use proptest::prelude::*;
use pruneperf_gpusim::{Device, Engine, Job, JobChain, KernelDesc};

fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
    (
        1usize..=2000, // global x
        1usize..=64,   // global y
        1usize..=16,   // global z
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(32)],
        1u64..=100_000, // arith per item
        0u64..=5_000,   // mem per item
        prop_oneof![Just(4u32), Just(16u32)],
        0.1f64..=1.0,  // coalescing
        0.0f64..0.99,  // cache hit
        0.05f64..=1.0, // exec efficiency
    )
        .prop_map(|(gx, gy, gz, lx, arith, mem, bytes, coal, hit, eff)| {
            KernelDesc::builder("prop")
                .global([gx, gy, gz])
                .local([lx.min(gx.next_power_of_two()), 1, 1])
                .arith_per_item(arith)
                .mem_per_item(mem)
                .bytes_per_mem(bytes)
                .coalescing(coal)
                .cache_hit(hit)
                .exec_efficiency(eff)
                .build()
        })
}

fn device_strategy() -> impl Strategy<Value = Device> {
    prop_oneof![
        Just(Device::mali_g72_hikey970()),
        Just(Device::mali_t628_odroidxu4()),
        Just(Device::jetson_tx2()),
        Just(Device::jetson_nano()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernel time is finite, positive and deterministic on every device.
    #[test]
    fn kernel_time_is_positive_finite_deterministic(
        kernel in kernel_strategy(),
        device in device_strategy(),
    ) {
        let engine = Engine::new(&device);
        let t1 = engine.kernel_time_us(&kernel);
        let t2 = engine.kernel_time_us(&kernel);
        prop_assert!(t1.is_finite());
        prop_assert!(t1 > 0.0);
        prop_assert_eq!(t1, t2);
    }

    /// More arithmetic per item never makes a kernel faster.
    #[test]
    fn time_is_monotone_in_arith(
        kernel in kernel_strategy(),
        device in device_strategy(),
        extra in 1u64..=100_000,
    ) {
        let engine = Engine::new(&device);
        let heavier = KernelDesc::builder(kernel.name())
            .global(kernel.global())
            .local(kernel.local())
            .arith_per_item(kernel.arith_per_item() + extra)
            .mem_per_item(kernel.mem_per_item())
            .bytes_per_mem(kernel.bytes_per_mem())
            .coalescing(kernel.coalescing())
            .cache_hit(kernel.cache_hit())
            .exec_efficiency(kernel.exec_efficiency())
            .build();
        prop_assert!(engine.kernel_time_us(&heavier) >= engine.kernel_time_us(&kernel));
    }

    /// Chain time equals the sum of its kernels' wall intervals, counters
    /// are additive, and energy is positive.
    #[test]
    fn chain_invariants(
        kernels in proptest::collection::vec(kernel_strategy(), 1..5),
        device in device_strategy(),
        own_submission in any::<bool>(),
    ) {
        let mut chain = JobChain::new();
        let n = kernels.len();
        for (i, k) in kernels.into_iter().enumerate() {
            if own_submission && i == n - 1 {
                chain.push(Job::with_own_submission(k));
            } else {
                chain.push(Job::new(k));
            }
        }
        let report = Engine::new(&device).run_chain(&chain);
        prop_assert_eq!(report.counters().jobs, n as u64);
        prop_assert_eq!(report.counters().interrupts, n as u64);
        prop_assert_eq!(
            report.counters().submissions,
            if own_submission { 2 } else { 1 }
        );
        // Timeline is contiguous and its end equals the total.
        let last_end = report.kernels().last().expect("non-empty").end_us;
        prop_assert!((last_end - report.total_time_us()).abs() < 1e-6);
        prop_assert!(report.total_energy_mj() > 0.0);
        // Instruction totals are the sum of per-kernel counts.
        let sum: u64 = report.kernels().iter().map(|k| k.arith_instructions).sum();
        prop_assert_eq!(sum, report.total_arith());
    }

    /// Splitting a dispatch into two kernels of half the columns never
    /// beats the single dispatch once per-job overhead is counted.
    #[test]
    fn splitting_work_adds_overhead(
        device in device_strategy(),
        items in 64usize..=4096,
        arith in 100u64..=10_000,
    ) {
        let make = |n: usize| {
            KernelDesc::builder("k")
                .global([n, 1, 1])
                .local([4, 1, 1])
                .arith_per_item(arith)
                .build()
        };
        let engine = Engine::new(&device);
        let whole = engine
            .run_chain(&JobChain::from_kernels(vec![make(items)]))
            .total_time_us();
        let halves = engine
            .run_chain(&JobChain::from_kernels(vec![
                make(items / 2),
                make(items - items / 2),
            ]))
            .total_time_us();
        prop_assert!(halves >= whole * 0.999, "split {halves} < whole {whole}");
    }

    /// Energy accounting matches the closed form: ops·pJ + bytes·pJ +
    /// dispatch power × overhead time.
    #[test]
    fn energy_closed_form(
        kernel in kernel_strategy(),
        device in device_strategy(),
    ) {
        let engine = Engine::new(&device);
        let report = engine.run_chain(&JobChain::from_kernels(vec![kernel.clone()]));
        let k = &report.kernels()[0];
        let dram_bytes = kernel.total_mem() as f64
            * kernel.bytes_per_mem() as f64
            * (1.0 - kernel.cache_hit());
        let expect_uj = (kernel.total_arith() as f64 * device.pj_per_op()
            + dram_bytes * device.pj_per_dram_byte())
            / 1e6;
        prop_assert!((k.energy_uj - expect_uj).abs() <= expect_uj * 1e-9 + 1e-12);
        let expect_dispatch = device.dispatch_mw() * device.job_dispatch_us() / 1e6;
        prop_assert!((report.dispatch_energy_uj() - expect_dispatch).abs() < 1e-9);
    }
}

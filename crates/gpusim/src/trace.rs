//! Event-level execution traces: which core ran which workgroups when.
//!
//! The paper's full-system simulator (§IV-B, their \[22\]) exposes exactly
//! this level of observability — job dispatch, per-core activity,
//! utilization — which aggregate timing hides. [`Engine::trace_chain`]
//! replays a job chain through the list scheduler and records one event per
//! (core, workgroup-batch) assignment, enabling utilization analysis and
//! the ASCII Gantt rendering used by the `simulator_deep_dive` example.
//!
//! Tracing batches contiguous same-cost workgroups per core (there can be
//! hundreds of thousands), so traces stay small while preserving the
//! schedule structure.

use serde::{Deserialize, Serialize};

use crate::{Device, Engine, JobChain};

/// One contiguous span of work executed by a core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Kernel the span belongs to.
    pub kernel: String,
    /// Core index.
    pub core: usize,
    /// Span start, µs from chain start.
    pub start_us: f64,
    /// Span end, µs.
    pub end_us: f64,
    /// Workgroups executed in the span.
    pub workgroups: usize,
}

/// A full chain execution trace.
///
/// ```
/// use pruneperf_gpusim::{Device, Engine, JobChain, KernelDesc};
///
/// let device = Device::jetson_tx2();
/// let kernel = KernelDesc::builder("k")
///     .global([640, 1, 1])
///     .local([32, 1, 1])
///     .arith_per_item(1000)
///     .build();
/// let trace = Engine::new(&device).trace_chain(&JobChain::from_kernels(vec![kernel]));
/// assert!(trace.utilization() > 0.0);
/// assert!(trace.gantt(40).contains("core  0"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainTrace {
    device: String,
    cores: usize,
    spans: Vec<TraceSpan>,
    total_us: f64,
}

impl ChainTrace {
    /// Builds a trace from raw parts.
    ///
    /// Intended for tooling that needs to construct (possibly deliberately
    /// inconsistent) traces — e.g. the `pruneperf-analysis` schedule
    /// auditor's seeded-violation tests. [`Engine::trace_chain`] is the
    /// only producer of real traces.
    pub fn from_parts(device: &str, cores: usize, spans: Vec<TraceSpan>, total_us: f64) -> Self {
        ChainTrace {
            device: device.to_string(),
            cores,
            spans,
            total_us,
        }
    }

    /// Device the trace was recorded on.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Core count of the traced device.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Spans in dispatch order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Total traced duration, µs (including dispatch gaps).
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Busy time of one core, µs.
    pub fn core_busy_us(&self, core: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.end_us - s.start_us)
            .sum()
    }

    /// Device-wide utilization in `[0, 1]`: busy core-time over
    /// `cores × total`.
    pub fn utilization(&self) -> f64 {
        if self.total_us <= 0.0 {
            return 0.0;
        }
        let busy: f64 = (0..self.cores).map(|c| self.core_busy_us(c)).sum();
        busy / (self.cores as f64 * self.total_us)
    }

    /// Renders an ASCII Gantt chart, `width` characters wide.
    ///
    /// Each row is a core; letters identify kernels in dispatch order
    /// (`a` = first kernel, `b` = second, …), `.` is idle time.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let mut kernel_order: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !kernel_order.contains(&s.kernel.as_str()) {
                kernel_order.push(&s.kernel);
            }
        }
        let mut out = String::new();
        for core in 0..self.cores {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.core == core) {
                let from = ((s.start_us / self.total_us) * width as f64) as usize;
                let to = (((s.end_us / self.total_us) * width as f64).ceil() as usize).min(width);
                let idx = kernel_order
                    .iter()
                    .position(|k| *k == s.kernel)
                    // lint: allow(unwrap) — kernel_order is built from these spans
                    .expect("kernel registered above");
                let glyph = (b'a' + (idx % 26) as u8) as char;
                for slot in row.iter_mut().take(to).skip(from) {
                    *slot = glyph;
                }
            }
            out.push_str(&format!("core {core:>2} |"));
            out.extend(row);
            out.push('\n');
        }
        out.push_str("legend: ");
        for (i, k) in kernel_order.iter().enumerate() {
            out.push_str(&format!("{}={k} ", (b'a' + (i % 26) as u8) as char));
        }
        out.push('\n');
        out
    }
}

impl Engine<'_> {
    /// Executes a chain and records the per-core schedule.
    ///
    /// The trace is consistent with [`Engine::run_chain`]: kernels start
    /// after their dispatch overhead and occupy `ceil(wgs / cores)` waves.
    pub fn trace_chain(&self, chain: &JobChain) -> ChainTrace {
        let d: &Device = self.device();
        let mut now_us = 0.0f64;
        let mut spans = Vec::new();
        for job in chain.jobs() {
            let kernel = job.kernel();
            let mut overhead = d.job_dispatch_us();
            if job.needs_own_submission() {
                overhead += d.job_sync_us();
            }
            now_us += overhead;
            let gpu_us = self.kernel_cost(kernel).gpu_us;
            let wgs = kernel.workgroup_count();
            let cores = d.cores();
            let waves = wgs.div_ceil(cores);
            let per_wave_us = gpu_us / waves as f64;
            for core in 0..cores.min(wgs) {
                let core_waves = if waves == 0 {
                    0
                } else if wgs % cores == 0 || core < wgs % cores {
                    waves
                } else {
                    waves - 1
                };
                if core_waves == 0 {
                    continue;
                }
                spans.push(TraceSpan {
                    kernel: kernel.name().to_string(),
                    core,
                    start_us: now_us,
                    end_us: now_us + per_wave_us * core_waves as f64,
                    workgroups: core_waves,
                });
            }
            now_us += gpu_us;
        }
        ChainTrace {
            device: d.name().to_string(),
            cores: d.cores(),
            spans,
            total_us: now_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelDesc;

    fn kernel(name: &str, items: usize) -> KernelDesc {
        KernelDesc::builder(name)
            .global([items, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build()
    }

    #[test]
    fn trace_matches_run_chain_total() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![kernel("a", 4096), kernel("b", 512)]);
        let trace = e.trace_chain(&chain);
        let report = e.run_chain(&chain);
        assert!((trace.total_us() - report.total_time_us()).abs() < 1e-6);
    }

    #[test]
    fn spans_cover_all_cores_for_large_dispatches() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let trace = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 4096)]));
        let cores_used: std::collections::HashSet<usize> =
            trace.spans().iter().map(|s| s.core).collect();
        assert_eq!(cores_used.len(), d.cores());
    }

    #[test]
    fn small_dispatches_leave_cores_idle() {
        let d = Device::mali_g72_hikey970(); // 12 cores
        let e = Engine::new(&d);
        // 3 workgroups -> only 3 cores busy.
        let trace = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 12)]));
        let cores_used: std::collections::HashSet<usize> =
            trace.spans().iter().map(|s| s.core).collect();
        assert_eq!(cores_used.len(), 3);
        assert!(trace.utilization() < 0.5);
    }

    #[test]
    fn utilization_reflects_dispatch_overhead() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let busy = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 48_000)]));
        let tiny = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 12)]));
        assert!(busy.utilization() > 0.8, "{}", busy.utilization());
        assert!(tiny.utilization() < busy.utilization());
    }

    #[test]
    fn gantt_renders_rows_and_legend() {
        let d = Device::jetson_tx2();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![kernel("alpha", 640), kernel("beta", 64)]);
        let g = e.trace_chain(&chain).gantt(60);
        assert!(g.contains("core  0 |"), "{g}");
        assert!(g.contains("core  1 |"), "{g}");
        assert!(g.contains("a=alpha"), "{g}");
        assert!(g.contains("b=beta"), "{g}");
        // Idle dispatch gaps show as dots.
        assert!(g.contains('.'), "{g}");
    }

    #[test]
    fn single_core_device_traces_consistently() {
        let d = Device::jetson_nano(); // 1 core
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![kernel("a", 640), kernel("b", 64)]);
        let trace = e.trace_chain(&chain);
        assert_eq!(trace.cores(), 1);
        assert!(trace.spans().iter().all(|s| s.core == 0));
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        let report = e.run_chain(&chain);
        assert!((trace.total_us() - report.total_time_us()).abs() < 1e-6);
    }

    #[test]
    fn zero_arith_kernel_still_costs_launch_time() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        // No arithmetic and no memory traffic: workgroup launch cycles
        // alone must keep every span non-empty and utilization positive.
        let k = KernelDesc::builder("empty")
            .global([64, 1, 1])
            .local([4, 1, 1])
            .build();
        let trace = e.trace_chain(&JobChain::from_kernels(vec![k]));
        assert!(!trace.spans().is_empty());
        assert!(trace.spans().iter().all(|s| s.end_us > s.start_us));
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn gantt_width_one_clamps_and_renders() {
        let d = Device::jetson_tx2();
        let e = Engine::new(&d);
        let trace = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 640)]));
        // Degenerate width is clamped to a usable minimum, never panics.
        let g = trace.gantt(1);
        assert!(g.contains("core  0 |"), "{g}");
        assert!(g.contains("a=a"), "{g}");
        let u = trace.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn empty_trace_from_parts_reports_zero_utilization() {
        let t = ChainTrace::from_parts("synthetic", 2, Vec::new(), 0.0);
        assert_eq!(t.utilization(), 0.0); // lint: allow(float-eq) — exact guard value
        assert_eq!(t.cores(), 2);
        assert_eq!(t.device(), "synthetic");
    }

    #[test]
    fn uneven_last_wave_is_shorter_on_some_cores() {
        let d = Device::jetson_tx2(); // 2 cores
        let e = Engine::new(&d);
        // 3 workgroups on 2 cores: core 0 gets 2 waves, core 1 gets 1.
        let trace = e.trace_chain(&JobChain::from_kernels(vec![kernel("a", 12)]));
        let c0 = trace.core_busy_us(0);
        let c1 = trace.core_busy_us(1);
        assert!(c0 > c1, "c0 {c0} c1 {c1}");
        assert!((c0 / c1 - 2.0).abs() < 0.01);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::KernelDesc;

    #[test]
    fn trace_serializes() {
        let d = Device::jetson_tx2();
        let k = KernelDesc::builder("k")
            .global([64, 1, 1])
            .local([32, 1, 1])
            .arith_per_item(10)
            .build();
        let trace = Engine::new(&d).trace_chain(&JobChain::from_kernels(vec![k]));
        let json = serde_json::to_string(&trace).expect("serializes");
        let back: ChainTrace = serde_json::from_str(&json).expect("parses");
        assert_eq!(trace.spans().len(), back.spans().len());
        assert_eq!(json, serde_json::to_string(&back).expect("stable"));
    }
}

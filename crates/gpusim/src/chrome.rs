//! Chrome-trace-format export for simulator traces and reports.
//!
//! Renders [`ChainTrace`](crate::ChainTrace) spans and
//! [`ChainReport`](crate::ChainReport) kernels as Chrome Trace Event
//! Format JSON (the `{"traceEvents": [...]}` flavour) so whole runs can
//! be opened in `chrome://tracing` / Perfetto. All timestamps are
//! *virtual* microseconds from the deterministic simulator — rendering
//! is a pure function of the trace, so output is byte-identical across
//! runs and worker counts.
//!
//! Events are kept deliberately minimal: `X` (complete) events for
//! spans, `M` (metadata) events for process/thread names, and string or
//! integer `args`. Values are hand-rendered in a fixed field order, the
//! same idiom used by the chaos and analysis JSON reports.

use crate::{ChainReport, ChainTrace};

/// One Chrome Trace Event Format event.
///
/// Only the event shapes the exporter emits are modelled: complete
/// (`ph:"X"`) spans and metadata (`ph:"M"`) records. Construct with
/// [`ChromeEvent::complete`], [`ChromeEvent::process_name`] or
/// [`ChromeEvent::thread_name`], then attach `args` with
/// [`ChromeEvent::arg_str`] / [`ChromeEvent::arg_num`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    name: String,
    cat: String,
    ph: char,
    ts_us: f64,
    dur_us: Option<f64>,
    pid: u64,
    tid: u64,
    /// `(key, pre-rendered JSON value)` pairs in insertion order.
    args: Vec<(String, String)>,
}

impl ChromeEvent {
    /// A complete (`ph:"X"`) event spanning `[ts_us, ts_us + dur_us)`.
    pub fn complete(name: &str, cat: &str, ts_us: f64, dur_us: f64, pid: u64, tid: u64) -> Self {
        ChromeEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us: Some(dur_us),
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// A `process_name` metadata event labelling `pid` in the viewer.
    pub fn process_name(pid: u64, name: &str) -> Self {
        ChromeEvent {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid: 0,
            args: vec![("name".to_string(), json_string(name))],
        }
    }

    /// A `thread_name` metadata event labelling `(pid, tid)` in the viewer.
    pub fn thread_name(pid: u64, tid: u64, name: &str) -> Self {
        ChromeEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: None,
            pid,
            tid,
            args: vec![("name".to_string(), json_string(name))],
        }
    }

    /// Attaches a string argument (shown in the viewer's detail pane).
    pub fn arg_str(mut self, key: &str, value: &str) -> Self {
        // lint: allow(grow) — event builder: a few args per trace event, serialized and dropped
        self.args.push((key.to_string(), json_string(value)));
        self
    }

    /// Attaches a numeric argument rendered with `Display` (integers stay
    /// integers; floats use Rust's shortest round-trip form).
    pub fn arg_num<N: std::fmt::Display>(mut self, key: &str, value: N) -> Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// Event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Thread lane the event renders on.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Start timestamp, virtual µs.
    pub fn ts_us(&self) -> f64 {
        self.ts_us
    }

    /// Duration for complete events, virtual µs.
    pub fn dur_us(&self) -> Option<f64> {
        self.dur_us
    }

    fn render(&self, out: &mut String) {
        out.push_str("{\"name\": ");
        out.push_str(&json_string(&self.name));
        out.push_str(", \"cat\": ");
        out.push_str(&json_string(&self.cat));
        out.push_str(&format!(", \"ph\": \"{}\"", self.ph));
        out.push_str(&format!(", \"ts\": {}", self.ts_us));
        if let Some(dur) = self.dur_us {
            out.push_str(&format!(", \"dur\": {dur}"));
        }
        out.push_str(&format!(", \"pid\": {}, \"tid\": {}", self.pid, self.tid));
        if !self.args.is_empty() {
            out.push_str(", \"args\": {");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(k));
                out.push_str(": ");
                out.push_str(v);
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// Renders events as a Chrome Trace Event Format JSON document.
///
/// Field order, spacing and number formatting are fixed, so equal event
/// lists render to byte-identical documents.
pub fn render_trace(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("    ");
        ev.render(&mut out);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ChainTrace {
    /// Converts the per-core schedule into Chrome trace events.
    ///
    /// Each simulated core becomes a thread lane (`tid` = core index);
    /// every [`TraceSpan`](crate::TraceSpan) becomes one complete event
    /// shifted by `offset_us`, carrying its workgroup count as an arg.
    /// Metadata (process/thread names) is *not* emitted here so several
    /// chains can share one set of lanes — callers emit it once via
    /// [`ChromeEvent::process_name`] / [`ChromeEvent::thread_name`].
    pub fn chrome_events(&self, pid: u64, offset_us: f64) -> Vec<ChromeEvent> {
        self.spans()
            .iter()
            .map(|s| {
                ChromeEvent::complete(
                    &s.kernel,
                    "kernel",
                    offset_us + s.start_us,
                    s.end_us - s.start_us,
                    pid,
                    s.core as u64,
                )
                .arg_num("workgroups", s.workgroups)
            })
            .collect()
    }
}

impl ChainReport {
    /// Converts per-kernel timing into Chrome trace events on one lane.
    ///
    /// Kernels appear back-to-back (dispatch gaps stay visible as idle
    /// time) with instruction counts and energy attached as args. Useful
    /// when only the aggregate report is available — span-level traces
    /// come from [`ChainTrace::chrome_events`].
    pub fn chrome_events(&self, pid: u64, tid: u64, offset_us: f64) -> Vec<ChromeEvent> {
        self.kernels()
            .iter()
            .map(|k| {
                ChromeEvent::complete(
                    &k.name,
                    "kernel",
                    offset_us + k.start_us,
                    k.end_us - k.start_us,
                    pid,
                    tid,
                )
                .arg_num("arith", k.arith_instructions)
                .arg_num("mem", k.mem_instructions)
                .arg_num("workgroups", k.workgroups)
                .arg_num("energy_uj", k.energy_uj)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Device, Engine, JobChain, KernelDesc};

    fn chain() -> JobChain {
        let k = KernelDesc::builder("gemm_mm")
            .global([640, 1, 1])
            .local([32, 1, 1])
            .arith_per_item(1000)
            .build();
        JobChain::from_kernels(vec![k])
    }

    #[test]
    fn trace_events_cover_all_spans() {
        let d = Device::mali_g72_hikey970();
        let trace = Engine::new(&d).trace_chain(&chain());
        let events = trace.chrome_events(1, 0.0);
        assert_eq!(events.len(), trace.spans().len());
        assert!(events.iter().all(|e| e.name() == "gemm_mm"));
    }

    #[test]
    fn report_events_match_kernels() {
        let d = Device::mali_g72_hikey970();
        let report = Engine::new(&d).run_chain(&chain());
        let events = report.chrome_events(0, 7, 10.0);
        assert_eq!(events.len(), report.kernels().len());
        assert_eq!(events[0].tid(), 7);
        assert!(events[0].ts_us() >= 10.0);
    }

    #[test]
    fn render_is_valid_and_stable() {
        let events = vec![
            ChromeEvent::process_name(0, "pruneperf"),
            ChromeEvent::thread_name(0, 0, "core 0"),
            ChromeEvent::complete("k \"q\"", "kernel", 1.5, 2.25, 0, 0).arg_num("workgroups", 4),
        ];
        let a = render_trace(&events);
        let b = render_trace(&events);
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\\\"q\\\""));
        assert!(a.contains("\"ph\": \"X\""));
        assert!(a.contains("\"dur\": 2.25"));
        let parsed: serde::Value = serde_json::from_str(&a).expect("valid JSON");
        assert!(parsed.get("traceEvents").is_some());
    }

    #[test]
    fn empty_event_list_renders_empty_array() {
        let doc = render_trace(&[]);
        let parsed: serde::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(|v| v.as_array());
        assert_eq!(events.map(|a| a.len()), Some(0));
    }

    #[test]
    fn offset_shifts_all_events() {
        let d = Device::jetson_tx2();
        let trace = Engine::new(&d).trace_chain(&chain());
        let base = trace.chrome_events(0, 0.0);
        let shifted = trace.chrome_events(0, 100.0);
        for (a, b) in base.iter().zip(&shifted) {
            assert!((b.ts_us() - a.ts_us() - 100.0).abs() < 1e-9);
            assert_eq!(a.dur_us(), b.dur_us());
        }
    }
}

use crate::{ChainReport, Device, JobChain, KernelDesc, KernelReport, SystemCounters};

/// Executes job chains on a [`Device`] and produces timing plus counters.
///
/// # Timing model
///
/// Execution is workgroup-granular. For each kernel the engine derives a
/// per-workgroup cycle cost from the kernel's instruction mix, then an
/// event-driven scheduler assigns workgroups to the earliest-available core;
/// the kernel's GPU time is the makespan. The per-workgroup cost combines:
///
/// * **compute**: `warps × arith_per_item / pipes / exec_efficiency`, where
///   `pipes = lanes_per_core / warp_width` — warp-quantized SIMT issue;
/// * **memory bandwidth**: DRAM traffic after cache filtering, divided by
///   the core's fair bandwidth share and the coalescing efficiency;
/// * **exposed latency**: each memory instruction pays
///   `latency × (1 − hiding)` with hiding proportional to resident warps —
///   small dispatches cannot hide latency, which is what makes the split
///   remainder GEMM of §IV-B1 so much slower than its size suggests;
/// * a fixed per-workgroup launch overhead.
///
/// Job overheads (dispatch, separate submission) are CPU-side and serialize
/// with GPU execution, matching the paper's observation that “additional job
/// creation and dispatch … adds to the initialization cost on the GPU”.
///
/// # Cost vs. report paths
///
/// [`Engine::run_chain`] produces a full [`ChainReport`] (per-kernel
/// timeline entries with owned name strings). Callers that only need the
/// chain totals — the profiler's sweep loops issue tens of thousands of
/// such queries per `repro all` — should use [`Engine::chain_cost`] /
/// [`Engine::chain_cost_by`], which accumulate the same numbers in the
/// same order without allocating, so the results are bitwise identical to
/// the corresponding report totals.
#[derive(Debug, Clone)]
pub struct Engine<'d> {
    device: &'d Device,
}

/// Cost of one kernel on one device: the three scalars `run_chain` derives
/// per kernel beyond the kernel's own static instruction counts.
///
/// This is the unit the profiler memoizes for incremental sweeps: two
/// kernels that agree on every cost-relevant descriptor field
/// ([`KernelDesc::cost_equivalent`]) have bitwise-equal `KernelCost`s on
/// the same device, so a memoized cost can stand in for a recomputed one
/// without perturbing any downstream float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// GPU execution time in µs (`gpu_cycles / clock_mhz`).
    pub gpu_us: f64,
    /// Exact (unrounded) GPU cycle count: `wg_cycles × waves`.
    pub gpu_cycles: f64,
    /// Kernel energy in µJ: arithmetic ops plus post-cache DRAM traffic.
    pub energy_uj: f64,
}

/// Aggregate cost of a job chain: the allocation-free counterpart of
/// [`ChainReport`] for callers that only need totals.
///
/// Produced by [`Engine::chain_cost`] / [`Engine::chain_cost_by`]. Fields
/// accumulate in the same order as `run_chain`, so [`Self::total_time_ms`]
/// and [`Self::total_energy_mj`] are bitwise identical to the
/// corresponding [`ChainReport`] accessors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChainCost {
    /// End-to-end chain latency in µs, including dispatch overheads.
    pub total_time_us: f64,
    /// Sum of per-kernel energies in µJ, accumulated in chain order.
    pub kernel_energy_uj: f64,
    /// CPU/driver energy spent dispatching the chain, µJ.
    pub dispatch_energy_uj: f64,
}

impl ChainCost {
    /// End-to-end chain latency in milliseconds (the figures' unit).
    pub fn total_time_ms(&self) -> f64 {
        self.total_time_us / 1000.0
    }

    /// Total energy of the chain (GPU kernels + dispatch), millijoules.
    pub fn total_energy_mj(&self) -> f64 {
        (self.kernel_energy_uj + self.dispatch_energy_uj) / 1000.0
    }
}

/// Reusable struct-of-arrays scratch for chain simulation.
///
/// Per-kernel costs are stored as parallel columns indexed by job
/// position, and the list scheduler's core-load array lives here too.
/// Capacity is retained across calls, so a caller that threads one
/// scratch through a sweep loop ([`Engine::run_chain_with`],
/// [`Engine::makespan_cycles_with`]) does no per-run allocation in the
/// simulation hot loop.
#[derive(Debug, Clone, Default)]
pub struct ChainScratch {
    gpu_us: Vec<f64>,
    gpu_cycles: Vec<f64>,
    energy_uj: Vec<f64>,
    core_loads: Vec<f64>,
}

impl ChainScratch {
    /// An empty scratch; columns grow on first use and are then reused.
    pub fn new() -> Self {
        ChainScratch::default()
    }

    fn reset(&mut self, len: usize) {
        self.gpu_us.clear();
        self.gpu_cycles.clear();
        self.energy_uj.clear();
        self.gpu_us.reserve(len);
        self.gpu_cycles.reserve(len);
        self.energy_uj.reserve(len);
    }
}

impl<'d> Engine<'d> {
    /// Creates an engine bound to a device.
    pub fn new(device: &'d Device) -> Self {
        Engine { device }
    }

    /// The device this engine simulates.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Cycles one workgroup of `kernel` takes on this device.
    ///
    /// # Partial dispatches (`workgroup_count < cores`)
    ///
    /// The two occupancy-dependent terms intentionally use different
    /// denominators, and the asymmetry is the model, not an accident:
    ///
    /// * **bandwidth share** divides DRAM bandwidth over the *occupied*
    ///   cores (`cores.min(workgroup_count)`): idle cores issue no
    ///   traffic, so a 6-workgroup dispatch on a 12-core device gives
    ///   each occupied core a 2× share and the dispatch as a whole still
    ///   sees full aggregate bandwidth;
    /// * **latency hiding** uses the per-core residency of the *busiest*
    ///   core (`workgroup_count.div_ceil(cores)`, capped by the
    ///   resident-thread budget). The busiest core is the one that
    ///   determines the makespan, and in the uneven regime
    ///   (`cores < workgroup_count < 2·cores`) it really does hold two
    ///   workgroups whose warps hide each other's latency — costing every
    ///   workgroup at the busiest core's residency is a deliberate,
    ///   slightly optimistic-on-stall / exact-on-critical-path choice.
    ///
    /// `partial_dispatch_tests` pins both behaviours.
    fn workgroup_cycles(&self, kernel: &KernelDesc) -> f64 {
        let d = self.device;
        let wg_size = kernel.workgroup_size();
        let warps = wg_size.div_ceil(d.warp_width());
        let pipes = (d.lanes_per_core() / d.warp_width()).max(1);

        // SIMT compute issue.
        let compute =
            warps as f64 * kernel.arith_per_item() as f64 / pipes as f64 / kernel.exec_efficiency();

        // DRAM bandwidth demand after cache filtering.
        let bytes = wg_size as f64
            * kernel.mem_per_item() as f64
            * kernel.bytes_per_mem() as f64
            * (1.0 - kernel.cache_hit());
        let active_cores = d.cores().min(kernel.workgroup_count().max(1));
        let share = d.dram_bytes_per_cycle() / active_cores as f64;
        let mem = bytes / share / kernel.coalescing();

        // Exposed memory latency under partial occupancy: a core can hold
        // workgroups up to its resident-thread budget, but never more than
        // its share of the dispatch.
        let occupancy_cap = (d.max_resident_threads() / wg_size).max(1);
        let resident_wgs = occupancy_cap.min(kernel.workgroup_count().div_ceil(d.cores()).max(1));
        let resident_warps = (warps * resident_wgs).max(1);
        let hiding = (resident_warps as f64 / d.latency_hiding_warps() as f64).min(1.0);
        let mem_warp_instrs = warps as f64 * kernel.mem_per_item() as f64;
        let stall = mem_warp_instrs * d.mem_latency_cycles() as f64 * (1.0 - hiding)
            / resident_warps as f64;

        compute.max(mem) + stall + d.wg_launch_cycles() as f64
    }

    /// GPU cycles for a whole kernel: greedy assignment of workgroups to
    /// the earliest-available core (list scheduling). All workgroups of one
    /// kernel cost the same, so the earliest-available-core schedule has a
    /// closed-form makespan: `ceil(workgroups / cores)` waves — exactly the
    /// wave quantization behind the cuDNN staircase steps.
    fn kernel_cycles(&self, kernel: &KernelDesc) -> f64 {
        let wg_cycles = self.workgroup_cycles(kernel);
        let waves = kernel.workgroup_count().div_ceil(self.device.cores());
        wg_cycles * waves as f64
    }

    /// Event-driven list scheduling for *heterogeneous* workgroup costs:
    /// assigns each cost to the earliest-available core and returns the
    /// makespan in cycles. Exposed for extensions (asymmetric core
    /// clusters, fused multi-kernel dispatches).
    ///
    /// Core loads accumulate exactly in `f64` — no quantization, no
    /// integer saturation. (An earlier implementation rounded each cost to
    /// integer milli-cycles, which truncated sub-milli-cycle costs to zero
    /// and silently saturated `u64` for huge ones.) Bitwise-uniform cost
    /// lists take a closed-form path, so the result is *exactly*
    /// `cost × ceil(len / cores)` — the wave formula behind
    /// [`Engine::kernel_time_us`].
    pub fn makespan_cycles(&self, wg_costs: &[f64]) -> f64 {
        self.makespan_cycles_with(wg_costs, &mut ChainScratch::new())
    }

    /// [`Engine::makespan_cycles`] with caller-owned scratch, so repeated
    /// scheduling (sweep loops, benches) reuses the core-load array.
    pub fn makespan_cycles_with(&self, wg_costs: &[f64], scratch: &mut ChainScratch) -> f64 {
        let Some((&first, rest)) = wg_costs.split_first() else {
            return 0.0;
        };
        let cores = self.device.cores();
        if rest.iter().all(|c| c.to_bits() == first.to_bits()) {
            // Uniform costs: closed-form wave makespan, exact by
            // construction rather than by accumulation.
            let waves = wg_costs.len().div_ceil(cores);
            return first * waves as f64;
        }
        let loads = &mut scratch.core_loads;
        loads.clear();
        loads.resize(cores, 0.0);
        for &cost in wg_costs {
            // Earliest-available core. Among tied minima any choice yields
            // the same load multiset (hence the same makespan); taking the
            // lowest index keeps the schedule deterministic.
            let mut min_core = 0;
            let mut min_load = loads[0];
            for (i, &load) in loads.iter().enumerate().skip(1) {
                if load < min_load {
                    min_core = i;
                    min_load = load;
                }
            }
            loads[min_core] += cost;
        }
        loads.iter().fold(0.0f64, |acc, &l| acc.max(l))
    }

    /// Runs one kernel in isolation and reports its GPU time in µs
    /// (no job-dispatch overhead).
    pub fn kernel_time_us(&self, kernel: &KernelDesc) -> f64 {
        self.kernel_cycles(kernel) / self.device.clock_mhz() as f64
    }

    /// Full per-kernel cost: time, exact cycles and energy in one pass.
    ///
    /// `gpu_cycles` is the exact `wg_cycles × waves` product — reports
    /// carry it through directly instead of re-deriving it from µs, which
    /// was a lossy round-trip that could drift by ±1 cycle.
    pub fn kernel_cost(&self, kernel: &KernelDesc) -> KernelCost {
        let d = self.device;
        let gpu_cycles = self.kernel_cycles(kernel);
        let gpu_us = gpu_cycles / d.clock_mhz() as f64;
        // Energy: ops + DRAM traffic. (pJ * count / 1e6 -> µJ.)
        let dram_bytes =
            kernel.total_mem() as f64 * kernel.bytes_per_mem() as f64 * (1.0 - kernel.cache_hit());
        let energy_uj =
            (kernel.total_arith() as f64 * d.pj_per_op() + dram_bytes * d.pj_per_dram_byte()) / 1e6;
        KernelCost {
            gpu_us,
            gpu_cycles,
            energy_uj,
        }
    }

    /// Chain totals with per-kernel costs supplied by `cost_of` — the
    /// incremental-profiling entry point: a memo can answer for kernels it
    /// has already costed and fall back to [`Engine::kernel_cost`] for the
    /// rest. Accumulation order matches [`Engine::run_chain`] exactly, so
    /// feeding back memoized [`KernelCost`]s reproduces the cold totals
    /// bit for bit.
    pub fn chain_cost_by<F>(&self, chain: &JobChain, mut cost_of: F) -> ChainCost
    where
        F: FnMut(&KernelDesc) -> KernelCost,
    {
        let d = self.device;
        let mut total = ChainCost::default();
        for (kernel, own_submission) in chain.iter() {
            let mut overhead = d.job_dispatch_us();
            if own_submission {
                overhead += d.job_sync_us();
            }
            let cost = cost_of(kernel);
            total.total_time_us += overhead + cost.gpu_us;
            // mW * µs = nJ; / 1000 -> µJ.
            total.dispatch_energy_uj += d.dispatch_mw() * overhead / 1e6;
            total.kernel_energy_uj += cost.energy_uj;
        }
        total
    }

    /// Chain totals without building a report: no strings, no vectors.
    /// Bitwise identical to the totals of [`Engine::run_chain`].
    pub fn chain_cost(&self, chain: &JobChain) -> ChainCost {
        self.chain_cost_by(chain, |k| self.kernel_cost(k))
    }

    /// Executes a chain of dependent jobs and reports the full timeline,
    /// instruction counts and system-level counters.
    pub fn run_chain(&self, chain: &JobChain) -> ChainReport {
        self.run_chain_with(chain, &mut ChainScratch::new())
    }

    /// [`Engine::run_chain`] with caller-owned scratch: per-kernel costs
    /// are computed into the scratch's struct-of-arrays columns first and
    /// the report is assembled from them, so loops that trace many chains
    /// (timelines, sweep events) reuse the cost buffers across calls.
    pub fn run_chain_with(&self, chain: &JobChain, scratch: &mut ChainScratch) -> ChainReport {
        let d = self.device;
        scratch.reset(chain.len());
        for (kernel, _) in chain.iter() {
            let cost = self.kernel_cost(kernel);
            scratch.gpu_us.push(cost.gpu_us);
            scratch.gpu_cycles.push(cost.gpu_cycles);
            scratch.energy_uj.push(cost.energy_uj);
        }
        let mut now_us = 0.0f64;
        let mut kernels = Vec::with_capacity(chain.len());
        let mut counters = SystemCounters::default();
        let mut dispatch_energy_uj = 0.0f64;
        if !chain.is_empty() {
            counters.submissions = 1;
        }
        for (i, job) in chain.jobs().iter().enumerate() {
            let kernel = job.kernel();
            let mut overhead = d.job_dispatch_us();
            if job.needs_own_submission() {
                overhead += d.job_sync_us();
                counters.submissions += 1;
            }
            let start = now_us;
            // lint: allow(index) — scratch columns get one push per chain job above
            now_us += overhead + scratch.gpu_us[i];
            // CPU time spent dispatching. (mW * µs = nJ; / 1000 -> µJ.)
            dispatch_energy_uj += d.dispatch_mw() * overhead / 1e6;
            counters.jobs += 1;
            counters.interrupts += 1;
            counters.ctrl_reg_writes += d.ctrl_writes_per_job();
            counters.ctrl_reg_reads += d.ctrl_reads_per_job();
            kernels.push(KernelReport {
                // lint: allow(hot-format) — report label, once per job on the cold (unmemoized) engine path
                name: kernel.name().to_string(),
                start_us: start,
                end_us: now_us,
                // lint: allow(index) — scratch columns get one push per chain job above
                gpu_cycles: scratch.gpu_cycles[i].round() as u64,
                arith_instructions: kernel.total_arith(),
                mem_instructions: kernel.total_mem(),
                workgroups: kernel.workgroup_count(),
                footprint_bytes: kernel.footprint_bytes(),
                // lint: allow(index) — scratch columns get one push per chain job above
                energy_uj: scratch.energy_uj[i],
            });
        }
        ChainReport::new(kernels, counters, now_us, dispatch_energy_uj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Job;

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    fn compute_kernel(items: usize, arith: u64) -> KernelDesc {
        KernelDesc::builder("compute")
            .global([items, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .build()
    }

    #[test]
    fn more_work_takes_longer() {
        let d = device();
        let e = Engine::new(&d);
        let small = e.kernel_time_us(&compute_kernel(4096, 50_000));
        let large = e.kernel_time_us(&compute_kernel(4096, 100_000));
        assert!(large > small * 1.8, "large {large} small {small}");
    }

    #[test]
    fn wave_quantization_steps() {
        // 12-core device: 12 workgroups and 13 workgroups differ by a full
        // wave; 13..24 workgroups all cost the same.
        let d = device();
        let e = Engine::new(&d);
        let k12 = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let k13 = KernelDesc::builder("k")
            .global([52, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let k24 = KernelDesc::builder("k")
            .global([96, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let t12 = e.kernel_time_us(&k12);
        let t13 = e.kernel_time_us(&k13);
        let t24 = e.kernel_time_us(&k24);
        assert!(t13 > t12 * 1.5, "t13 {t13} vs t12 {t12}");
        assert!((t24 - t13).abs() < t13 * 0.01, "t24 {t24} vs t13 {t13}");
    }

    #[test]
    fn poor_exec_efficiency_slows_compute_kernels() {
        let d = device();
        let e = Engine::new(&d);
        let fast = KernelDesc::builder("k")
            .global([4096, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100_000)
            .exec_efficiency(1.0)
            .build();
        let slow = KernelDesc::builder("k")
            .global([4096, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100_000)
            .exec_efficiency(0.5)
            .build();
        let tf = e.kernel_time_us(&fast);
        let ts = e.kernel_time_us(&slow);
        assert!((ts / tf - 2.0).abs() < 0.2, "ratio {}", ts / tf);
    }

    #[test]
    fn small_dispatches_expose_memory_latency() {
        // Same total work split into many small vs few large workgroups:
        // identical instruction counts, but the tiny dispatch hides less
        // latency per resident warp.
        let d = device();
        let e = Engine::new(&d);
        let tiny = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100)
            .mem_per_item(50)
            .build();
        let cozy = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([16, 1, 1])
            .arith_per_item(100)
            .mem_per_item(50)
            .build();
        // Per-item cost identical; tiny has 12 wgs of 1 warp, cozy 3 wgs of
        // 4 warps. Residency: tiny 1 wg/core resident => 1 warp; cozy 1 wg
        // of 4 warps => more hiding.
        let t_tiny = e.kernel_time_us(&tiny) * tiny.workgroup_count() as f64;
        let t_cozy = e.kernel_time_us(&cozy) * cozy.workgroup_count() as f64;
        // Compare per-workgroup stall contribution indirectly.
        assert!(t_tiny > t_cozy, "tiny {t_tiny} cozy {t_cozy}");
    }

    #[test]
    fn memory_bound_kernels_track_bandwidth() {
        let d = device();
        let e = Engine::new(&d);
        let k = KernelDesc::builder("memcpyish")
            .global([1 << 16, 1, 1])
            .local([64, 1, 1])
            .mem_per_item(64)
            .bytes_per_mem(4)
            .build();
        let t_us = e.kernel_time_us(&k);
        let bytes = (1u64 << 16) * 64 * 4;
        let ideal_us = bytes as f64 / (d.dram_gbs() * 1e3); // GB/s -> bytes/µs
        assert!(t_us >= ideal_us, "t {t_us} ideal {ideal_us}");
        assert!(t_us < ideal_us * 4.0, "t {t_us} ideal {ideal_us}");
    }

    #[test]
    fn chain_accumulates_counters_and_time() {
        let d = device();
        let e = Engine::new(&d);
        let mut chain =
            JobChain::from_kernels(vec![compute_kernel(1024, 100), compute_kernel(1024, 100)]);
        chain.push(Job::with_own_submission(compute_kernel(64, 10)));
        let r = e.run_chain(&chain);
        assert_eq!(r.counters().jobs, 3);
        assert_eq!(r.counters().interrupts, 3);
        assert_eq!(r.counters().submissions, 2);
        assert_eq!(r.counters().ctrl_reg_writes, 3 * d.ctrl_writes_per_job());
        // Separate submission adds the sync penalty.
        assert!(r.total_time_us() > d.job_sync_us());
        // Timeline is contiguous and ordered.
        let ks = r.kernels();
        assert_eq!(ks.len(), 3);
        assert!(ks.windows(2).all(|w| w[0].end_us <= w[1].start_us + 1e-9));
    }

    #[test]
    fn instruction_counts_flow_through_reports() {
        let d = device();
        let e = Engine::new(&d);
        let k = compute_kernel(1024, 7);
        let r = e.run_chain(&JobChain::from_kernels(vec![k.clone()]));
        assert_eq!(r.kernels()[0].arith_instructions, k.total_arith());
        assert_eq!(r.total_arith(), 1024 * 7);
    }

    #[test]
    fn determinism() {
        let d = device();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![compute_kernel(4096, 123)]);
        let a = e.run_chain(&chain);
        let b = e.run_chain(&chain);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_chain_is_free() {
        let d = device();
        let r = Engine::new(&d).run_chain(&JobChain::new());
        assert_eq!(r.total_time_us(), 0.0);
        assert_eq!(r.counters().jobs, 0);
        assert_eq!(r.counters().submissions, 0);
    }

    #[test]
    fn faster_device_is_faster() {
        let tx2 = Device::jetson_tx2();
        let nano = Device::jetson_nano();
        let k = KernelDesc::builder("k")
            .global([1 << 14, 1, 1])
            .local([32, 1, 1])
            .arith_per_item(500)
            .build();
        let t_tx2 = Engine::new(&tx2).kernel_time_us(&k);
        let t_nano = Engine::new(&nano).kernel_time_us(&k);
        assert!(t_nano > t_tx2 * 1.5, "nano {t_nano} tx2 {t_tx2}");
    }

    #[test]
    fn gpu_cycles_are_carried_not_rederived() {
        // Reports must round the exact cycle product, not a µs round-trip.
        let d = device();
        let e = Engine::new(&d);
        let k = compute_kernel(4096, 12_345);
        let r = e.run_chain(&JobChain::from_kernels(vec![k.clone()]));
        let cost = e.kernel_cost(&k);
        assert_eq!(r.kernels()[0].gpu_cycles, cost.gpu_cycles.round() as u64);
        let waves = k.workgroup_count().div_ceil(d.cores());
        let exact = e.workgroup_cycles(&k) * waves as f64;
        assert_eq!(cost.gpu_cycles.to_bits(), exact.to_bits());
    }

    #[test]
    fn chain_cost_is_bitwise_identical_to_run_chain() {
        let d = device();
        let e = Engine::new(&d);
        let mut chain = JobChain::from_kernels(vec![
            compute_kernel(1024, 100),
            compute_kernel(4096, 777),
            KernelDesc::builder("mem")
                .global([2048, 1, 1])
                .local([32, 1, 1])
                .mem_per_item(64)
                .cache_hit(0.5)
                .build(),
        ]);
        chain.push(Job::with_own_submission(compute_kernel(64, 10)));
        let report = e.run_chain(&chain);
        let cost = e.chain_cost(&chain);
        assert_eq!(
            cost.total_time_ms().to_bits(),
            report.total_time_ms().to_bits()
        );
        assert_eq!(
            cost.total_energy_mj().to_bits(),
            report.total_energy_mj().to_bits()
        );
        assert_eq!(
            cost.dispatch_energy_uj.to_bits(),
            report.dispatch_energy_uj().to_bits()
        );
    }

    #[test]
    fn chain_cost_by_with_memoized_costs_matches_cold() {
        // Feeding back kernel costs captured on a first pass reproduces
        // the cold totals bit for bit — the incremental-sweep contract.
        let d = device();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![
            compute_kernel(1024, 100),
            compute_kernel(1024, 100),
            compute_kernel(512, 999),
        ]);
        let mut captured = Vec::new();
        let cold = e.chain_cost_by(&chain, |k| {
            let c = e.kernel_cost(k);
            captured.push(c);
            c
        });
        let mut replay = captured.into_iter();
        // lint: allow(unwrap) — replay has one entry per kernel
        let warm = e.chain_cost_by(&chain, |_| replay.next().expect("captured cost"));
        assert_eq!(warm, cold);
    }

    #[test]
    fn run_chain_with_reused_scratch_matches_fresh() {
        let d = device();
        let e = Engine::new(&d);
        let big = JobChain::from_kernels(vec![compute_kernel(4096, 123); 8]);
        let small = JobChain::from_kernels(vec![compute_kernel(64, 5)]);
        let mut scratch = ChainScratch::new();
        // Reuse across chains of shrinking length: stale columns must not
        // leak into later, shorter runs.
        let a1 = e.run_chain_with(&big, &mut scratch);
        let a2 = e.run_chain_with(&small, &mut scratch);
        assert_eq!(a1, e.run_chain(&big));
        assert_eq!(a2, e.run_chain(&small));
    }
}

#[cfg(test)]
mod makespan_tests {
    use super::*;

    #[test]
    fn list_scheduler_matches_wave_formula_for_uniform_costs() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let costs = vec![100.0; 25]; // 25 workgroups on 12 cores -> 3 waves
        let makespan = e.makespan_cycles(&costs);
        assert!((makespan - 300.0).abs() < 0.01, "{makespan}");
    }

    #[test]
    fn list_scheduler_balances_heterogeneous_costs() {
        let d = Device::jetson_tx2(); // 2 cores
        let e = Engine::new(&d);
        // One big workgroup and three small: optimal split 100 | 30+30+30.
        let makespan = e.makespan_cycles(&[100.0, 30.0, 30.0, 30.0]);
        assert!((makespan - 100.0).abs() < 0.01, "{makespan}");
        // Greedy earliest-available: big lands on core 0, smalls fill core 1.
        let makespan2 = e.makespan_cycles(&[30.0, 30.0, 100.0, 30.0]);
        assert!(makespan2 <= 130.0 + 0.01, "{makespan2}");
    }

    #[test]
    fn empty_cost_list_is_zero() {
        let d = Device::jetson_nano();
        assert_eq!(Engine::new(&d).makespan_cycles(&[]), 0.0);
    }

    #[test]
    fn uniform_fractional_costs_match_wave_formula_exactly() {
        // Regression: milli-cycle quantization truncated these to zero.
        let d = Device::mali_g72_hikey970(); // 12 cores
        let e = Engine::new(&d);
        let m = e.makespan_cycles(&[0.0001; 25]); // 3 waves
        assert_eq!(m.to_bits(), (0.0001f64 * 3.0).to_bits());
    }

    #[test]
    fn uniform_costs_match_kernel_time_wave_formula_bitwise() {
        // The doc contract: uniform-cost makespans equal wg_cycles × waves
        // exactly, so makespan-based timing agrees with kernel_time_us.
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let k = KernelDesc::builder("k")
            .global([100, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(3_333)
            .mem_per_item(17)
            .build();
        let wg = e.workgroup_cycles(&k);
        let costs = vec![wg; k.workgroup_count()];
        let makespan = e.makespan_cycles(&costs);
        assert_eq!(makespan.to_bits(), e.kernel_cycles(&k).to_bits());
        assert_eq!(
            (makespan / d.clock_mhz() as f64).to_bits(),
            e.kernel_time_us(&k).to_bits()
        );
    }

    #[test]
    fn huge_costs_do_not_saturate() {
        // Regression: 1e18 × 1024 overflowed the old integer accumulator.
        let d = Device::jetson_tx2(); // 2 cores
        let e = Engine::new(&d);
        let m = e.makespan_cycles(&[1.0e18, 2.0e18, 3.0e18]);
        assert_eq!(m, 4.0e18);
    }

    #[test]
    fn scratch_reuse_is_value_neutral() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let mut scratch = ChainScratch::new();
        let costs = [3.5, 1.25, 9.0, 2.0, 2.0, 7.75];
        let a = e.makespan_cycles_with(&costs, &mut scratch);
        let b = e.makespan_cycles_with(&costs, &mut scratch);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), e.makespan_cycles(&costs).to_bits());
    }
}

#[cfg(test)]
mod makespan_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Uniform-cost makespans equal the closed-form wave formula
        /// bit-for-bit for arbitrary core counts and cost magnitudes.
        #[test]
        fn uniform_makespan_equals_wave_formula(
            cores in 1usize..48,
            wgs in 1usize..300,
            mantissa in 1u64..(1u64 << 52),
            exp in 0u32..40,
        ) {
            // Spread magnitudes from sub-milli-cycle to ~1e12 cycles.
            let cost = mantissa as f64 * (2.0f64).powi(exp as i32 - 20);
            let d = Device::builder("prop").cores(cores).build();
            let e = Engine::new(&d);
            let costs = vec![cost; wgs];
            let expected = cost * wgs.div_ceil(cores) as f64;
            prop_assert_eq!(e.makespan_cycles(&costs).to_bits(), expected.to_bits());
        }

        /// Heterogeneous greedy schedules stay within the trivial
        /// envelopes: at least the max cost and the perfect split, at
        /// most the serial sum.
        #[test]
        fn heterogeneous_makespan_within_envelopes(
            cores in 1usize..16,
            costs in prop::collection::vec(0.01f64..1.0e6, 1..64),
        ) {
            let d = Device::builder("prop").cores(cores).build();
            let e = Engine::new(&d);
            let m = e.makespan_cycles(&costs);
            let total: f64 = costs.iter().sum();
            let max = costs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(m >= max - 1e-9, "m {} max {}", m, max);
            prop_assert!(m >= total / cores as f64 - 1e-9, "m {} lb {}", m, total / cores as f64);
            prop_assert!(m <= total + 1e-9, "m {} total {}", m, total);
        }
    }
}

#[cfg(test)]
mod partial_dispatch_tests {
    use super::*;

    fn mem_kernel(items: usize) -> KernelDesc {
        KernelDesc::builder("mem")
            .global([items, 1, 1])
            .local([4, 1, 1])
            .mem_per_item(256)
            .bytes_per_mem(4)
            .build()
    }

    #[test]
    fn bandwidth_share_uses_occupied_cores_only() {
        // wgs < cores: idle cores issue no DRAM traffic, so shrinking the
        // dispatch grows each occupied core's bandwidth share and the
        // per-workgroup memory time falls monotonically.
        let d = Device::mali_g72_hikey970(); // 12 cores
        let e = Engine::new(&d);
        let wg3 = e.workgroup_cycles(&mem_kernel(3 * 4));
        let wg6 = e.workgroup_cycles(&mem_kernel(6 * 4));
        let wg12 = e.workgroup_cycles(&mem_kernel(12 * 4));
        assert!(wg3 < wg6, "wg3 {wg3} wg6 {wg6}");
        assert!(wg6 < wg12, "wg6 {wg6} wg12 {wg12}");
    }

    #[test]
    fn latency_hiding_tracks_the_busiest_core() {
        // cores < wgs < 2·cores: the busiest core holds two resident
        // workgroups whose warps hide each other's latency, so per-
        // workgroup cost *drops* across the 12 -> 13 boundary even though
        // bandwidth share is unchanged (active cores saturated at 12).
        let d = Device::mali_g72_hikey970(); // 12 cores
        let e = Engine::new(&d);
        let wg12 = e.workgroup_cycles(&mem_kernel(12 * 4));
        let wg13 = e.workgroup_cycles(&mem_kernel(13 * 4));
        assert!(wg13 < wg12, "wg13 {wg13} wg12 {wg12}");
        // The kernel as a whole still pays for the extra wave.
        let t12 = e.kernel_time_us(&mem_kernel(12 * 4));
        let t13 = e.kernel_time_us(&mem_kernel(13 * 4));
        assert!(t13 > t12, "t13 {t13} t12 {t12}");
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use crate::Job;

    fn kernel(arith: u64, mem: u64) -> KernelDesc {
        KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .mem_per_item(mem)
            .build()
    }

    #[test]
    fn energy_scales_with_arithmetic() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let small = e.run_chain(&JobChain::from_kernels(vec![kernel(100, 0)]));
        let large = e.run_chain(&JobChain::from_kernels(vec![kernel(200, 0)]));
        let small_kernel_uj = small.kernels()[0].energy_uj;
        let large_kernel_uj = large.kernels()[0].energy_uj;
        assert!((large_kernel_uj / small_kernel_uj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_save_dram_energy() {
        let d = Device::jetson_tx2();
        let e = Engine::new(&d);
        let cold = KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([32, 1, 1])
            .mem_per_item(100)
            .cache_hit(0.0)
            .build();
        let warm = KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([32, 1, 1])
            .mem_per_item(100)
            .cache_hit(0.9)
            .build();
        let cold_uj = e.run_chain(&JobChain::from_kernels(vec![cold])).kernels()[0].energy_uj;
        let warm_uj = e.run_chain(&JobChain::from_kernels(vec![warm])).kernels()[0].energy_uj;
        assert!(cold_uj > warm_uj * 5.0, "cold {cold_uj} warm {warm_uj}");
    }

    #[test]
    fn separate_submissions_cost_dispatch_energy() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let plain = e.run_chain(&JobChain::from_kernels(vec![kernel(10, 0)]));
        let mut chain = JobChain::new();
        chain.push(Job::with_own_submission(kernel(10, 0)));
        let synced = e.run_chain(&chain);
        assert!(synced.dispatch_energy_uj() > plain.dispatch_energy_uj() * 2.0);
        assert!(synced.total_energy_mj() > plain.total_energy_mj());
    }

    #[test]
    fn energy_is_deterministic_and_positive() {
        let d = Device::jetson_nano();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![kernel(50, 5)]);
        let a = e.run_chain(&chain).total_energy_mj();
        let b = e.run_chain(&chain).total_energy_mj();
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}

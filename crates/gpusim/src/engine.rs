use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{ChainReport, Device, JobChain, KernelDesc, KernelReport, SystemCounters};

/// Executes job chains on a [`Device`] and produces timing plus counters.
///
/// # Timing model
///
/// Execution is workgroup-granular. For each kernel the engine derives a
/// per-workgroup cycle cost from the kernel's instruction mix, then an
/// event-driven scheduler assigns workgroups to the earliest-available core;
/// the kernel's GPU time is the makespan. The per-workgroup cost combines:
///
/// * **compute**: `warps × arith_per_item / pipes / exec_efficiency`, where
///   `pipes = lanes_per_core / warp_width` — warp-quantized SIMT issue;
/// * **memory bandwidth**: DRAM traffic after cache filtering, divided by
///   the core's fair bandwidth share and the coalescing efficiency;
/// * **exposed latency**: each memory instruction pays
///   `latency × (1 − hiding)` with hiding proportional to resident warps —
///   small dispatches cannot hide latency, which is what makes the split
///   remainder GEMM of §IV-B1 so much slower than its size suggests;
/// * a fixed per-workgroup launch overhead.
///
/// Job overheads (dispatch, separate submission) are CPU-side and serialize
/// with GPU execution, matching the paper's observation that “additional job
/// creation and dispatch … adds to the initialization cost on the GPU”.
#[derive(Debug, Clone)]
pub struct Engine<'d> {
    device: &'d Device,
}

impl<'d> Engine<'d> {
    /// Creates an engine bound to a device.
    pub fn new(device: &'d Device) -> Self {
        Engine { device }
    }

    /// The device this engine simulates.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// Cycles one workgroup of `kernel` takes on this device.
    fn workgroup_cycles(&self, kernel: &KernelDesc) -> f64 {
        let d = self.device;
        let wg_size = kernel.workgroup_size();
        let warps = wg_size.div_ceil(d.warp_width());
        let pipes = (d.lanes_per_core() / d.warp_width()).max(1);

        // SIMT compute issue.
        let compute =
            warps as f64 * kernel.arith_per_item() as f64 / pipes as f64 / kernel.exec_efficiency();

        // DRAM bandwidth demand after cache filtering.
        let bytes = wg_size as f64
            * kernel.mem_per_item() as f64
            * kernel.bytes_per_mem() as f64
            * (1.0 - kernel.cache_hit());
        let active_cores = d.cores().min(kernel.workgroup_count().max(1));
        let share = d.dram_bytes_per_cycle() / active_cores as f64;
        let mem = bytes / share / kernel.coalescing();

        // Exposed memory latency under partial occupancy: a core can hold
        // workgroups up to its resident-thread budget, but never more than
        // its share of the dispatch.
        let occupancy_cap = (d.max_resident_threads() / wg_size).max(1);
        let resident_wgs = occupancy_cap.min(kernel.workgroup_count().div_ceil(d.cores()).max(1));
        let resident_warps = (warps * resident_wgs).max(1);
        let hiding = (resident_warps as f64 / d.latency_hiding_warps() as f64).min(1.0);
        let mem_warp_instrs = warps as f64 * kernel.mem_per_item() as f64;
        let stall = mem_warp_instrs * d.mem_latency_cycles() as f64 * (1.0 - hiding)
            / resident_warps as f64;

        compute.max(mem) + stall + d.wg_launch_cycles() as f64
    }

    /// GPU cycles for a whole kernel: greedy assignment of workgroups to
    /// the earliest-available core (list scheduling). All workgroups of one
    /// kernel cost the same, so the earliest-available-core schedule has a
    /// closed-form makespan: `ceil(workgroups / cores)` waves — exactly the
    /// wave quantization behind the cuDNN staircase steps.
    fn kernel_cycles(&self, kernel: &KernelDesc) -> f64 {
        let wg_cycles = self.workgroup_cycles(kernel);
        let waves = kernel.workgroup_count().div_ceil(self.device.cores());
        wg_cycles * waves as f64
    }

    /// Event-driven list scheduling for *heterogeneous* workgroup costs:
    /// assigns each cost to the earliest-available core and returns the
    /// makespan in cycles. Exposed for extensions (asymmetric core
    /// clusters, fused multi-kernel dispatches); for uniform costs it
    /// matches [`Engine::kernel_time_us`]'s wave formula exactly.
    pub fn makespan_cycles(&self, wg_costs: &[f64]) -> f64 {
        let cores = self.device.cores();
        let mut heap: BinaryHeap<Reverse<u64>> = (0..cores).map(|_| Reverse(0u64)).collect();
        // Work in integer milli-cycles to keep the heap ordering total.
        for &cost in wg_costs {
            let step = (cost * 1024.0).round() as u64;
            // lint: allow(unwrap) — one entry per core, every pop is re-pushed
            let Reverse(t) = heap.pop().expect("cores is non-zero");
            heap.push(Reverse(t + step));
        }
        heap.into_iter().map(|Reverse(t)| t).max().unwrap_or(0) as f64 / 1024.0
    }

    /// Runs one kernel in isolation and reports its GPU time in µs
    /// (no job-dispatch overhead).
    pub fn kernel_time_us(&self, kernel: &KernelDesc) -> f64 {
        self.kernel_cycles(kernel) / self.device.clock_mhz() as f64
    }

    /// Executes a chain of dependent jobs and reports the full timeline,
    /// instruction counts and system-level counters.
    pub fn run_chain(&self, chain: &JobChain) -> ChainReport {
        let d = self.device;
        let mut now_us = 0.0f64;
        let mut kernels = Vec::with_capacity(chain.len());
        let mut counters = SystemCounters::default();
        let mut dispatch_energy_uj = 0.0f64;
        if !chain.is_empty() {
            counters.submissions = 1;
        }
        for job in chain.jobs() {
            let kernel = job.kernel();
            let mut overhead = d.job_dispatch_us();
            if job.needs_own_submission() {
                overhead += d.job_sync_us();
                counters.submissions += 1;
            }
            let gpu_us = self.kernel_time_us(kernel);
            let start = now_us;
            now_us += overhead + gpu_us;
            // Energy: ops + DRAM traffic + CPU time spent dispatching.
            // (mW * µs = nJ; / 1000 -> µJ. pJ * count / 1e6 -> µJ.)
            dispatch_energy_uj += d.dispatch_mw() * overhead / 1e6;
            let dram_bytes = kernel.total_mem() as f64
                * kernel.bytes_per_mem() as f64
                * (1.0 - kernel.cache_hit());
            let energy_uj = (kernel.total_arith() as f64 * d.pj_per_op()
                + dram_bytes * d.pj_per_dram_byte())
                / 1e6;
            counters.jobs += 1;
            counters.interrupts += 1;
            counters.ctrl_reg_writes += d.ctrl_writes_per_job();
            counters.ctrl_reg_reads += d.ctrl_reads_per_job();
            kernels.push(KernelReport {
                name: kernel.name().to_string(),
                start_us: start,
                end_us: now_us,
                gpu_cycles: (gpu_us * d.clock_mhz() as f64).round() as u64,
                arith_instructions: kernel.total_arith(),
                mem_instructions: kernel.total_mem(),
                workgroups: kernel.workgroup_count(),
                footprint_bytes: kernel.footprint_bytes(),
                energy_uj,
            });
        }
        ChainReport::new(kernels, counters, now_us, dispatch_energy_uj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Job;

    fn device() -> Device {
        Device::mali_g72_hikey970()
    }

    fn compute_kernel(items: usize, arith: u64) -> KernelDesc {
        KernelDesc::builder("compute")
            .global([items, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .build()
    }

    #[test]
    fn more_work_takes_longer() {
        let d = device();
        let e = Engine::new(&d);
        let small = e.kernel_time_us(&compute_kernel(4096, 50_000));
        let large = e.kernel_time_us(&compute_kernel(4096, 100_000));
        assert!(large > small * 1.8, "large {large} small {small}");
    }

    #[test]
    fn wave_quantization_steps() {
        // 12-core device: 12 workgroups and 13 workgroups differ by a full
        // wave; 13..24 workgroups all cost the same.
        let d = device();
        let e = Engine::new(&d);
        let k12 = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let k13 = KernelDesc::builder("k")
            .global([52, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let k24 = KernelDesc::builder("k")
            .global([96, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(10_000)
            .build();
        let t12 = e.kernel_time_us(&k12);
        let t13 = e.kernel_time_us(&k13);
        let t24 = e.kernel_time_us(&k24);
        assert!(t13 > t12 * 1.5, "t13 {t13} vs t12 {t12}");
        assert!((t24 - t13).abs() < t13 * 0.01, "t24 {t24} vs t13 {t13}");
    }

    #[test]
    fn poor_exec_efficiency_slows_compute_kernels() {
        let d = device();
        let e = Engine::new(&d);
        let fast = KernelDesc::builder("k")
            .global([4096, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100_000)
            .exec_efficiency(1.0)
            .build();
        let slow = KernelDesc::builder("k")
            .global([4096, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100_000)
            .exec_efficiency(0.5)
            .build();
        let tf = e.kernel_time_us(&fast);
        let ts = e.kernel_time_us(&slow);
        assert!((ts / tf - 2.0).abs() < 0.2, "ratio {}", ts / tf);
    }

    #[test]
    fn small_dispatches_expose_memory_latency() {
        // Same total work split into many small vs few large workgroups:
        // identical instruction counts, but the tiny dispatch hides less
        // latency per resident warp.
        let d = device();
        let e = Engine::new(&d);
        let tiny = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(100)
            .mem_per_item(50)
            .build();
        let cozy = KernelDesc::builder("k")
            .global([48, 1, 1])
            .local([16, 1, 1])
            .arith_per_item(100)
            .mem_per_item(50)
            .build();
        // Per-item cost identical; tiny has 12 wgs of 1 warp, cozy 3 wgs of
        // 4 warps. Residency: tiny 1 wg/core resident => 1 warp; cozy 1 wg
        // of 4 warps => more hiding.
        let t_tiny = e.kernel_time_us(&tiny) * tiny.workgroup_count() as f64;
        let t_cozy = e.kernel_time_us(&cozy) * cozy.workgroup_count() as f64;
        // Compare per-workgroup stall contribution indirectly.
        assert!(t_tiny > t_cozy, "tiny {t_tiny} cozy {t_cozy}");
    }

    #[test]
    fn memory_bound_kernels_track_bandwidth() {
        let d = device();
        let e = Engine::new(&d);
        let k = KernelDesc::builder("memcpyish")
            .global([1 << 16, 1, 1])
            .local([64, 1, 1])
            .mem_per_item(64)
            .bytes_per_mem(4)
            .build();
        let t_us = e.kernel_time_us(&k);
        let bytes = (1u64 << 16) * 64 * 4;
        let ideal_us = bytes as f64 / (d.dram_gbs() * 1e3); // GB/s -> bytes/µs
        assert!(t_us >= ideal_us, "t {t_us} ideal {ideal_us}");
        assert!(t_us < ideal_us * 4.0, "t {t_us} ideal {ideal_us}");
    }

    #[test]
    fn chain_accumulates_counters_and_time() {
        let d = device();
        let e = Engine::new(&d);
        let mut chain =
            JobChain::from_kernels(vec![compute_kernel(1024, 100), compute_kernel(1024, 100)]);
        chain.push(Job::with_own_submission(compute_kernel(64, 10)));
        let r = e.run_chain(&chain);
        assert_eq!(r.counters().jobs, 3);
        assert_eq!(r.counters().interrupts, 3);
        assert_eq!(r.counters().submissions, 2);
        assert_eq!(r.counters().ctrl_reg_writes, 3 * d.ctrl_writes_per_job());
        // Separate submission adds the sync penalty.
        assert!(r.total_time_us() > d.job_sync_us());
        // Timeline is contiguous and ordered.
        let ks = r.kernels();
        assert_eq!(ks.len(), 3);
        assert!(ks.windows(2).all(|w| w[0].end_us <= w[1].start_us + 1e-9));
    }

    #[test]
    fn instruction_counts_flow_through_reports() {
        let d = device();
        let e = Engine::new(&d);
        let k = compute_kernel(1024, 7);
        let r = e.run_chain(&JobChain::from_kernels(vec![k.clone()]));
        assert_eq!(r.kernels()[0].arith_instructions, k.total_arith());
        assert_eq!(r.total_arith(), 1024 * 7);
    }

    #[test]
    fn determinism() {
        let d = device();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![compute_kernel(4096, 123)]);
        let a = e.run_chain(&chain);
        let b = e.run_chain(&chain);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_chain_is_free() {
        let d = device();
        let r = Engine::new(&d).run_chain(&JobChain::new());
        assert_eq!(r.total_time_us(), 0.0);
        assert_eq!(r.counters().jobs, 0);
        assert_eq!(r.counters().submissions, 0);
    }

    #[test]
    fn faster_device_is_faster() {
        let tx2 = Device::jetson_tx2();
        let nano = Device::jetson_nano();
        let k = KernelDesc::builder("k")
            .global([1 << 14, 1, 1])
            .local([32, 1, 1])
            .arith_per_item(500)
            .build();
        let t_tx2 = Engine::new(&tx2).kernel_time_us(&k);
        let t_nano = Engine::new(&nano).kernel_time_us(&k);
        assert!(t_nano > t_tx2 * 1.5, "nano {t_nano} tx2 {t_tx2}");
    }
}

#[cfg(test)]
mod makespan_tests {
    use super::*;

    #[test]
    fn list_scheduler_matches_wave_formula_for_uniform_costs() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let costs = vec![100.0; 25]; // 25 workgroups on 12 cores -> 3 waves
        let makespan = e.makespan_cycles(&costs);
        assert!((makespan - 300.0).abs() < 0.01, "{makespan}");
    }

    #[test]
    fn list_scheduler_balances_heterogeneous_costs() {
        let d = Device::jetson_tx2(); // 2 cores
        let e = Engine::new(&d);
        // One big workgroup and three small: optimal split 100 | 30+30+30.
        let makespan = e.makespan_cycles(&[100.0, 30.0, 30.0, 30.0]);
        assert!((makespan - 100.0).abs() < 0.01, "{makespan}");
        // Greedy earliest-available: big lands on core 0, smalls fill core 1.
        let makespan2 = e.makespan_cycles(&[30.0, 30.0, 100.0, 30.0]);
        assert!(makespan2 <= 130.0 + 0.01, "{makespan2}");
    }

    #[test]
    fn empty_cost_list_is_zero() {
        let d = Device::jetson_nano();
        assert_eq!(Engine::new(&d).makespan_cycles(&[]), 0.0);
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use crate::Job;

    fn kernel(arith: u64, mem: u64) -> KernelDesc {
        KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .mem_per_item(mem)
            .build()
    }

    #[test]
    fn energy_scales_with_arithmetic() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let small = e.run_chain(&JobChain::from_kernels(vec![kernel(100, 0)]));
        let large = e.run_chain(&JobChain::from_kernels(vec![kernel(200, 0)]));
        let small_kernel_uj = small.kernels()[0].energy_uj;
        let large_kernel_uj = large.kernels()[0].energy_uj;
        assert!((large_kernel_uj / small_kernel_uj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_save_dram_energy() {
        let d = Device::jetson_tx2();
        let e = Engine::new(&d);
        let cold = KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([32, 1, 1])
            .mem_per_item(100)
            .cache_hit(0.0)
            .build();
        let warm = KernelDesc::builder("k")
            .global([1024, 1, 1])
            .local([32, 1, 1])
            .mem_per_item(100)
            .cache_hit(0.9)
            .build();
        let cold_uj = e.run_chain(&JobChain::from_kernels(vec![cold])).kernels()[0].energy_uj;
        let warm_uj = e.run_chain(&JobChain::from_kernels(vec![warm])).kernels()[0].energy_uj;
        assert!(cold_uj > warm_uj * 5.0, "cold {cold_uj} warm {warm_uj}");
    }

    #[test]
    fn separate_submissions_cost_dispatch_energy() {
        let d = Device::mali_g72_hikey970();
        let e = Engine::new(&d);
        let plain = e.run_chain(&JobChain::from_kernels(vec![kernel(10, 0)]));
        let mut chain = JobChain::new();
        chain.push(Job::with_own_submission(kernel(10, 0)));
        let synced = e.run_chain(&chain);
        assert!(synced.dispatch_energy_uj() > plain.dispatch_energy_uj() * 2.0);
        assert!(synced.total_energy_mj() > plain.total_energy_mj());
    }

    #[test]
    fn energy_is_deterministic_and_positive() {
        let d = Device::jetson_nano();
        let e = Engine::new(&d);
        let chain = JobChain::from_kernels(vec![kernel(50, 5)]);
        let a = e.run_chain(&chain).total_energy_mj();
        let b = e.run_chain(&chain).total_energy_mj();
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}

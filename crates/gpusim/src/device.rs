use std::fmt;

use serde::{Deserialize, Serialize};

/// Static description of one embedded GPU plus the driver costs around it.
///
/// The four shipping descriptors correspond to the paper's §III-D devices.
/// Microarchitectural constants are approximations calibrated so that the
/// *reproduced* latencies land in the ranges of the paper's figures (see
/// `EXPERIMENTS.md`); they are not vendor-published numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    /// Shader cores (Mali) or streaming multiprocessors (Jetson).
    cores: usize,
    /// SIMT execution width: quads of 4 on Mali, warps of 32 on Jetson.
    warp_width: usize,
    /// Scalar f32 operations retired per cycle per core at full issue.
    lanes_per_core: usize,
    /// Shader clock in MHz.
    clock_mhz: u32,
    /// Work-items resident per core (occupancy ceiling).
    max_resident_threads: usize,
    /// Resident warps per core needed to fully hide memory latency.
    latency_hiding_warps: usize,
    /// Average DRAM access latency in core cycles.
    mem_latency_cycles: u32,
    /// Sustained DRAM bandwidth in GB/s.
    dram_gbs: f64,
    /// Last-level cache size in KiB (used by backends to pick hit rates).
    l2_kib: u32,
    /// CPU→GPU cost of creating and dispatching one job, in µs.
    job_dispatch_us: f64,
    /// Extra cost of a job that needs its own submission/flush, in µs.
    /// This is the penalty behind the ACL GEMM split staircase (Fig 18:
    /// “additional job creation and dispatch requires further communication
    /// between the CPU and GPU”).
    job_sync_us: f64,
    /// Control register writes the driver performs per job (Fig 18 counters).
    ctrl_writes_per_job: u64,
    /// Control register reads the driver performs per job.
    ctrl_reads_per_job: u64,
    /// Fixed workgroup launch overhead in cycles.
    wg_launch_cycles: u64,
    /// GPU-visible heap available to one inference, MiB (shared-memory SoCs
    /// reserve most DRAM for the OS; this is the practical buffer budget).
    gpu_heap_mib: u32,
    /// Energy per retired scalar operation, picojoules.
    pj_per_op: f64,
    /// Energy per DRAM byte transferred, picojoules.
    pj_per_dram_byte: f64,
    /// CPU+driver power while dispatching/synchronizing jobs, milliwatts.
    dispatch_mw: f64,
}

impl Device {
    /// Starts building a custom device from the HiKey 970 baseline —
    /// simulate *your* GPU by overriding the fields you know.
    ///
    /// ```
    /// use pruneperf_gpusim::Device;
    /// let custom = Device::builder("MyBoard (Mali G52 MP2)")
    ///     .cores(2)
    ///     .clock_mhz(850)
    ///     .dram_gbs(6.4)
    ///     .build();
    /// assert_eq!(custom.cores(), 2);
    /// ```
    pub fn builder(name: impl Into<String>) -> DeviceBuilder {
        DeviceBuilder {
            device: Device {
                name: name.into(),
                ..Device::mali_g72_hikey970()
            },
        }
    }

    /// HiKey 970 — Arm Mali G72 MP12 (the paper's primary OpenCL board).
    pub fn mali_g72_hikey970() -> Self {
        Device {
            name: "HiKey 970 (Mali G72 MP12)".into(),
            cores: 12,
            warp_width: 4,
            lanes_per_core: 12,
            clock_mhz: 767,
            max_resident_threads: 384,
            latency_hiding_warps: 16,
            mem_latency_cycles: 220,
            dram_gbs: 11.0,
            l2_kib: 1024,
            job_dispatch_us: 140.0,
            job_sync_us: 950.0,
            ctrl_writes_per_job: 58,
            ctrl_reads_per_job: 31,
            wg_launch_cycles: 280,
            gpu_heap_mib: 1024,
            pj_per_op: 12.0,
            pj_per_dram_byte: 40.0,
            dispatch_mw: 1800.0,
        }
    }

    /// Odroid XU4 — Arm Mali T628 MP6 (ACL uses the 4-core cluster).
    pub fn mali_t628_odroidxu4() -> Self {
        Device {
            name: "Odroid XU4 (Mali T628 MP6)".into(),
            cores: 4,
            warp_width: 4,
            lanes_per_core: 4,
            clock_mhz: 600,
            max_resident_threads: 256,
            latency_hiding_warps: 8,
            mem_latency_cycles: 280,
            dram_gbs: 5.5,
            l2_kib: 256,
            job_dispatch_us: 260.0,
            job_sync_us: 1600.0,
            ctrl_writes_per_job: 58,
            ctrl_reads_per_job: 31,
            wg_launch_cycles: 340,
            gpu_heap_mib: 256,
            pj_per_op: 26.0,
            pj_per_dram_byte: 55.0,
            dispatch_mw: 1500.0,
        }
    }

    /// Nvidia Jetson TX2 — 2-SM Pascal embedded GPU.
    pub fn jetson_tx2() -> Self {
        Device {
            name: "Jetson TX2 (Pascal, 2 SM)".into(),
            cores: 2,
            warp_width: 32,
            lanes_per_core: 128,
            clock_mhz: 1300,
            max_resident_threads: 2048,
            latency_hiding_warps: 24,
            mem_latency_cycles: 380,
            dram_gbs: 30.0,
            l2_kib: 512,
            job_dispatch_us: 35.0,
            job_sync_us: 320.0,
            ctrl_writes_per_job: 24,
            ctrl_reads_per_job: 12,
            wg_launch_cycles: 600,
            gpu_heap_mib: 4096,
            pj_per_op: 9.0,
            pj_per_dram_byte: 32.0,
            dispatch_mw: 2500.0,
        }
    }

    /// Nvidia Jetson Nano — 1-SM Maxwell embedded GPU.
    pub fn jetson_nano() -> Self {
        Device {
            name: "Jetson Nano (Maxwell, 1 SM)".into(),
            cores: 1,
            warp_width: 32,
            lanes_per_core: 128,
            clock_mhz: 921,
            max_resident_threads: 2048,
            latency_hiding_warps: 24,
            mem_latency_cycles: 420,
            dram_gbs: 14.0,
            l2_kib: 256,
            job_dispatch_us: 45.0,
            job_sync_us: 380.0,
            ctrl_writes_per_job: 24,
            ctrl_reads_per_job: 12,
            wg_launch_cycles: 600,
            gpu_heap_mib: 2048,
            pj_per_op: 10.0,
            pj_per_dram_byte: 34.0,
            dispatch_mw: 2200.0,
        }
    }

    /// All four paper devices, in the order they appear in §III-D.
    pub fn all_paper_devices() -> Vec<Device> {
        vec![
            Device::mali_g72_hikey970(),
            Device::mali_t628_odroidxu4(),
            Device::jetson_tx2(),
            Device::jetson_nano(),
        ]
    }

    /// Device name, e.g. `"HiKey 970 (Mali G72 MP12)"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shader cores / SMs.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// SIMT width.
    pub fn warp_width(&self) -> usize {
        self.warp_width
    }

    /// Scalar ops per cycle per core.
    pub fn lanes_per_core(&self) -> usize {
        self.lanes_per_core
    }

    /// Shader clock in MHz.
    pub fn clock_mhz(&self) -> u32 {
        self.clock_mhz
    }

    /// Occupancy ceiling in work-items per core.
    pub fn max_resident_threads(&self) -> usize {
        self.max_resident_threads
    }

    /// Warps per core required to hide memory latency.
    pub fn latency_hiding_warps(&self) -> usize {
        self.latency_hiding_warps
    }

    /// DRAM latency in cycles.
    pub fn mem_latency_cycles(&self) -> u32 {
        self.mem_latency_cycles
    }

    /// Sustained DRAM bandwidth in GB/s.
    pub fn dram_gbs(&self) -> f64 {
        self.dram_gbs
    }

    /// Last-level cache size in KiB.
    pub fn l2_kib(&self) -> u32 {
        self.l2_kib
    }

    /// Per-job dispatch cost in µs.
    pub fn job_dispatch_us(&self) -> f64 {
        self.job_dispatch_us
    }

    /// Extra cost of a separately-submitted job in µs.
    pub fn job_sync_us(&self) -> f64 {
        self.job_sync_us
    }

    /// Driver control-register writes per job.
    pub fn ctrl_writes_per_job(&self) -> u64 {
        self.ctrl_writes_per_job
    }

    /// Driver control-register reads per job.
    pub fn ctrl_reads_per_job(&self) -> u64 {
        self.ctrl_reads_per_job
    }

    /// Fixed workgroup launch overhead in cycles.
    pub fn wg_launch_cycles(&self) -> u64 {
        self.wg_launch_cycles
    }

    /// GPU-visible heap budget, MiB.
    pub fn gpu_heap_mib(&self) -> u32 {
        self.gpu_heap_mib
    }

    /// GPU-visible heap budget, bytes.
    pub fn gpu_heap_bytes(&self) -> u64 {
        self.gpu_heap_mib as u64 * 1024 * 1024
    }

    /// Energy per retired scalar operation, picojoules.
    pub fn pj_per_op(&self) -> f64 {
        self.pj_per_op
    }

    /// Energy per DRAM byte transferred, picojoules.
    pub fn pj_per_dram_byte(&self) -> f64 {
        self.pj_per_dram_byte
    }

    /// CPU + driver power while dispatching jobs, milliwatts.
    pub fn dispatch_mw(&self) -> f64 {
        self.dispatch_mw
    }

    /// Peak scalar throughput in operations per µs.
    pub fn peak_ops_per_us(&self) -> f64 {
        self.cores as f64 * self.lanes_per_core as f64 * self.clock_mhz as f64
    }

    /// DRAM bytes transferred per core cycle, device-wide.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_gbs * 1e9 / (self.clock_mhz as f64 * 1e6)
    }

    /// `true` for the CUDA-programmed Jetson devices.
    pub fn is_cuda(&self) -> bool {
        self.warp_width == 32
    }

    /// Ablation helper: a copy of the device with job dispatch and sync
    /// overheads removed (used by the `ablation_job_overhead` bench to show
    /// the ACL GEMM slow staircase is caused by the extra job, §IV-B1).
    pub fn without_job_overhead(&self) -> Device {
        let mut d = self.clone();
        d.job_dispatch_us = 0.0;
        d.job_sync_us = 0.0;
        d
    }

    /// Ablation helper: a copy with effectively unlimited resident warps so
    /// memory latency is always hidden (collapses occupancy effects).
    pub fn with_perfect_latency_hiding(&self) -> Device {
        let mut d = self.clone();
        d.latency_hiding_warps = 1;
        d
    }
}

/// Builder for custom [`Device`]s (defaults from the HiKey 970 profile).
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    device: Device,
}

impl DeviceBuilder {
    /// Shader cores / SMs.
    pub fn cores(mut self, v: usize) -> Self {
        self.device.cores = v;
        self
    }

    /// SIMT width (4 for Mali-style quads, 32 for CUDA warps).
    pub fn warp_width(mut self, v: usize) -> Self {
        self.device.warp_width = v;
        self
    }

    /// Scalar ops per cycle per core.
    pub fn lanes_per_core(mut self, v: usize) -> Self {
        self.device.lanes_per_core = v;
        self
    }

    /// Shader clock, MHz.
    pub fn clock_mhz(mut self, v: u32) -> Self {
        self.device.clock_mhz = v;
        self
    }

    /// Resident work-items per core.
    pub fn max_resident_threads(mut self, v: usize) -> Self {
        self.device.max_resident_threads = v;
        self
    }

    /// Warps needed to hide memory latency.
    pub fn latency_hiding_warps(mut self, v: usize) -> Self {
        self.device.latency_hiding_warps = v;
        self
    }

    /// DRAM latency, cycles.
    pub fn mem_latency_cycles(mut self, v: u32) -> Self {
        self.device.mem_latency_cycles = v;
        self
    }

    /// Sustained DRAM bandwidth, GB/s.
    pub fn dram_gbs(mut self, v: f64) -> Self {
        self.device.dram_gbs = v;
        self
    }

    /// Last-level cache, KiB.
    pub fn l2_kib(mut self, v: u32) -> Self {
        self.device.l2_kib = v;
        self
    }

    /// Per-job dispatch cost, µs.
    pub fn job_dispatch_us(mut self, v: f64) -> Self {
        self.device.job_dispatch_us = v;
        self
    }

    /// Separate-submission penalty, µs.
    pub fn job_sync_us(mut self, v: f64) -> Self {
        self.device.job_sync_us = v;
        self
    }

    /// Energy per scalar op, pJ.
    pub fn pj_per_op(mut self, v: f64) -> Self {
        self.device.pj_per_op = v;
        self
    }

    /// Energy per DRAM byte, pJ.
    pub fn pj_per_dram_byte(mut self, v: f64) -> Self {
        self.device.pj_per_dram_byte = v;
        self
    }

    /// GPU-visible heap budget, MiB.
    pub fn gpu_heap_mib(mut self, v: u32) -> Self {
        self.device.gpu_heap_mib = v;
        self
    }

    /// Finishes the device.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero or non-positive.
    pub fn build(self) -> Device {
        let d = self.device;
        // lint: allow(panic) — documented # Panics contract: zero extents are builder bugs
        assert!(
            d.cores > 0
                && d.warp_width > 0
                && d.lanes_per_core > 0
                && d.clock_mhz > 0
                && d.max_resident_threads > 0
                && d.latency_hiding_warps > 0
                && d.dram_gbs > 0.0,
            "device parameters must be positive"
        );
        d
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores x {} lanes @ {} MHz)",
            self.name, self.cores, self.lanes_per_core, self.clock_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_paper_devices_exist() {
        let devices = Device::all_paper_devices();
        assert_eq!(devices.len(), 4);
        let names: Vec<&str> = devices.iter().map(|d| d.name()).collect();
        assert!(names.iter().any(|n| n.contains("G72")));
        assert!(names.iter().any(|n| n.contains("T628")));
        assert!(names.iter().any(|n| n.contains("TX2")));
        assert!(names.iter().any(|n| n.contains("Nano")));
    }

    #[test]
    fn mali_uses_quads_jetson_uses_warps() {
        assert_eq!(Device::mali_g72_hikey970().warp_width(), 4);
        assert_eq!(Device::mali_t628_odroidxu4().warp_width(), 4);
        assert_eq!(Device::jetson_tx2().warp_width(), 32);
        assert_eq!(Device::jetson_nano().warp_width(), 32);
        assert!(!Device::mali_g72_hikey970().is_cuda());
        assert!(Device::jetson_tx2().is_cuda());
    }

    #[test]
    fn tx2_outpaces_nano_and_g72_outpaces_t628() {
        // Matches the paper's device tiers (Fig 5 vs Fig 7, §IV-A2).
        assert!(Device::jetson_tx2().peak_ops_per_us() > Device::jetson_nano().peak_ops_per_us());
        assert!(
            Device::mali_g72_hikey970().peak_ops_per_us()
                > Device::mali_t628_odroidxu4().peak_ops_per_us()
        );
    }

    #[test]
    fn dram_bytes_per_cycle_is_consistent() {
        let d = Device::jetson_tx2();
        let expect = 30.0 * 1e9 / (1300.0 * 1e6);
        assert!((d.dram_bytes_per_cycle() - expect).abs() < 1e-9);
    }

    #[test]
    fn ablation_copies_strip_only_their_knob() {
        let base = Device::mali_g72_hikey970();
        let no_jobs = base.without_job_overhead();
        assert_eq!(no_jobs.job_dispatch_us(), 0.0);
        assert_eq!(no_jobs.job_sync_us(), 0.0);
        assert_eq!(no_jobs.cores(), base.cores());
        let hidden = base.with_perfect_latency_hiding();
        assert_eq!(hidden.latency_hiding_warps(), 1);
        assert_eq!(hidden.job_sync_us(), base.job_sync_us());
    }

    #[test]
    fn builder_overrides_selected_fields_only() {
        let custom = Device::builder("Custom")
            .cores(3)
            .clock_mhz(500)
            .dram_gbs(4.0)
            .build();
        assert_eq!(custom.name(), "Custom");
        assert_eq!(custom.cores(), 3);
        assert_eq!(custom.clock_mhz(), 500);
        // Untouched fields come from the G72 baseline.
        assert_eq!(
            custom.warp_width(),
            Device::mali_g72_hikey970().warp_width()
        );
        assert_eq!(
            custom.job_sync_us(),
            Device::mali_g72_hikey970().job_sync_us()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_zero_cores() {
        let _ = Device::builder("bad").cores(0).build();
    }

    #[test]
    fn device_serde_round_trip() {
        for d in Device::all_paper_devices() {
            let json = serde_json::to_string(&d).expect("serializes");
            let back: Device = serde_json::from_str(&json).expect("parses");
            assert_eq!(d, back);
        }
    }

    #[test]
    fn display_shows_core_configuration() {
        let s = Device::jetson_nano().to_string();
        assert!(s.contains("1 cores x 128 lanes"), "{s}");
    }
}

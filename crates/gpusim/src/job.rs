use serde::{Deserialize, Serialize};

use crate::KernelDesc;

/// One unit of work the job manager dispatches to the GPU.
///
/// On Mali, every OpenCL kernel enqueue becomes (at least) one job; the
/// paper's §IV-B1 finding is that for some channel counts the runtime
/// *splits* one logical GEMM into two jobs, and the extra dispatch +
/// synchronization outweighs the saved arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    kernel: KernelDesc,
    needs_own_submission: bool,
}

impl Job {
    /// A job dispatched as part of the surrounding chain submission.
    pub fn new(kernel: KernelDesc) -> Self {
        Job {
            kernel,
            needs_own_submission: false,
        }
    }

    /// A job that the driver must submit separately (paying
    /// [`crate::Device::job_sync_us`] on top of the dispatch cost).
    pub fn with_own_submission(kernel: KernelDesc) -> Self {
        Job {
            kernel,
            needs_own_submission: true,
        }
    }

    /// The kernel this job executes.
    pub fn kernel(&self) -> &KernelDesc {
        &self.kernel
    }

    /// Whether the job pays the separate-submission penalty.
    pub fn needs_own_submission(&self) -> bool {
        self.needs_own_submission
    }
}

/// An ordered chain of dependent jobs (one convolutional layer's dispatch
/// plan). Jobs execute sequentially — conv stages are data-dependent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobChain {
    jobs: Vec<Job>,
}

impl JobChain {
    /// An empty chain.
    pub fn new() -> Self {
        JobChain::default()
    }

    /// Builds a chain of ordinary jobs from kernels.
    pub fn from_kernels(kernels: Vec<KernelDesc>) -> Self {
        JobChain {
            jobs: kernels.into_iter().map(Job::new).collect(),
        }
    }

    /// Appends a job.
    pub fn push(&mut self, job: Job) {
        // lint: allow(grow) — chain builder: bounded by the dispatch plan's kernel count
        self.jobs.push(job);
    }

    /// The jobs in dispatch order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the chain contains no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates `(kernel, needs_own_submission)` pairs in dispatch order —
    /// the exact tuple the engine's cost hot loops consume, without going
    /// through the [`Job`] accessors job by job.
    pub fn iter(&self) -> impl Iterator<Item = (&KernelDesc, bool)> {
        self.jobs
            .iter()
            .map(|j| (&j.kernel, j.needs_own_submission))
    }

    /// Sum of executed arithmetic instructions across the chain.
    pub fn total_arith(&self) -> u64 {
        self.jobs.iter().map(|j| j.kernel().total_arith()).sum()
    }

    /// Sum of executed memory instructions across the chain.
    pub fn total_mem(&self) -> u64 {
        self.jobs.iter().map(|j| j.kernel().total_mem()).sum()
    }
}

impl FromIterator<Job> for JobChain {
    fn from_iter<T: IntoIterator<Item = Job>>(iter: T) -> Self {
        JobChain {
            jobs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Job> for JobChain {
    fn extend<T: IntoIterator<Item = Job>>(&mut self, iter: T) {
        self.jobs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str, arith: u64) -> KernelDesc {
        KernelDesc::builder(name)
            .global([8, 1, 1])
            .local([4, 1, 1])
            .arith_per_item(arith)
            .mem_per_item(1)
            .build()
    }

    #[test]
    fn chain_preserves_order() {
        let c = JobChain::from_kernels(vec![kernel("a", 1), kernel("b", 2)]);
        let names: Vec<&str> = c.jobs().iter().map(|j| j.kernel().name()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn totals_sum_over_jobs() {
        let c = JobChain::from_kernels(vec![kernel("a", 3), kernel("b", 5)]);
        assert_eq!(c.total_arith(), 8 * 3 + 8 * 5);
        assert_eq!(c.total_mem(), 16);
    }

    #[test]
    fn submission_flag_round_trips() {
        assert!(!Job::new(kernel("a", 1)).needs_own_submission());
        assert!(Job::with_own_submission(kernel("a", 1)).needs_own_submission());
    }

    #[test]
    fn iter_yields_kernel_and_submission_flag() {
        let mut c = JobChain::from_kernels(vec![kernel("a", 1)]);
        c.push(Job::with_own_submission(kernel("b", 2)));
        let pairs: Vec<(&str, bool)> = c.iter().map(|(k, own)| (k.name(), own)).collect();
        assert_eq!(pairs, [("a", false), ("b", true)]);
    }

    #[test]
    fn collect_and_extend() {
        let mut c: JobChain = vec![Job::new(kernel("a", 1))].into_iter().collect();
        c.extend(vec![Job::new(kernel("b", 1))]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(JobChain::new().is_empty());
    }
}

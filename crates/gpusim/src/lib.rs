//! A deterministic, event-driven, cycle-approximate embedded-GPU simulator.
//!
//! This crate stands in for the hardware of Radu et al. (IISWC 2019) — the
//! HiKey 970 (Mali G72), Odroid XU4 (Mali T628), Jetson TX2 and Jetson Nano
//! — and for the full-system Mali GPU simulator the paper uses for its
//! in-depth analysis (§IV-B, their reference \[22\]).
//!
//! The paper's anomalies are *dispatch-level* phenomena, so the simulator
//! models exactly the mechanisms the paper holds responsible:
//!
//! * **warp quantization** — work-items execute in fixed-width warps
//!   (quads of 4 on Mali, 32 on the Jetson GPUs);
//! * **wave quantization** — workgroups are scheduled onto a small number
//!   of cores, so kernel time moves in steps of whole waves;
//! * **occupancy-dependent latency hiding** — small dispatches leave memory
//!   latency exposed;
//! * **coalescing / issue efficiency** — workgroup shape changes memory and
//!   issue behaviour (ACL Direct's three execution levels, Table V);
//! * **job management overhead** — every job costs CPU→GPU communication,
//!   control-register traffic and an interrupt (Fig 18), and a job that
//!   needs its own submission pays a synchronization penalty — the cause of
//!   the ACL GEMM “two parallel staircases” (Figs 3, 14, 15).
//!
//! Execution is workgroup-granular: an event-driven scheduler assigns
//! workgroups to the earliest-available core and the kernel's makespan is
//! the last core's finish time. Everything is deterministic — run-to-run
//! jitter is layered on by `pruneperf-profiler`, never here.
//!
//! # Example
//!
//! ```
//! use pruneperf_gpusim::{Device, Engine, JobChain, KernelDesc};
//!
//! let device = Device::jetson_tx2();
//! let kernel = KernelDesc::builder("gemm_tile")
//!     .global([784, 4, 1])
//!     .local([32, 1, 1])
//!     .arith_per_item(1000)
//!     .mem_per_item(50)
//!     .build();
//! let report = Engine::new(&device).run_chain(&JobChain::from_kernels(vec![kernel]));
//! assert!(report.total_time_us() > 0.0);
//! assert_eq!(report.counters().jobs, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Chrome Trace Event Format export of simulator timelines.
pub mod chrome;
mod device;
mod engine;
mod job;
mod kernel;
mod metrics;
mod trace;

pub use chrome::{render_trace, ChromeEvent};
pub use device::{Device, DeviceBuilder};
pub use engine::{ChainCost, ChainScratch, Engine, KernelCost};
pub use job::{Job, JobChain};
pub use kernel::{KernelBuilder, KernelDesc};
pub use metrics::{ChainReport, KernelReport, SystemCounters};
pub use trace::{ChainTrace, TraceSpan};

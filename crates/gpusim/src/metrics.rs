use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-kernel execution report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelReport {
    /// Kernel name as dispatched.
    pub name: String,
    /// Start time within the chain, µs.
    pub start_us: f64,
    /// End time within the chain, µs.
    pub end_us: f64,
    /// GPU execution cycles (excludes dispatch overhead).
    pub gpu_cycles: u64,
    /// Scalar arithmetic instructions executed (Tables I–IV column 2).
    pub arith_instructions: u64,
    /// Memory instructions executed (Tables I–IV column 3).
    pub mem_instructions: u64,
    /// Workgroups dispatched.
    pub workgroups: usize,
    /// Device-memory footprint bound to the dispatch, bytes.
    pub footprint_bytes: u64,
    /// Estimated energy of the kernel's execution, microjoules.
    pub energy_uj: f64,
}

impl KernelReport {
    /// Kernel duration including its dispatch overhead, µs.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

impl fmt::Display for KernelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} us, {} arith, {} mem",
            self.name,
            self.duration_us(),
            self.arith_instructions,
            self.mem_instructions
        )
    }
}

/// System-level counters in the spirit of the paper's Fig 18 — the signals
/// that expose the “bad split” of a GEMM into two jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SystemCounters {
    /// Jobs dispatched to the GPU.
    pub jobs: u64,
    /// Control-register writes performed by the driver.
    pub ctrl_reg_writes: u64,
    /// Control-register reads performed by the driver.
    pub ctrl_reg_reads: u64,
    /// Completion interrupts raised by the GPU.
    pub interrupts: u64,
    /// Separate submissions (chain flushes) required.
    pub submissions: u64,
}

impl SystemCounters {
    /// Element-wise ratio against a baseline, for Fig 18-style relative
    /// plots. Fields with a zero baseline report `None`.
    pub fn relative_to(&self, base: &SystemCounters) -> RelativeCounters {
        fn ratio(a: u64, b: u64) -> Option<f64> {
            (b != 0).then(|| a as f64 / b as f64)
        }
        RelativeCounters {
            jobs: ratio(self.jobs, base.jobs),
            ctrl_reg_writes: ratio(self.ctrl_reg_writes, base.ctrl_reg_writes),
            ctrl_reg_reads: ratio(self.ctrl_reg_reads, base.ctrl_reg_reads),
            interrupts: ratio(self.interrupts, base.interrupts),
        }
    }
}

/// Ratios of [`SystemCounters`] against a baseline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RelativeCounters {
    /// Jobs ratio.
    pub jobs: Option<f64>,
    /// Control-register write ratio.
    pub ctrl_reg_writes: Option<f64>,
    /// Control-register read ratio.
    pub ctrl_reg_reads: Option<f64>,
    /// Interrupt ratio.
    pub interrupts: Option<f64>,
}

/// Execution report for a whole job chain (one convolutional layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainReport {
    kernels: Vec<KernelReport>,
    counters: SystemCounters,
    total_time_us: f64,
    dispatch_energy_uj: f64,
}

impl ChainReport {
    pub(crate) fn new(
        kernels: Vec<KernelReport>,
        counters: SystemCounters,
        total_time_us: f64,
        dispatch_energy_uj: f64,
    ) -> Self {
        ChainReport {
            kernels,
            counters,
            total_time_us,
            dispatch_energy_uj,
        }
    }

    /// Per-kernel reports in execution order.
    pub fn kernels(&self) -> &[KernelReport] {
        &self.kernels
    }

    /// System-level counters for the chain.
    pub fn counters(&self) -> &SystemCounters {
        &self.counters
    }

    /// End-to-end chain latency in µs, including dispatch overheads.
    pub fn total_time_us(&self) -> f64 {
        self.total_time_us
    }

    /// End-to-end chain latency in milliseconds (the figures' unit).
    pub fn total_time_ms(&self) -> f64 {
        self.total_time_us / 1000.0
    }

    /// Total executed arithmetic instructions.
    pub fn total_arith(&self) -> u64 {
        self.kernels.iter().map(|k| k.arith_instructions).sum()
    }

    /// Total executed memory instructions.
    pub fn total_mem(&self) -> u64 {
        self.kernels.iter().map(|k| k.mem_instructions).sum()
    }

    /// CPU/driver energy spent dispatching the chain, microjoules.
    pub fn dispatch_energy_uj(&self) -> f64 {
        self.dispatch_energy_uj
    }

    /// Total energy of the chain (GPU kernels + dispatch), millijoules —
    /// the paper's §I motivation is “FLOPS per watt”, and energy-aware
    /// pruning is a natural extension of the latency loop.
    pub fn total_energy_mj(&self) -> f64 {
        (self.kernels.iter().map(|k| k.energy_uj).sum::<f64>() + self.dispatch_energy_uj) / 1000.0
    }

    /// Reports for kernels with the given name (e.g. both `gemm_mm` splits).
    pub fn kernels_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a KernelReport> {
        self.kernels.iter().filter(move |k| k.name == name)
    }
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} kernels, {} jobs, {:.3} ms",
            self.kernels.len(),
            self.counters.jobs,
            self.total_time_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, arith: u64) -> KernelReport {
        KernelReport {
            name: name.into(),
            start_us: 0.0,
            end_us: 10.0,
            gpu_cycles: 100,
            arith_instructions: arith,
            mem_instructions: arith / 10,
            workgroups: 4,
            footprint_bytes: 1024,
            energy_uj: 50.0,
        }
    }

    #[test]
    fn chain_totals() {
        let c = ChainReport::new(
            vec![
                report("a", 100),
                report("gemm_mm", 50),
                report("gemm_mm", 20),
            ],
            SystemCounters {
                jobs: 3,
                ..Default::default()
            },
            30.0,
            12.0,
        );
        assert_eq!(c.total_arith(), 170);
        assert_eq!(c.total_mem(), 17);
        assert_eq!(c.kernels_named("gemm_mm").count(), 2);
        assert!((c.total_time_ms() - 0.03).abs() < 1e-12);
        assert_eq!(c.dispatch_energy_uj(), 12.0);
        assert!((c.total_energy_mj() - (150.0 + 12.0) / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn relative_counters() {
        let base = SystemCounters {
            jobs: 3,
            ctrl_reg_writes: 174,
            ctrl_reg_reads: 93,
            interrupts: 3,
            submissions: 1,
        };
        let split = SystemCounters {
            jobs: 4,
            ctrl_reg_writes: 232,
            ctrl_reg_reads: 124,
            interrupts: 4,
            submissions: 2,
        };
        let rel = split.relative_to(&base);
        assert!((rel.jobs.unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert!(rel.ctrl_reg_writes.unwrap() > 1.0);
        assert!(rel.interrupts.unwrap() > 1.0);
    }

    #[test]
    fn relative_counters_zero_baseline() {
        let rel = SystemCounters::default().relative_to(&SystemCounters::default());
        assert_eq!(rel.jobs, None);
    }

    #[test]
    fn kernel_report_duration() {
        let r = report("a", 1);
        assert_eq!(r.duration_us(), 10.0);
        assert!(r.to_string().contains("a:"));
    }
}
